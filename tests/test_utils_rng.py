"""Unit tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_passes_through_generator(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_seed_is_reproducible(self):
        a = ensure_rng(42).random(5)
        b = ensure_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawnRngs:
    def test_children_are_independent_streams(self):
        children = spawn_rngs(0, 3)
        draws = [c.random(4).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_children_reproducible_from_seed(self):
        a = [c.random(3).tolist() for c in spawn_rngs(7, 2)]
        b = [c.random(3).tolist() for c in spawn_rngs(7, 2)]
        assert a == b

    def test_zero_children(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
