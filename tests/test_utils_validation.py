"""Unit tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError, ValidationError
from repro.utils.validation import (
    check_matrix,
    check_positive,
    check_power_of_two,
    check_probability,
    check_unit_cube,
    check_vector,
)


class TestCheckPositive:
    def test_accepts_positive(self):
        assert check_positive(1.5, "x") == 1.5

    def test_rejects_zero_when_strict(self):
        with pytest.raises(ValidationError, match="x must be > 0"):
            check_positive(0.0, "x")

    def test_accepts_zero_when_not_strict(self):
        assert check_positive(0.0, "x", strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValidationError):
            check_positive(-1.0, "x", strict=False)

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ValidationError):
            check_positive(float("nan"), "x")
        with pytest.raises(ValidationError):
            check_positive(float("inf"), "x")

    def test_returns_float(self):
        assert isinstance(check_positive(3, "x"), float)


class TestCheckProbability:
    def test_accepts_bounds(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0

    def test_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            check_probability(1.01, "p")
        with pytest.raises(ValidationError):
            check_probability(-0.01, "p")


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("value", [1, 2, 4, 64, 512, 4096])
    def test_accepts_powers(self, value):
        assert check_power_of_two(value, "d") == value

    @pytest.mark.parametrize("value", [0, -2, 3, 6, 100, 511])
    def test_rejects_non_powers(self, value):
        with pytest.raises(DimensionalityError):
            check_power_of_two(value, "d")


class TestCheckVector:
    def test_coerces_list(self):
        out = check_vector([1, 2, 3], "v")
        assert out.dtype == np.float64
        assert out.shape == (3,)

    def test_enforces_dim(self):
        with pytest.raises(DimensionalityError, match="length 4"):
            check_vector([1.0, 2.0], "v", dim=4)

    def test_rejects_matrix(self):
        with pytest.raises(ValidationError, match="1-D"):
            check_vector(np.zeros((2, 2)), "v")

    def test_rejects_nan(self):
        with pytest.raises(ValidationError, match="non-finite"):
            check_vector([1.0, float("nan")], "v")


class TestCheckMatrix:
    def test_coerces(self):
        out = check_matrix([[1, 2], [3, 4]], "m")
        assert out.shape == (2, 2)

    def test_enforces_columns(self):
        with pytest.raises(DimensionalityError, match="3 columns"):
            check_matrix(np.zeros((2, 2)), "m", dim=3)

    def test_min_rows(self):
        with pytest.raises(ValidationError, match="at least 2"):
            check_matrix(np.zeros((1, 2)), "m", min_rows=2)

    def test_rejects_vector(self):
        with pytest.raises(ValidationError, match="2-D"):
            check_matrix(np.zeros(4), "m")


class TestCheckUnitCube:
    def test_accepts_and_clips_tolerance(self):
        out = check_unit_cube(np.array([0.0, 1.0, 0.5]), "x")
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_rejects_clearly_outside(self):
        with pytest.raises(ValidationError, match="unit cube"):
            check_unit_cube(np.array([0.5, 1.5]), "x")

    def test_clips_epsilon_overshoot(self):
        out = check_unit_cube(np.array([1.0 + 1e-12, -1e-12]), "x")
        assert out[0] == 1.0
        assert out[1] == 0.0
