"""Edge-case behaviour across the stack: empty, degenerate, and tiny inputs."""

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import EmptyNetworkError, ValidationError


class TestUnpublishedNetwork:
    def test_range_query_before_publish_returns_empty(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        net.add_peer(rng.random((10, 16)))
        result = net.range_query(rng.random(16), 0.5)
        assert result.items == []
        assert result.peer_scores == {}

    def test_knn_before_publish_returns_empty(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        net.add_peer(rng.random((10, 16)))
        result = net.knn_query(rng.random(16), 5)
        assert result.items == []

    def test_query_with_no_peers_raises(self):
        net = HyperMNetwork(16, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        with pytest.raises(EmptyNetworkError):
            net.range_query(np.full(16, 0.5), 0.5)


class TestDegenerateData:
    def test_single_item_peer(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=5), rng=0)
        item = rng.random((1, 16))
        net.add_peer(item, np.array([7]))
        net.add_peer(rng.random((10, 16)), np.arange(10, 20))
        report = net.publish_all()
        assert report.items_published == 11
        result = net.range_query(item[0], 0.0)
        assert 7 in result.item_ids

    def test_all_identical_items(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=2, n_clusters=3), rng=0)
        data = np.tile(rng.random(16), (12, 1))
        net.add_peer(data, np.arange(12))
        net.publish_all()
        result = net.range_query(data[0], 0.0)
        assert result.item_ids == set(range(12))

    def test_boundary_items(self):
        """Items exactly on the unit-cube boundary survive the pipeline."""
        net = HyperMNetwork(8, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        data = np.vstack([np.zeros(8), np.ones(8), np.full(8, 0.5)])
        net.add_peer(data, np.arange(3))
        net.add_peer(np.full((3, 8), 0.25), np.arange(10, 13))
        net.publish_all()
        for i, row in enumerate(data):
            result = net.range_query(row, 0.0)
            assert i in result.item_ids

    def test_minimum_dimensionality(self, rng):
        """d=2 works: one approximation level and one detail level."""
        net = HyperMNetwork(2, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        net.add_peer(rng.random((10, 2)), np.arange(10))
        net.publish_all()
        result = net.range_query(net.peers[0].data[0], 0.1)
        assert result.items

    def test_levels_exceeding_dimensionality_rejected(self, rng):
        from repro.exceptions import DimensionalityError

        with pytest.raises(DimensionalityError):
            HyperMNetwork(4, HyperMConfig(levels_used=5, n_clusters=2), rng=0)


class TestReportEdges:
    def test_level_loads_shape(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=2), rng=0)
        net.add_peer(rng.random((10, 16)))
        net.add_peer(rng.random((10, 16)))
        net.publish_all()
        loads = net.level_loads()
        assert set(loads) == set(net.levels)
        for level, per_node in loads.items():
            assert sum(per_node.values()) >= 2  # at least one sphere/peer

    def test_empty_dissemination_report(self):
        from repro.core.results import DisseminationReport

        report = DisseminationReport()
        assert report.hops_per_item == 0.0
        assert report.hops_per_sphere == 0.0

    def test_zero_epsilon_rejects_negative(self, tiny_histogram_workload):
        with pytest.raises(ValidationError):
            tiny_histogram_workload.network.range_query(
                tiny_histogram_workload.ground_truth.data[0], -0.1
            )
