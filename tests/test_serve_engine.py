"""The serving engine: parity, admission, coalescing, mining, prewarm.

The contract under test: :class:`repro.serve.ServeEngine` is an
*execution strategy*, not a different query plane — batched range
results match :meth:`HyperMNetwork.range_query` and batched k-NN (with
early termination off) matches :meth:`HyperMNetwork.knn_query`
exactly, ``index_hops`` excepted (the engine co-locates the index).
On top of that sit the serving behaviours: bounded-queue shedding,
batch coalescing, query-log mining, and generation-triggered
pre-warming.
"""

import asyncio

import numpy as np
import pytest

from repro.core.network import HyperMConfig
from repro.evaluation.workloads import build_markov_network, sample_queries
from repro.exceptions import QueryError, ServeError, ValidationError
from repro.serve import KnnRequest, RangeRequest, ServeConfig, ServeEngine


@pytest.fixture(scope="module")
def workload():
    built, __ = build_markov_network(
        n_peers=8,
        items_per_peer=40,
        dimensionality=16,
        config=HyperMConfig(levels_used=3, n_clusters=4),
        rng=21,
        publish=True,
    )
    return built


@pytest.fixture(scope="module")
def queries(workload):
    return sample_queries(workload.data, 8, rng=np.random.default_rng(22))


def _item_ids(result):
    return sorted(item.item_id for item in result.items)


class TestConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValidationError):
            ServeConfig(max_queue=0)
        with pytest.raises(ValidationError):
            ServeConfig(max_inflight=0)
        with pytest.raises(ValidationError):
            ServeConfig(max_batch=0)
        with pytest.raises(ValidationError):
            ServeConfig(batch_window=-0.1)


class TestRangeParity:
    def test_batched_matches_sequential(self, workload, queries):
        network = workload.network
        engine = ServeEngine(network)
        requests = [
            RangeRequest(query=q, epsilon=0.3, max_peers=3) for q in queries
        ]
        batched = engine.execute_batch(requests)
        for request, served in zip(requests, batched):
            sequential = network.range_query(
                request.query, request.epsilon, max_peers=request.max_peers
            )
            assert _item_ids(served) == _item_ids(sequential)
            assert served.peers_contacted == sequential.peers_contacted
            assert set(served.peer_scores) == set(sequential.peer_scores)
            for peer, score in served.peer_scores.items():
                assert score == pytest.approx(
                    sequential.peer_scores[peer], abs=1e-9
                )
            assert served.index_hops == 0
            assert served.confidence == sequential.confidence

    def test_single_execute_equals_batch_of_one(self, workload, queries):
        engine = ServeEngine(workload.network)
        request = RangeRequest(query=queries[0], epsilon=0.25)
        assert _item_ids(engine.execute(request)) == _item_ids(
            engine.execute_batch([request])[0]
        )

    def test_mixed_batch_preserves_order(self, workload, queries):
        engine = ServeEngine(workload.network)
        requests = [
            RangeRequest(query=queries[0], epsilon=0.3),
            KnnRequest(query=queries[1], k=3),
            RangeRequest(query=queries[2], epsilon=0.2),
        ]
        results = engine.execute_batch(requests)
        assert results[0].peer_scores  # RangeQueryResult
        assert results[1].requested_k == 3  # KnnResult
        assert results[2].peer_scores

    def test_validation_errors_surface(self, workload, queries):
        engine = ServeEngine(workload.network)
        with pytest.raises(ValidationError):
            engine.execute(RangeRequest(query=np.ones(3), epsilon=0.1))
        with pytest.raises(ValidationError):
            engine.execute(RangeRequest(query=queries[0], epsilon=-1.0))
        with pytest.raises(QueryError):
            engine.execute(
                RangeRequest(query=queries[0], epsilon=0.1, origin_peer=999)
            )
        assert engine.execute_batch([]) == []


class TestKnnParity:
    def test_matches_sequential_without_early_termination(
        self, workload, queries
    ):
        network = workload.network
        engine = ServeEngine(network)
        for query in queries[:4]:
            served = engine.execute(
                KnnRequest(query=query, k=4, early_termination=False)
            )
            sequential = network.knn_query(query, 4)
            assert [i.item_id for i in served.items] == [
                i.item_id for i in sequential.items
            ]
            assert served.peers_contacted == sequential.peers_contacted
            assert served.epsilon_per_level == pytest.approx(
                sequential.epsilon_per_level
            )

    def test_early_termination_keeps_top_k(self, workload, queries):
        network = workload.network
        engine = ServeEngine(network)
        k = 4
        for query in queries:
            terminated = engine.execute(
                KnnRequest(query=query, k=k, early_termination=True)
            )
            full = network.knn_query(query, k)
            got = [i.distance for i in terminated.items[:k]]
            want = [i.distance for i in full.items[:k]]
            assert got == pytest.approx(want, abs=1e-9)
        # The skip counters only move when termination actually fires,
        # but they must never go negative or desync from each other.
        snap = engine.snapshot()
        assert snap["knn_early_stops"] >= 0
        assert (snap["knn_peers_skipped"] == 0) == (
            snap["knn_early_stops"] == 0
        )

    def test_rejects_bad_k_and_c(self, workload, queries):
        engine = ServeEngine(workload.network)
        with pytest.raises(QueryError):
            engine.execute(KnnRequest(query=queries[0], k=0))
        with pytest.raises(QueryError):
            engine.execute(KnnRequest(query=queries[0], k=2, c=0.0))


class TestMiningAndPrewarm:
    def test_miner_tracks_hot_regions(self, workload, queries):
        engine = ServeEngine(workload.network)
        for __ in range(3):
            engine.execute(RangeRequest(query=queries[0], epsilon=0.3))
        snap = engine.snapshot()["miner"]
        assert snap["observed"] >= 3 * len(workload.network.levels)
        assert snap["hot_regions"]
        assert engine.miner.hot_keys(4)

    def test_prewarm_refills_after_mutation(self, workload, queries):
        network = workload.network
        engine = ServeEngine(network)
        engine.execute(RangeRequest(query=queries[0], epsilon=0.3))
        # Mutate a peer's items and republish: generations move, cached
        # candidate sets go stale.
        peer_id = next(iter(network.peers))
        peer = network.peers[peer_id]
        rng = np.random.default_rng(31)
        peer.add_items(
            rng.random((5, network.dimensionality)),
            np.arange(900_000, 900_005),
        )
        network.publish_delta(peer_id)
        primed_before = engine.snapshot()["prewarmed"]
        engine.execute(RangeRequest(query=queries[1], epsilon=0.3))
        assert engine.snapshot()["prewarmed"] > primed_before
        # The pre-warmed hot lookup serves the next repeat as a fresh hit.
        stale_before = engine.snapshot()["candidate_cache"]["stale"]
        engine.execute(RangeRequest(query=queries[0], epsilon=0.3))
        assert engine.snapshot()["candidate_cache"]["stale"] == stale_before

    def test_mining_disabled_leaves_no_miner(self, workload, queries):
        engine = ServeEngine(
            workload.network, ServeConfig(mine_queries=False)
        )
        engine.execute(RangeRequest(query=queries[0], epsilon=0.2))
        assert engine.miner is None
        assert engine.prewarm() == 0
        assert "miner" not in engine.snapshot()


class TestAsyncLayer:
    def test_submit_before_start_raises(self, workload, queries):
        engine = ServeEngine(workload.network)

        async def scenario():
            with pytest.raises(ServeError):
                await engine.submit(
                    RangeRequest(query=queries[0], epsilon=0.2)
                )

        asyncio.run(scenario())

    def test_double_start_raises(self, workload):
        engine = ServeEngine(workload.network)

        async def scenario():
            await engine.start()
            with pytest.raises(ServeError):
                await engine.start()
            await engine.stop()

        asyncio.run(scenario())

    def test_coalesces_concurrent_submissions(self, workload, queries):
        engine = ServeEngine(
            workload.network,
            ServeConfig(max_inflight=1, max_batch=8, batch_window=0.05),
        )

        async def scenario():
            await engine.start()
            responses = await asyncio.gather(*[
                engine.submit(RangeRequest(query=q, epsilon=0.3))
                for q in queries
            ])
            await engine.stop()
            return responses

        responses = asyncio.run(scenario())
        assert all(r.status == "ok" for r in responses)
        assert all(r.result is not None for r in responses)
        assert max(r.batch_size for r in responses) > 1
        assert all(r.latency >= 0.0 for r in responses)

    def test_sheds_past_the_queue_bound(self, workload, queries):
        engine = ServeEngine(
            workload.network,
            ServeConfig(max_queue=2, max_inflight=1, batch_window=0.01),
        )

        async def scenario():
            await engine.start()
            responses = await asyncio.gather(*[
                engine.submit(RangeRequest(query=queries[i % 8], epsilon=0.3))
                for i in range(24)
            ])
            await engine.stop()
            return responses

        responses = asyncio.run(scenario())
        shed = [r for r in responses if r.status == "shed"]
        ok = [r for r in responses if r.status == "ok"]
        assert shed and ok
        assert all(r.reason == "queue_full" for r in shed)
        assert all(r.result is None for r in shed)
        snap = engine.snapshot()
        assert snap["shed"] == len(shed)
        assert snap["admitted"] == len(ok)
        assert snap["waiting"] == 0

    def test_batch_errors_reach_every_waiter(self, workload, queries):
        engine = ServeEngine(
            workload.network,
            ServeConfig(max_inflight=1, max_batch=4, batch_window=0.05),
        )
        bad = RangeRequest(query=np.ones(3), epsilon=0.1)  # wrong dim

        async def scenario():
            await engine.start()
            results = await asyncio.gather(
                engine.submit(RangeRequest(query=queries[0], epsilon=0.2)),
                engine.submit(bad),
                return_exceptions=True,
            )
            await engine.stop()
            return results

        results = asyncio.run(scenario())
        # The bad request poisons its whole coalesced batch; both waiters
        # see the validation error rather than hanging forever.
        assert all(isinstance(r, ValidationError) for r in results)

    def test_stop_without_start_is_a_no_op(self, workload):
        engine = ServeEngine(workload.network)
        asyncio.run(engine.stop())


class TestSnapshot:
    def test_counters_track_batches(self, workload, queries):
        engine = ServeEngine(workload.network)
        engine.execute_batch([
            RangeRequest(query=q, epsilon=0.2) for q in queries[:3]
        ])
        snap = engine.snapshot()
        assert snap["batches"] == 1
        assert snap["served"] == 3
        assert snap["candidate_cache"]["capacity"] == 256
        assert snap["translation_cache"]["size"] >= 1


class TestInjectableClock:
    def test_timed_uses_the_ambient_metrics_clock(self):
        from repro.evaluation.serving import _timed
        from repro.obs.registry import MetricsRegistry, metrics_scope

        ticks = iter([10.0, 10.25])
        with metrics_scope(MetricsRegistry(clock=lambda: next(ticks))):
            elapsed = _timed(lambda: None)
        assert elapsed == 0.25

    def test_explicit_clock_overrides_the_registry(self):
        from repro.evaluation.serving import _timed

        ticks = iter([0.0, 2.0])
        assert _timed(lambda: None, clock=lambda: next(ticks)) == 2.0
