"""Tests for the Bloom-filter baseline (the paper's rejected design)."""

import numpy as np
import pytest

from repro.core.bloom import BloomFilter, BloomPublisher, quantize_key
from repro.exceptions import ValidationError


class TestBloomFilter:
    def test_membership(self):
        bloom = BloomFilter(1024, 4)
        bloom.add(b"hello")
        assert b"hello" in bloom
        assert b"other" not in bloom

    def test_no_false_negatives(self, rng):
        bloom = BloomFilter(8192, 4)
        keys = [bytes(rng.integers(0, 255, size=16, dtype=np.uint8)) for __ in range(200)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_reasonable(self, rng):
        bloom = BloomFilter(8192, 4)
        for __ in range(200):
            bloom.add(bytes(rng.integers(0, 255, size=16, dtype=np.uint8)))
        false_positives = sum(
            bytes(rng.integers(0, 255, size=16, dtype=np.uint8)) in bloom
            for __ in range(500)
        )
        assert false_positives / 500 < 0.1

    def test_size(self):
        assert BloomFilter(4096, 3).size_bytes == 512

    def test_invalid_params(self):
        with pytest.raises(ValidationError):
            BloomFilter(4, 0)


class TestQuantizeKey:
    def test_same_cell_same_key(self):
        a = quantize_key(np.array([0.11, 0.52]), 8)
        b = quantize_key(np.array([0.12, 0.53]), 8)
        assert a == b

    def test_adjacent_cells_differ(self):
        a = quantize_key(np.array([0.11, 0.52]), 8)
        b = quantize_key(np.array([0.14, 0.52]), 8)  # crosses 0.125 boundary
        assert a != b

    def test_boundary_clipped(self):
        quantize_key(np.array([1.0, 0.0]), 8)  # no crash


class TestBloomPublisher:
    @pytest.fixture
    def published(self, rng):
        publisher = BloomPublisher(8, cells_per_dim=4)
        data = rng.random((60, 8))
        for peer in range(6):
            block = slice(peer * 10, (peer + 1) * 10)
            publisher.publish_peer(peer, data[block], np.arange(60)[block])
        return publisher, data

    def test_point_query_finds_exact_items(self, published):
        publisher, data = published
        for i in (0, 17, 59):
            assert i in publisher.point_query(data[i])

    def test_candidates_include_holder(self, published):
        publisher, data = published
        # Peer 3 holds items 30-39.
        assert 3 in publisher.candidate_peers(data[33])

    def test_bandwidth_accounting(self, published):
        publisher, __ = published
        assert publisher.bytes_published == 6 * publisher.filters[0].size_bytes

    def test_similarity_blindness(self, rng):
        """The paper's argument: near-but-not-identical items are missed
        when they fall into other quantisation cells."""
        publisher = BloomPublisher(8, cells_per_dim=8)
        base = rng.random((30, 8))
        publisher.publish_peer(0, base, np.arange(30))
        # Perturb queries so most cross a cell boundary in some dimension.
        missed = 0
        for i in range(30):
            query = np.clip(base[i] + rng.normal(0, 0.08, 8), 0, 1)
            true_close = np.linalg.norm(base[i] - query) < 0.5
            found = publisher.range_query(query, 0.5)
            if true_close and i not in found:
                missed += 1
        assert missed > 5  # structural misses, not noise
