"""Unit and property tests for the orthonormal filter-bank DWT."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DimensionalityError, ValidationError
from repro.wavelets.filters import SCALING_FILTERS, scaling_filter, wavelet_filter
from repro.wavelets.transform import Wavelet, dwt_step, idwt_step, wavedec, waverec

WAVELETS = sorted(SCALING_FILTERS)


def vectors(dim: int):
    return arrays(
        np.float64,
        (dim,),
        elements=st.floats(min_value=-10.0, max_value=10.0, width=64),
    )


class TestFilters:
    @pytest.mark.parametrize("name", WAVELETS)
    def test_scaling_filter_sums_to_sqrt2(self, name):
        assert np.isclose(scaling_filter(name).sum(), np.sqrt(2.0))

    @pytest.mark.parametrize("name", WAVELETS)
    def test_scaling_filter_unit_norm(self, name):
        h = scaling_filter(name)
        assert np.isclose(np.dot(h, h), 1.0)

    @pytest.mark.parametrize("name", WAVELETS)
    def test_wavelet_filter_orthogonal_to_scaling(self, name):
        h = scaling_filter(name)
        g = wavelet_filter(name)
        assert np.isclose(np.dot(h, g), 0.0, atol=1e-12)

    @pytest.mark.parametrize("name", WAVELETS)
    def test_wavelet_filter_zero_sum(self, name):
        assert np.isclose(wavelet_filter(name).sum(), 0.0, atol=1e-10)

    def test_unknown_wavelet(self):
        with pytest.raises(ValidationError, match="unknown wavelet"):
            scaling_filter("db99")


class TestDwtStep:
    @pytest.mark.parametrize("name", WAVELETS)
    def test_step_roundtrip(self, name, rng):
        x = rng.normal(size=16)
        a, d = dwt_step(x, name)
        assert np.allclose(idwt_step(a, d, name), x, atol=1e-10)

    def test_haar_step_matches_orthonormal_convention(self):
        x = np.array([1.0, 3.0])
        a, d = dwt_step(x, "haar")
        assert np.isclose(a[0], 4.0 / np.sqrt(2.0))
        assert np.isclose(d[0], -2.0 / np.sqrt(2.0))

    def test_odd_length_rejected(self):
        with pytest.raises(DimensionalityError):
            dwt_step(np.zeros(5))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(DimensionalityError):
            idwt_step(np.zeros(2), np.zeros(4))


class TestWavedec:
    @pytest.mark.parametrize("name", WAVELETS)
    @given(x=vectors(32))
    def test_perfect_reconstruction(self, name, x):
        approx, details = wavedec(x, name)
        assert np.allclose(waverec(approx, details, name), x, atol=1e-9)

    @pytest.mark.parametrize("name", WAVELETS)
    def test_parseval_energy_preserved(self, name, rng):
        x = rng.normal(size=64)
        approx, details = wavedec(x, name)
        energy = np.dot(approx, approx) + sum(np.dot(d, d) for d in details)
        assert np.isclose(energy, np.dot(x, x), rtol=1e-10)

    def test_level_count(self):
        approx, details = wavedec(np.zeros(16), "haar", level=2)
        assert approx.shape[-1] == 4
        assert len(details) == 2

    def test_rejects_bad_level(self):
        with pytest.raises(DimensionalityError):
            wavedec(np.zeros(8), level=4)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DimensionalityError):
            wavedec(np.zeros(12))

    def test_matrix_batch(self, rng):
        x = rng.normal(size=(4, 16))
        approx, details = wavedec(x, "db2")
        recon = waverec(approx, details, "db2")
        assert np.allclose(recon, x, atol=1e-9)

    def test_wavelet_object_reuse(self, rng):
        w = Wavelet("db3")
        x = rng.normal(size=8)
        a1, d1 = wavedec(x, w)
        a2, d2 = wavedec(x, "db3")
        assert np.allclose(a1, a2)

    @pytest.mark.parametrize("name", ["db2", "db3", "db4"])
    def test_orthonormal_distance_preservation(self, name, rng):
        """Orthonormal DWT preserves distances exactly (isometry)."""
        x, y = rng.normal(size=(2, 32))
        ax, dx = wavedec(x, name)
        ay, dy = wavedec(y, name)
        transformed = np.concatenate([ax - ay] + [a - b for a, b in zip(dx, dy)])
        assert np.isclose(
            np.linalg.norm(transformed), np.linalg.norm(x - y), rtol=1e-10
        )
