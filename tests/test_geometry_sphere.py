"""Tests for d-ball volumes."""

import math

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.geometry.sphere import ball_volume, unit_ball_volume


class TestUnitBallVolume:
    def test_known_values(self):
        assert np.isclose(unit_ball_volume(1), 2.0)
        assert np.isclose(unit_ball_volume(2), math.pi)
        assert np.isclose(unit_ball_volume(3), 4.0 * math.pi / 3.0)
        assert np.isclose(unit_ball_volume(4), math.pi**2 / 2.0)

    def test_high_dim_shrinks(self):
        # Famous fact: unit-ball volume peaks at d=5 then decays to zero.
        volumes = [unit_ball_volume(d) for d in range(1, 40)]
        assert max(volumes) == volumes[4]
        assert volumes[-1] < 1e-8

    def test_invalid_dim(self):
        with pytest.raises(ValidationError):
            unit_ball_volume(0)


class TestBallVolume:
    def test_scaling_law(self):
        assert np.isclose(ball_volume(2.0, 3), unit_ball_volume(3) * 8.0)

    def test_zero_radius(self):
        assert ball_volume(0.0, 5) == 0.0

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            ball_volume(-1.0, 2)
