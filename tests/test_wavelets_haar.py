"""Unit and property tests for the averaging-Haar transform."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import DimensionalityError
from repro.wavelets.haar import (
    haar_decompose,
    haar_reconstruct,
    haar_step,
    inverse_haar_step,
)


def unit_vectors(dim: int):
    """Strategy: a float vector of length ``dim`` with entries in [0, 1]."""
    return arrays(
        np.float64,
        (dim,),
        elements=st.floats(min_value=0.0, max_value=1.0, width=64),
    )


class TestHaarStep:
    def test_known_values(self):
        a, d = haar_step(np.array([1.0, 3.0, 5.0, 1.0]))
        assert np.allclose(a, [2.0, 3.0])
        assert np.allclose(d, [-1.0, 2.0])

    def test_rejects_odd_length(self):
        with pytest.raises(DimensionalityError, match="even"):
            haar_step(np.zeros(3))

    def test_inverse_step_roundtrip(self):
        x = np.array([0.2, 0.9, 0.1, 0.4])
        assert np.allclose(inverse_haar_step(*haar_step(x)), x)

    def test_inverse_shape_mismatch(self):
        with pytest.raises(DimensionalityError):
            inverse_haar_step(np.zeros(2), np.zeros(3))

    def test_matrix_input(self):
        x = np.arange(12.0).reshape(3, 4)
        a, d = haar_step(x)
        assert a.shape == (3, 2)
        for row in range(3):
            ar, dr = haar_step(x[row])
            assert np.allclose(a[row], ar)
            assert np.allclose(d[row], dr)


class TestHaarDecompose:
    @given(unit_vectors(16))
    def test_perfect_reconstruction(self, x):
        approx, details = haar_decompose(x)
        assert np.allclose(haar_reconstruct(approx, details), x, atol=1e-12)

    @given(unit_vectors(8))
    def test_partial_levels_roundtrip(self, x):
        approx, details = haar_decompose(x, levels=2)
        assert approx.shape[-1] == 2
        assert np.allclose(haar_reconstruct(approx, details), x, atol=1e-12)

    def test_detail_ordering_coarse_to_fine(self):
        __, details = haar_decompose(np.arange(16.0))
        assert [d.shape[-1] for d in details] == [1, 2, 4, 8]

    def test_full_decomposition_approx_is_mean(self):
        x = np.array([0.1, 0.5, 0.3, 0.9])
        approx, __ = haar_decompose(x)
        assert np.allclose(approx, x.mean())

    def test_rejects_non_power_of_two(self):
        with pytest.raises(DimensionalityError):
            haar_decompose(np.zeros(6))

    def test_rejects_too_many_levels(self):
        with pytest.raises(DimensionalityError):
            haar_decompose(np.zeros(4), levels=3)

    def test_zero_levels_is_identity(self):
        x = np.arange(4.0)
        approx, details = haar_decompose(x, levels=0)
        assert details == []
        assert np.allclose(approx, x)

    @given(unit_vectors(8), unit_vectors(8))
    def test_linearity(self, x, y):
        ax, dx = haar_decompose(x)
        ay, dy = haar_decompose(y)
        axy, dxy = haar_decompose(x + y)
        assert np.allclose(axy, ax + ay, atol=1e-12)
        for dl, dxl, dyl in zip(dxy, dx, dy):
            assert np.allclose(dl, dxl + dyl, atol=1e-12)

    @given(unit_vectors(16), unit_vectors(16))
    def test_distance_contracts_by_sqrt2_per_step(self, x, y):
        """One averaging-Haar step contracts distances by at most 1/sqrt(2)
        in both output bands — the engine of Theorem 3.1."""
        ax, dx = haar_step(x)
        ay, dy = haar_step(y)
        original = np.linalg.norm(x - y)
        bound = original / np.sqrt(2.0) + 1e-12
        assert np.linalg.norm(ax - ay) <= bound
        assert np.linalg.norm(dx - dy) <= bound

    @given(unit_vectors(16))
    def test_coefficient_ranges_for_unit_cube_data(self, x):
        approx, details = haar_decompose(x)
        assert 0.0 - 1e-12 <= approx[0] <= 1.0 + 1e-12
        for detail in details:
            assert detail.min() >= -0.5 - 1e-12
            assert detail.max() <= 0.5 + 1e-12

    def test_batch_matches_individual(self, rng):
        x = rng.random((5, 32))
        approx, details = haar_decompose(x)
        for row in range(5):
            a_row, d_row = haar_decompose(x[row])
            assert np.allclose(approx[row], a_row)
            for batch_d, single_d in zip(details, d_row):
                assert np.allclose(batch_d[row], single_d)
