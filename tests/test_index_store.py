"""Unit and property tests for the columnar level store.

Covers the store engine itself (columns, entry ids, refcounted
memberships, tombstones, compaction, generations), the ``CandidateSet``
staleness contract, and the property-based parity pin: store-backed
filtering and scoring must match the scalar ``StoredEntry.intersects`` /
``level_scores_scalar`` oracle to 1e-9.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import ClusterRecord
from repro.core.scoring import level_scores, level_scores_scalar
from repro.core.serialization import (
    level_store_from_dict,
    level_store_to_dict,
    load_level_store,
    save_level_store,
)
from repro.exceptions import StaleCandidateError, ValidationError
from repro.index import CandidateSet, LevelStore
from repro.overlay.base import StoredEntry


def _record(peer: int, items: int = 10) -> ClusterRecord:
    return ClusterRecord(peer_id=peer, items=items, level_name="A")


def _populate(store: LevelStore, n: int, d: int, rng, n_peers: int = 8):
    """Add ``n`` random spheres; returns their rows."""
    keys = rng.random((n, d))
    radii = rng.uniform(0.0, 0.5, n)
    peers = rng.integers(0, n_peers, n)
    return [
        store.add(keys[i], float(radii[i]), _record(int(peers[i])))
        for i in range(n)
    ]


class TestLevelStoreBasics:
    def test_add_assigns_monotonic_entry_ids(self, rng):
        store = LevelStore(3)
        rows = _populate(store, 5, 3, rng)
        ids = [store.entry_id_of(r) for r in rows]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5
        assert store.next_entry_id == max(ids) + 1

    def test_columns_mirror_values(self, rng):
        store = LevelStore(4)
        key = rng.random(4)
        row = store.add(key, 0.25, _record(7, items=42))
        view = store.view(row)
        assert np.allclose(view.key, key)
        assert view.radius == 0.25
        assert view.peer_id == 7
        assert view.items == 42.0
        assert view.value.level_name == "A"

    def test_dimension_mismatch_rejected(self, rng):
        store = LevelStore(4)
        with pytest.raises(ValidationError):
            store.add(rng.random(5), 0.1, _record(0))

    def test_negative_radius_rejected(self, rng):
        store = LevelStore(2)
        with pytest.raises(ValidationError):
            store.add(rng.random(2), -0.1, _record(0))

    def test_capacity_grows_geometrically(self, rng):
        store = LevelStore(2)
        _populate(store, 200, 2, rng)
        assert store.n_live == 200
        assert store.capacity >= 200

    def test_generation_bumps_on_every_mutation(self, rng):
        store = LevelStore(2)
        g0 = store.generation
        row = store.add(rng.random(2), 0.1, _record(0))
        g1 = store.generation
        assert g1 > g0
        membership = store.new_membership()
        membership.add(row)
        membership.discard(row)  # last holder: tombstones the row
        assert store.generation > g1


class TestMembershipRefcounts:
    def test_last_discard_tombstones(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        a = store.new_membership()
        b = store.new_membership()
        a.add(row)
        b.add(row)
        a.discard(row)
        assert store.n_live == 1  # b still holds it
        b.discard(row)
        assert store.n_live == 0
        assert store.n_tombstones == 1

    def test_double_add_is_idempotent(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        m = store.new_membership()
        assert m.add(row) is True
        assert m.add(row) is False
        assert len(m) == 1
        m.discard(row)
        assert store.n_live == 0

    def test_add_tombstoned_row_rejected(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        m = store.new_membership()
        m.add(row)
        m.discard(row)
        with pytest.raises(ValidationError):
            store.new_membership().add(row)

    def test_integrity_after_random_ops(self, rng):
        store = LevelStore(3)
        memberships = [store.new_membership() for __ in range(4)]
        rows = _populate(store, 40, 3, rng)
        for row in rows:
            for m in memberships:
                if rng.random() < 0.5:
                    m.add(row)
        for m in memberships:
            held = list(m.rows())
            for row in held:
                if rng.random() < 0.3:
                    m.discard(int(row))
        store.verify_integrity()


class TestCompaction:
    def _store_with_tombstones(self, rng, n=40, doomed=20):
        store = LevelStore(3, compact_min_tombstones=1, compact_fraction=0.1)
        m = store.new_membership()
        rows = _populate(store, n, 3, rng)
        for row in rows:
            m.add(row)
        survivors = {
            store.entry_id_of(r): np.array(store.key_of(r))
            for r in rows[doomed:]
        }
        m.discard_many(np.asarray(rows[:doomed], dtype=np.int64))
        return store, m, survivors

    def test_compact_rewrites_densely(self, rng):
        store, m, survivors = self._store_with_tombstones(rng)
        assert store.needs_compaction()
        compactions_before = store.compactions
        assert store.maybe_compact() is True
        assert store.compactions == compactions_before + 1
        assert store.n_tombstones == 0
        assert store.n_live == len(survivors)
        store.verify_integrity()

    def test_compact_remaps_memberships_and_ids(self, rng):
        store, m, survivors = self._store_with_tombstones(rng)
        store.compact()
        assert len(m) == len(survivors)
        for row in m.rows():
            entry_id = store.entry_id_of(int(row))
            assert entry_id in survivors
            assert np.allclose(store.key_of(int(row)), survivors[entry_id])

    def test_compact_preserves_scores(self, rng):
        store, m, __ = self._store_with_tombstones(rng)
        center = rng.random(3)
        before = level_scores(store.candidate_set(m.rows()), center, 0.6)
        store.compact()
        after = level_scores(store.candidate_set(m.rows()), center, 0.6)
        assert before == after

    def test_no_compaction_below_threshold(self, rng):
        store = LevelStore(2)  # default thresholds: 64 tombstones minimum
        m = store.new_membership()
        rows = _populate(store, 10, 2, rng)
        for row in rows:
            m.add(row)
        m.discard(rows[0])
        assert not store.needs_compaction()
        assert store.maybe_compact() is False


class TestCandidateSetStaleness:
    def _candidates(self, rng, n=10):
        store = LevelStore(3)
        m = store.new_membership()
        for row in _populate(store, n, 3, rng):
            m.add(row)
        return store, m, store.candidate_set(m.rows())

    def test_fresh_set_scores(self, rng):
        store, __, candidates = self._candidates(rng)
        assert not candidates.is_stale()
        scores = level_scores(candidates, rng.random(3), 0.8)
        assert isinstance(scores, dict)

    def test_mutation_staletes_outstanding_sets(self, rng):
        store, m, candidates = self._candidates(rng)
        store.add(rng.random(3), 0.1, _record(0))
        assert candidates.is_stale()
        with pytest.raises(StaleCandidateError):
            candidates.columns()
        with pytest.raises(StaleCandidateError):
            list(candidates)

    def test_withdrawal_staletes_outstanding_sets(self, rng):
        store, m, candidates = self._candidates(rng)
        m.discard(int(m.rows()[0]))
        with pytest.raises(StaleCandidateError):
            level_scores(candidates, rng.random(3), 0.8)

    def test_columns_memoized_and_slice_path_consistent(self, rng):
        store, m, candidates = self._candidates(rng, n=12)
        # Contiguous rows: the zero-copy slice path.
        keys, radii, items, peers, key_sq = candidates.columns()
        assert keys.base is not None  # a view, not a copy
        # Scattered rows: the fancy-index gather path.
        scattered = store.candidate_set(m.rows()[::2])
        k2 = scattered.columns()[0]
        assert np.allclose(k2, keys[::2])
        assert candidates.columns()[0] is keys  # memoized


class TestSerializationRoundTrip:
    def test_round_trip_preserves_entry_ids(self, rng, tmp_path):
        store = LevelStore(4)
        m = store.new_membership()
        rows = _populate(store, 12, 4, rng)
        for row in rows:
            m.add(row)
        # Tombstone a few rows so the snapshot skips them and the id
        # allocator high-water mark exceeds the surviving ids.
        m.discard_many(np.asarray(rows[:4], dtype=np.int64))
        path = tmp_path / "store.json"
        save_level_store(store, path)
        restored = load_level_store(path)
        assert restored.dimensionality == 4
        assert restored.n_live == store.n_live
        assert restored.next_entry_id >= store.next_entry_id
        for row in rows[4:]:
            entry_id = store.entry_id_of(row)
            new_row = restored.row_of(entry_id)
            assert np.allclose(restored.key_of(new_row), store.key_of(row))
            assert restored.radius_of(new_row) == store.radius_of(row)
            assert (
                restored.value_of(new_row).peer_id
                == store.value_of(row).peer_id
            )
        # New ids can never collide with restored (or tombstoned) ones.
        fresh = restored.add(rng.random(4), 0.1, _record(9))
        assert restored.entry_id_of(fresh) >= store.next_entry_id

    def test_duplicate_entry_id_rejected(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        with pytest.raises(ValidationError):
            store.restore(
                store.entry_id_of(row), rng.random(2), 0.1, _record(1)
            )

    def test_bad_payload_rejected(self):
        with pytest.raises(ValidationError):
            level_store_from_dict({"store_format_version": 999})
        with pytest.raises(ValidationError):
            level_store_from_dict([1, 2, 3])

    def test_dict_round_trip_equals_file_round_trip(self, rng):
        store = LevelStore(2)
        m = store.new_membership()
        for row in _populate(store, 5, 2, rng):
            m.add(row)
        payload = level_store_to_dict(store)
        restored = level_store_from_dict(payload)
        assert restored.n_live == 5
        assert list(restored.live_rows()) == list(range(5))


class TestUpdateEntry:
    def _one_entry(self, rng):
        store = LevelStore(3)
        m = store.new_membership()
        key = rng.random(3)
        row = store.add(key, 0.2, _record(4, items=12))
        m.add(row)
        return store, m, store.entry_id_of(row), key

    def test_noop_update_does_not_bump_generation(self, rng):
        store, m, entry_id, key = self._one_entry(rng)
        candidates = store.candidate_set(m.rows())
        generation = store.generation
        # Re-patching the stored state exactly is the adaptation loop's
        # steady state; it must not invalidate outstanding snapshots.
        store.update_entry(
            entry_id, key=key, radius=0.2, value=_record(4, items=12)
        )
        assert store.generation == generation
        assert not candidates.is_stale()
        candidates.columns()  # does not raise

    def test_real_radius_change_bumps_generation(self, rng):
        store, m, entry_id, key = self._one_entry(rng)
        candidates = store.candidate_set(m.rows())
        generation = store.generation
        row = store.update_entry(entry_id, radius=0.3)
        assert store.generation == generation + 1
        assert store.radius_of(row) == 0.3
        assert candidates.is_stale()
        with pytest.raises(StaleCandidateError):
            candidates.columns()

    def test_real_key_and_value_changes_bump_generation(self, rng):
        store, __, entry_id, key = self._one_entry(rng)
        generation = store.generation
        store.update_entry(entry_id, value=_record(4, items=13))
        assert store.generation == generation + 1
        store.update_entry(entry_id, key=rng.random(3))
        assert store.generation == generation + 2

    def test_all_none_update_is_noop(self, rng):
        store, __, entry_id, __key = self._one_entry(rng)
        generation = store.generation
        store.update_entry(entry_id)
        assert store.generation == generation

    def test_equal_payload_object_still_swapped_in(self, rng):
        store, __, entry_id, __key = self._one_entry(rng)
        replacement = _record(4, items=12)
        row = store.update_entry(entry_id, value=replacement)
        assert store.value_of(row) is replacement


class TestBatchedRemoval:
    def _twin_stores(self, seed, n=60, n_peers=5):
        """Two identically populated stores with identical memberships."""
        stores = []
        for __ in range(2):
            rng = np.random.default_rng(seed)
            store = LevelStore(
                3, compact_min_tombstones=1, compact_fraction=0.1
            )
            memberships = [store.new_membership() for _ in range(4)]
            for row in _populate(store, n, 3, rng, n_peers=n_peers):
                memberships[0].add(row)
                for m in memberships[1:]:
                    if rng.random() < 0.4:
                        m.add(row)
            stores.append((store, memberships))
        return stores

    @staticmethod
    def _identity(store, memberships):
        """Row-index-free snapshot: entry ids, keys, and held sets."""
        live = {
            int(store.entry_id_of(int(row))): (
                tuple(store.key_of(int(row))),
                store.radius_of(int(row)),
                store.view(int(row)).peer_id,
            )
            for row in store.live_rows()
        }
        held = [
            {int(store.entry_id_of(int(row))) for row in m.rows()}
            for m in memberships
        ]
        return live, held

    def test_batched_matches_sequential_reference(self):
        (batched, b_members), (sequential, s_members) = self._twin_stores(7)
        doomed = sorted(
            int(sequential.entry_id_of(int(row)))
            for row in sequential.rows_for_peer(2)
        )
        assert doomed  # the workload must actually exercise removal
        removed = batched.remove_peer_entries(2)
        for entry_id in doomed:
            assert sequential.remove_entry(entry_id)
        sequential.maybe_compact()
        assert removed == len(doomed)
        assert self._identity(batched, b_members) == self._identity(
            sequential, s_members
        )
        batched.verify_integrity()
        sequential.verify_integrity()

    def test_unknown_peer_removes_nothing(self, rng):
        store = LevelStore(3)
        m = store.new_membership()
        for row in _populate(store, 10, 3, rng):
            m.add(row)
        generation = store.generation
        assert store.remove_peer_entries(999) == 0
        assert store.generation == generation
        assert store.n_live == 10


class TestQueryHeat:
    def test_union_bumps_heat_but_not_generation(self, rng):
        store = LevelStore(3)
        m = store.new_membership()
        rows = _populate(store, 6, 3, rng)
        for row in rows:
            m.add(row)
        candidates = store.candidate_set(m.rows())
        generation = store.generation
        merged = store.union_candidates(
            [np.asarray(rows[:4]), np.asarray(rows[2:])]
        )
        assert len(merged.rows) == 6  # deduplicated union
        # Heat is observational: outstanding snapshots stay valid.
        assert store.generation == generation
        assert not candidates.is_stale()
        heat = store.sphere_heat()
        assert all(heat[store.entry_id_of(r)] == 1 for r in rows)

    def test_compaction_preserves_heat(self, rng):
        store = LevelStore(3, compact_min_tombstones=1, compact_fraction=0.1)
        m = store.new_membership()
        rows = _populate(store, 20, 3, rng)
        for row in rows:
            m.add(row)
        for __ in range(3):
            store.union_candidates([np.asarray(rows[10:])])
        before = store.sphere_heat()
        m.discard_many(np.asarray(rows[:10], dtype=np.int64))
        store.compact()
        after = store.sphere_heat()
        assert after == {
            eid: heat for eid, heat in before.items() if eid in after
        }
        assert sum(after.values()) == 30  # 10 survivors x 3 queries


class TestChurnProperties:
    """Interleaved grow / tombstone / compact against a shadow model."""

    @given(seed=st.integers(0, 500))
    @settings(max_examples=20, deadline=None)
    def test_interleaved_ops_keep_store_consistent(self, seed):
        rng = np.random.default_rng(seed)
        d = 3
        store = LevelStore(d, compact_min_tombstones=1, compact_fraction=0.25)
        memberships = [store.new_membership() for __ in range(3)]
        shadow: dict[int, tuple] = {}
        held: dict[int, set] = {0: set(), 1: set(), 2: set()}
        for __ in range(int(rng.integers(30, 80))):
            op = rng.random()
            if op < 0.55 or not shadow:
                key = rng.random(d)
                radius = float(rng.uniform(0.0, 0.5))
                peer = int(rng.integers(5))
                row = store.add(key, radius, _record(peer))
                entry_id = store.entry_id_of(row)
                shadow[entry_id] = (tuple(key), radius, peer)
                memberships[0].add(row)
                held[0].add(entry_id)
                for index in (1, 2):
                    if rng.random() < 0.5:
                        memberships[index].add(row)
                        held[index].add(entry_id)
            elif op < 0.9:
                entry_id = int(rng.choice(sorted(shadow)))
                holders = [i for i in range(3) if entry_id in held[i]]
                index = holders[int(rng.integers(len(holders)))]
                memberships[index].discard(store.row_of(entry_id))
                held[index].discard(entry_id)
                if not any(entry_id in h for h in held.values()):
                    del shadow[entry_id]  # last holder: tombstoned
            else:
                store.compact()
            store.verify_integrity()
        assert store.n_live == len(shadow)
        for entry_id, (key, radius, peer) in shadow.items():
            row = store.row_of(entry_id)
            assert tuple(store.key_of(row)) == key
            assert store.radius_of(row) == radius
            assert store.view(row).peer_id == peer
        for index, membership in enumerate(memberships):
            got = {
                int(store.entry_id_of(int(row)))
                for row in membership.rows()
            }
            assert got == held[index]


class TestParityProperties:
    """Store-backed filtering/scoring pinned to the scalar oracle."""

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_filter_matches_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 9))
        n = int(rng.integers(1, 60))
        store = LevelStore(d)
        m = store.new_membership()
        entries = []
        for __ in range(n):
            key = rng.random(d)
            radius = float(rng.uniform(0.0, 0.6))
            value = _record(int(rng.integers(6)))
            m.add(store.add(key, radius, value))
            entries.append(StoredEntry(key=key, radius=radius, value=value))
        center = rng.random(d)
        eps = float(rng.uniform(0.0, 1.2))
        expected = [i for i, e in enumerate(entries)
                    if e.intersects(center, eps)]
        got = list(store.intersecting_rows(m.rows(), center, eps))
        assert got == expected
        mask = store.intersection_mask(center, eps)
        assert list(m.rows_matching(mask)) == expected

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_candidate_scoring_matches_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 9))
        n = int(rng.integers(1, 60))
        store = LevelStore(d)
        m = store.new_membership()
        entries = []
        for __ in range(n):
            key = rng.random(d)
            radius = float(rng.uniform(0.0, 0.6))
            value = _record(int(rng.integers(6)), items=int(rng.integers(1, 40)))
            m.add(store.add(key, radius, value))
            entries.append(StoredEntry(key=key, radius=radius, value=value))
        center = rng.random(d)
        eps = float(rng.uniform(0.0, 1.2))
        batch_stats: dict = {}
        scalar_stats: dict = {}
        candidates = store.candidate_set(m.rows())
        assert isinstance(candidates, CandidateSet)
        batch = level_scores(candidates, center, eps, stats=batch_stats)
        scalar = level_scores_scalar(
            entries, center, eps, stats=scalar_stats
        )
        assert batch_stats == scalar_stats
        assert set(batch) == set(scalar)
        for peer, truth in scalar.items():
            assert batch[peer] == pytest.approx(truth, rel=1e-9)
