"""Unit and property tests for the columnar level store.

Covers the store engine itself (columns, entry ids, refcounted
memberships, tombstones, compaction, generations), the ``CandidateSet``
staleness contract, and the property-based parity pin: store-backed
filtering and scoring must match the scalar ``StoredEntry.intersects`` /
``level_scores_scalar`` oracle to 1e-9.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import ClusterRecord
from repro.core.scoring import level_scores, level_scores_scalar
from repro.core.serialization import (
    level_store_from_dict,
    level_store_to_dict,
    load_level_store,
    save_level_store,
)
from repro.exceptions import StaleCandidateError, ValidationError
from repro.index import CandidateSet, LevelStore
from repro.overlay.base import StoredEntry


def _record(peer: int, items: int = 10) -> ClusterRecord:
    return ClusterRecord(peer_id=peer, items=items, level_name="A")


def _populate(store: LevelStore, n: int, d: int, rng, n_peers: int = 8):
    """Add ``n`` random spheres; returns their rows."""
    keys = rng.random((n, d))
    radii = rng.uniform(0.0, 0.5, n)
    peers = rng.integers(0, n_peers, n)
    return [
        store.add(keys[i], float(radii[i]), _record(int(peers[i])))
        for i in range(n)
    ]


class TestLevelStoreBasics:
    def test_add_assigns_monotonic_entry_ids(self, rng):
        store = LevelStore(3)
        rows = _populate(store, 5, 3, rng)
        ids = [store.entry_id_of(r) for r in rows]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5
        assert store.next_entry_id == max(ids) + 1

    def test_columns_mirror_values(self, rng):
        store = LevelStore(4)
        key = rng.random(4)
        row = store.add(key, 0.25, _record(7, items=42))
        view = store.view(row)
        assert np.allclose(view.key, key)
        assert view.radius == 0.25
        assert view.peer_id == 7
        assert view.items == 42.0
        assert view.value.level_name == "A"

    def test_dimension_mismatch_rejected(self, rng):
        store = LevelStore(4)
        with pytest.raises(ValidationError):
            store.add(rng.random(5), 0.1, _record(0))

    def test_negative_radius_rejected(self, rng):
        store = LevelStore(2)
        with pytest.raises(ValidationError):
            store.add(rng.random(2), -0.1, _record(0))

    def test_capacity_grows_geometrically(self, rng):
        store = LevelStore(2)
        _populate(store, 200, 2, rng)
        assert store.n_live == 200
        assert store.capacity >= 200

    def test_generation_bumps_on_every_mutation(self, rng):
        store = LevelStore(2)
        g0 = store.generation
        row = store.add(rng.random(2), 0.1, _record(0))
        g1 = store.generation
        assert g1 > g0
        membership = store.new_membership()
        membership.add(row)
        membership.discard(row)  # last holder: tombstones the row
        assert store.generation > g1


class TestMembershipRefcounts:
    def test_last_discard_tombstones(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        a = store.new_membership()
        b = store.new_membership()
        a.add(row)
        b.add(row)
        a.discard(row)
        assert store.n_live == 1  # b still holds it
        b.discard(row)
        assert store.n_live == 0
        assert store.n_tombstones == 1

    def test_double_add_is_idempotent(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        m = store.new_membership()
        assert m.add(row) is True
        assert m.add(row) is False
        assert len(m) == 1
        m.discard(row)
        assert store.n_live == 0

    def test_add_tombstoned_row_rejected(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        m = store.new_membership()
        m.add(row)
        m.discard(row)
        with pytest.raises(ValidationError):
            store.new_membership().add(row)

    def test_integrity_after_random_ops(self, rng):
        store = LevelStore(3)
        memberships = [store.new_membership() for __ in range(4)]
        rows = _populate(store, 40, 3, rng)
        for row in rows:
            for m in memberships:
                if rng.random() < 0.5:
                    m.add(row)
        for m in memberships:
            held = list(m.rows())
            for row in held:
                if rng.random() < 0.3:
                    m.discard(int(row))
        store.verify_integrity()


class TestCompaction:
    def _store_with_tombstones(self, rng, n=40, doomed=20):
        store = LevelStore(3, compact_min_tombstones=1, compact_fraction=0.1)
        m = store.new_membership()
        rows = _populate(store, n, 3, rng)
        for row in rows:
            m.add(row)
        survivors = {
            store.entry_id_of(r): np.array(store.key_of(r))
            for r in rows[doomed:]
        }
        m.discard_many(np.asarray(rows[:doomed], dtype=np.int64))
        return store, m, survivors

    def test_compact_rewrites_densely(self, rng):
        store, m, survivors = self._store_with_tombstones(rng)
        assert store.needs_compaction()
        compactions_before = store.compactions
        assert store.maybe_compact() is True
        assert store.compactions == compactions_before + 1
        assert store.n_tombstones == 0
        assert store.n_live == len(survivors)
        store.verify_integrity()

    def test_compact_remaps_memberships_and_ids(self, rng):
        store, m, survivors = self._store_with_tombstones(rng)
        store.compact()
        assert len(m) == len(survivors)
        for row in m.rows():
            entry_id = store.entry_id_of(int(row))
            assert entry_id in survivors
            assert np.allclose(store.key_of(int(row)), survivors[entry_id])

    def test_compact_preserves_scores(self, rng):
        store, m, __ = self._store_with_tombstones(rng)
        center = rng.random(3)
        before = level_scores(store.candidate_set(m.rows()), center, 0.6)
        store.compact()
        after = level_scores(store.candidate_set(m.rows()), center, 0.6)
        assert before == after

    def test_no_compaction_below_threshold(self, rng):
        store = LevelStore(2)  # default thresholds: 64 tombstones minimum
        m = store.new_membership()
        rows = _populate(store, 10, 2, rng)
        for row in rows:
            m.add(row)
        m.discard(rows[0])
        assert not store.needs_compaction()
        assert store.maybe_compact() is False


class TestCandidateSetStaleness:
    def _candidates(self, rng, n=10):
        store = LevelStore(3)
        m = store.new_membership()
        for row in _populate(store, n, 3, rng):
            m.add(row)
        return store, m, store.candidate_set(m.rows())

    def test_fresh_set_scores(self, rng):
        store, __, candidates = self._candidates(rng)
        assert not candidates.is_stale()
        scores = level_scores(candidates, rng.random(3), 0.8)
        assert isinstance(scores, dict)

    def test_mutation_staletes_outstanding_sets(self, rng):
        store, m, candidates = self._candidates(rng)
        store.add(rng.random(3), 0.1, _record(0))
        assert candidates.is_stale()
        with pytest.raises(StaleCandidateError):
            candidates.columns()
        with pytest.raises(StaleCandidateError):
            list(candidates)

    def test_withdrawal_staletes_outstanding_sets(self, rng):
        store, m, candidates = self._candidates(rng)
        m.discard(int(m.rows()[0]))
        with pytest.raises(StaleCandidateError):
            level_scores(candidates, rng.random(3), 0.8)

    def test_columns_memoized_and_slice_path_consistent(self, rng):
        store, m, candidates = self._candidates(rng, n=12)
        # Contiguous rows: the zero-copy slice path.
        keys, radii, items, peers, key_sq = candidates.columns()
        assert keys.base is not None  # a view, not a copy
        # Scattered rows: the fancy-index gather path.
        scattered = store.candidate_set(m.rows()[::2])
        k2 = scattered.columns()[0]
        assert np.allclose(k2, keys[::2])
        assert candidates.columns()[0] is keys  # memoized


class TestSerializationRoundTrip:
    def test_round_trip_preserves_entry_ids(self, rng, tmp_path):
        store = LevelStore(4)
        m = store.new_membership()
        rows = _populate(store, 12, 4, rng)
        for row in rows:
            m.add(row)
        # Tombstone a few rows so the snapshot skips them and the id
        # allocator high-water mark exceeds the surviving ids.
        m.discard_many(np.asarray(rows[:4], dtype=np.int64))
        path = tmp_path / "store.json"
        save_level_store(store, path)
        restored = load_level_store(path)
        assert restored.dimensionality == 4
        assert restored.n_live == store.n_live
        assert restored.next_entry_id >= store.next_entry_id
        for row in rows[4:]:
            entry_id = store.entry_id_of(row)
            new_row = restored.row_of(entry_id)
            assert np.allclose(restored.key_of(new_row), store.key_of(row))
            assert restored.radius_of(new_row) == store.radius_of(row)
            assert (
                restored.value_of(new_row).peer_id
                == store.value_of(row).peer_id
            )
        # New ids can never collide with restored (or tombstoned) ones.
        fresh = restored.add(rng.random(4), 0.1, _record(9))
        assert restored.entry_id_of(fresh) >= store.next_entry_id

    def test_duplicate_entry_id_rejected(self, rng):
        store = LevelStore(2)
        row = store.add(rng.random(2), 0.1, _record(0))
        with pytest.raises(ValidationError):
            store.restore(
                store.entry_id_of(row), rng.random(2), 0.1, _record(1)
            )

    def test_bad_payload_rejected(self):
        with pytest.raises(ValidationError):
            level_store_from_dict({"store_format_version": 999})
        with pytest.raises(ValidationError):
            level_store_from_dict([1, 2, 3])

    def test_dict_round_trip_equals_file_round_trip(self, rng):
        store = LevelStore(2)
        m = store.new_membership()
        for row in _populate(store, 5, 2, rng):
            m.add(row)
        payload = level_store_to_dict(store)
        restored = level_store_from_dict(payload)
        assert restored.n_live == 5
        assert list(restored.live_rows()) == list(range(5))


class TestParityProperties:
    """Store-backed filtering/scoring pinned to the scalar oracle."""

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_filter_matches_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 9))
        n = int(rng.integers(1, 60))
        store = LevelStore(d)
        m = store.new_membership()
        entries = []
        for __ in range(n):
            key = rng.random(d)
            radius = float(rng.uniform(0.0, 0.6))
            value = _record(int(rng.integers(6)))
            m.add(store.add(key, radius, value))
            entries.append(StoredEntry(key=key, radius=radius, value=value))
        center = rng.random(d)
        eps = float(rng.uniform(0.0, 1.2))
        expected = [i for i, e in enumerate(entries)
                    if e.intersects(center, eps)]
        got = list(store.intersecting_rows(m.rows(), center, eps))
        assert got == expected
        mask = store.intersection_mask(center, eps)
        assert list(m.rows_matching(mask)) == expected

    @given(seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_candidate_scoring_matches_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        d = int(rng.integers(2, 9))
        n = int(rng.integers(1, 60))
        store = LevelStore(d)
        m = store.new_membership()
        entries = []
        for __ in range(n):
            key = rng.random(d)
            radius = float(rng.uniform(0.0, 0.6))
            value = _record(int(rng.integers(6)), items=int(rng.integers(1, 40)))
            m.add(store.add(key, radius, value))
            entries.append(StoredEntry(key=key, radius=radius, value=value))
        center = rng.random(d)
        eps = float(rng.uniform(0.0, 1.2))
        batch_stats: dict = {}
        scalar_stats: dict = {}
        candidates = store.candidate_set(m.rows())
        assert isinstance(candidates, CandidateSet)
        batch = level_scores(candidates, center, eps, stats=batch_stats)
        scalar = level_scores_scalar(
            entries, center, eps, stats=scalar_stats
        )
        assert batch_stats == scalar_stats
        assert set(batch) == set(scalar)
        for peer, truth in scalar.items():
            assert batch[peer] == pytest.approx(truth, rel=1e-9)
