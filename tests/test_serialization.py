"""Tests for summary persistence (JSON round-trips, tamper rejection)."""

import json

import numpy as np
import pytest

from repro.clustering.summaries import summarize_peer_data
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.serialization import (
    FORMAT_VERSION,
    load_summary,
    save_summary,
    summary_from_dict,
    summary_to_dict,
)
from repro.exceptions import ValidationError


@pytest.fixture
def summary(rng):
    return summarize_peer_data(
        rng.random((40, 16)), n_clusters=4, levels_used=3, rng=0
    )


class TestRoundTrip:
    def test_dict_roundtrip(self, summary):
        restored = summary_from_dict(summary_to_dict(summary))
        assert restored.dimensionality == summary.dimensionality
        assert list(restored.levels) == list(summary.levels)
        for level in summary.levels:
            assert len(restored.spheres[level]) == len(summary.spheres[level])
            for a, b in zip(restored.spheres[level], summary.spheres[level]):
                assert np.allclose(a.centroid, b.centroid)
                assert a.radius == b.radius
                assert a.items == b.items
            assert np.array_equal(
                restored.labels[level], summary.labels[level]
            )

    def test_file_roundtrip(self, summary, tmp_path):
        path = tmp_path / "summary.json"
        save_summary(summary, path)
        restored = load_summary(path)
        assert restored.total_spheres == summary.total_spheres

    def test_payload_is_plain_json(self, summary):
        text = json.dumps(summary_to_dict(summary))
        assert "centroid" in text


class TestValidation:
    def test_wrong_version_rejected(self, summary):
        payload = summary_to_dict(summary)
        payload["format_version"] = FORMAT_VERSION + 1
        with pytest.raises(ValidationError, match="format version"):
            summary_from_dict(payload)

    def test_missing_field_rejected(self, summary):
        payload = summary_to_dict(summary)
        del payload["spheres"]
        with pytest.raises(ValidationError, match="malformed"):
            summary_from_dict(payload)

    def test_bad_level_token_rejected(self, summary):
        payload = summary_to_dict(summary)
        payload["levels"][0] = "Z9"
        with pytest.raises(ValidationError, match="level token"):
            summary_from_dict(payload)

    def test_dimension_tamper_rejected(self, summary):
        payload = summary_to_dict(summary)
        # Corrupt a sphere's centroid to the wrong dimensionality.
        payload["spheres"]["D1"][0]["centroid"] = [0.5]
        with pytest.raises(ValidationError):
            summary_from_dict(payload)

    def test_non_json_file_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text("not json {")
        with pytest.raises(ValidationError, match="not valid JSON"):
            load_summary(path)

    def test_non_dict_payload_rejected(self):
        with pytest.raises(ValidationError):
            summary_from_dict([1, 2, 3])


class TestPrebuiltPublication:
    def test_publish_with_restored_summary(self, rng, tmp_path):
        config = HyperMConfig(levels_used=3, n_clusters=4)
        data = rng.random((40, 16))

        # Session 1: build and persist.
        summary = summarize_peer_data(
            data, n_clusters=4, levels_used=3, rng=0
        )
        path = tmp_path / "peer.json"
        save_summary(summary, path)

        # Session 2: fresh network, instant publication.
        net = HyperMNetwork(16, config, rng=1)
        peer = net.add_peer(data)
        report = net.publish_peer(peer.peer_id, summary=load_summary(path))
        assert report.spheres_inserted == summary.total_spheres
        assert peer.summary is not None

        # And queries over the restored summaries work.
        result = net.range_query(data[0], 0.5)
        assert any(item.distance <= 1e-9 for item in result.items)

    def test_mismatched_summary_rejected(self, rng):
        config = HyperMConfig(levels_used=3, n_clusters=4)
        net = HyperMNetwork(16, config, rng=1)
        peer = net.add_peer(rng.random((10, 16)))
        wrong_dim = summarize_peer_data(
            rng.random((10, 32)), n_clusters=2, levels_used=3, rng=0
        )
        with pytest.raises(ValidationError, match="32-d"):
            net.publish_peer(peer.peer_id, summary=wrong_dim)
        wrong_levels = summarize_peer_data(
            rng.random((10, 16)), n_clusters=2, levels_used=2, rng=0
        )
        with pytest.raises(ValidationError, match="levels"):
            net.publish_peer(peer.peer_id, summary=wrong_levels)
