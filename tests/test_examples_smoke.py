"""Smoke-run the example scripts (they are user-facing documentation)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


@pytest.mark.slow
@pytest.mark.parametrize(
    "script",
    ["quickstart.py", "recurring_study_group.py"],
)
def test_example_runs(script):
    """The fast examples must run to completion and produce output."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 100


def test_all_examples_exist_and_are_documented():
    scripts = sorted(p.name for p in EXAMPLES.glob("*.py"))
    assert len(scripts) >= 5
    readme = (EXAMPLES.parent / "README.md").read_text()
    for script in scripts:
        assert script in readme, f"{script} missing from README examples table"
