"""Tests for the VBI-tree overlay (the paper's third named substrate)."""

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import ValidationError
from repro.overlay.vbi import VBITree


@pytest.fixture
def vbi():
    tree = VBITree(2, rng=0)
    tree.grow(12)
    return tree


class TestStructure:
    def test_regions_tile(self, vbi):
        assert np.isclose(vbi.total_region_volume(), 1.0)

    def test_unique_owner_per_point(self, vbi, rng):
        for __ in range(50):
            p = rng.random(2)
            owners = [
                nid
                for nid, leaf in vbi._nodes.items()
                if leaf.region.contains(p)
            ]
            assert len(owners) == 1

    def test_virtual_nodes_cover_children(self, vbi):
        for index, vn in vbi._tree.items():
            if vn.children is None:
                continue
            left, right = (vbi._tree[c] for c in vn.children)
            assert np.isclose(
                left.region.volume + right.region.volume, vn.region.volume
            )

    def test_managers_are_descendant_leaves(self, vbi):
        def leaves_below(index):
            vn = vbi._tree[index]
            if vn.leaf_id is not None:
                return {vn.leaf_id}
            out = set()
            for child in vn.children:
                out |= leaves_below(child)
            return out

        for index, vn in vbi._tree.items():
            assert vn.manager_id in leaves_below(index)

    def test_balanced_depth(self):
        tree = VBITree(2, rng=1)
        tree.grow(32)
        depths = [
            leaf.tree_index.bit_length() for leaf in tree._nodes.values()
        ]
        assert max(depths) - min(depths) <= 2


class TestRoutingAndData:
    def test_routing_reaches_owner(self, vbi, rng):
        for __ in range(20):
            p = rng.random(2)
            for start in list(vbi.node_ids)[:4]:
                owner, path = vbi._route(start, p)
                assert vbi.node(owner).region.contains(p)
                assert len(path) <= 2 * len(vbi._tree)

    def test_point_roundtrip(self, vbi):
        ids = vbi.node_ids
        vbi.insert(ids[0], [0.3, 0.7], "payload")
        receipt = vbi.lookup(ids[7], [0.3, 0.7])
        assert [e.value for e in receipt.entries] == ["payload"]

    def test_range_completeness(self, vbi, rng):
        points = rng.random((60, 2))
        ids = vbi.node_ids
        for i, p in enumerate(points):
            vbi.insert(ids[i % len(ids)], p, i)
        for __ in range(8):
            center = rng.random(2)
            radius = float(rng.uniform(0.05, 0.35))
            receipt = vbi.range_query(ids[0], center, radius)
            got = sorted(
                e.value for e in receipt.entries if isinstance(e.value, int)
            )
            want = sorted(
                i
                for i, p in enumerate(points)
                if np.linalg.norm(p - center) <= radius + 1e-12
            )
            assert got == want

    def test_sphere_replication_covers_leaves(self, vbi):
        center = np.array([0.5, 0.5])
        radius = 0.3
        vbi.insert(vbi.node_ids[0], center, "s", radius=radius)
        for nid, leaf in vbi._nodes.items():
            holds = any(e.value == "s" for e in leaf.store)
            overlaps = leaf.region.intersects_sphere(center, radius)
            assert holds == overlaps

    def test_routing_is_logarithmic(self):
        tree = VBITree(2, rng=2)
        tree.grow(64)
        rng = np.random.default_rng(3)
        hops = []
        for __ in range(30):
            start = int(rng.choice(tree.node_ids))
            __owner, path = tree._route(start, rng.random(2))
            hops.append(len(path))
        assert np.mean(hops) <= 14  # ~2·log2(64) manager transitions


class TestLeave:
    def test_leaf_sibling_merge(self, vbi, rng):
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            vbi.insert(vbi.node_ids[0], p, i)
        # Find a leaf whose sibling is a leaf.
        victim = None
        for nid, leaf in vbi._nodes.items():
            sibling = vbi._tree.get(vbi._sibling_index(leaf.tree_index))
            if sibling is not None and sibling.leaf_id is not None:
                victim = nid
                break
        assert victim is not None
        vbi.leave(victim)
        assert np.isclose(vbi.total_region_volume(), 1.0)
        self._assert_all_items_present(vbi, 30)

    def test_internal_sibling_uses_substitute(self, rng):
        tree = VBITree(2, rng=4)
        tree.grow(9)
        points = rng.random((20, 2))
        for i, p in enumerate(points):
            tree.insert(tree.node_ids[0], p, i)
        # The root's left child region owner after splits: pick a node
        # whose sibling slot is internal.
        victim = None
        for nid, leaf in tree._nodes.items():
            sibling = tree._tree.get(tree._sibling_index(leaf.tree_index))
            if sibling is not None and sibling.leaf_id is None:
                victim = nid
                break
        if victim is None:
            pytest.skip("no internal-sibling leaf in this configuration")
        tree.leave(victim)
        assert np.isclose(tree.total_region_volume(), 1.0)
        self._assert_all_items_present(tree, 20)

    def test_random_churn_sequence(self, rng):
        tree = VBITree(2, rng=5)
        tree.grow(10)
        points = rng.random((25, 2))
        for i, p in enumerate(points):
            tree.insert(tree.node_ids[0], p, i)
        for step in range(12):
            if len(tree) > 3 and rng.random() < 0.5:
                tree.leave(int(rng.choice(tree.node_ids)))
            else:
                tree.join()
            assert np.isclose(tree.total_region_volume(), 1.0)
        self._assert_all_items_present(tree, 25)
        # Queries remain complete after churn.
        center = np.array([0.5, 0.5])
        receipt = tree.range_query(tree.node_ids[0], center, 0.4)
        got = sorted(
            e.value for e in receipt.entries if isinstance(e.value, int)
        )
        want = sorted(
            i
            for i, p in enumerate(points)
            if np.linalg.norm(p - center) <= 0.4 + 1e-12
        )
        assert got == want

    @staticmethod
    def _assert_all_items_present(tree, n):
        held = set()
        for nid in tree.node_ids:
            for entry in tree.node(nid).store:
                if isinstance(entry.value, int):
                    held.add(entry.value)
        assert held == set(range(n))


class TestHyperMOnVBI:
    def test_full_pipeline(self, rng):
        config = HyperMConfig(levels_used=3, n_clusters=3)
        net = HyperMNetwork(16, config, rng=0, overlay_factory=VBITree)
        for p in range(5):
            net.add_peer(
                rng.random((20, 16)), np.arange(p * 20, (p + 1) * 20)
            )
        report = net.publish_all()
        assert report.items_published == 100
        query = net.peers[1].data[0]
        result = net.range_query(query, 0.6)
        assert any(item.distance <= 1e-9 for item in result.items)

    def test_invalid_grow(self):
        with pytest.raises(ValidationError):
            VBITree(2, rng=0).grow(0)
