"""Tests for evaluation metrics, workloads, and reporting."""

import numpy as np
import pytest

from repro.evaluation.metrics import (
    f1_score,
    gini_coefficient,
    participation_fraction,
    precision_recall,
)
from repro.evaluation.reporting import rows_to_table, series_to_table
from repro.evaluation.workloads import (
    build_histogram_network,
    build_markov_network,
    insert_post_hoc,
    sample_queries,
)
from repro.exceptions import ValidationError


class TestPrecisionRecall:
    def test_perfect(self):
        pr = precision_recall({1, 2, 3}, {1, 2, 3})
        assert pr.precision == 1.0 and pr.recall == 1.0 and pr.f1 == 1.0

    def test_partial(self):
        pr = precision_recall({1, 2, 3, 4}, {3, 4, 5, 6})
        assert pr.precision == 0.5
        assert pr.recall == 0.5

    def test_empty_conventions(self):
        assert precision_recall(set(), {1}).precision == 1.0
        assert precision_recall({1}, set()).recall == 1.0
        assert precision_recall(set(), set()).f1 == 1.0

    def test_f1(self):
        assert f1_score({1, 2}, {2, 3}) == pytest.approx(0.5)

    def test_zero_f1(self):
        assert precision_recall({1}, {2}).f1 == 0.0


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient([5, 5, 5, 5]) == pytest.approx(0.0)

    def test_concentrated_is_high(self):
        g = gini_coefficient([0, 0, 0, 100])
        assert g == pytest.approx(0.75)

    def test_all_zero(self):
        assert gini_coefficient([0, 0, 0]) == 0.0

    def test_scale_invariant(self):
        a = gini_coefficient([1, 2, 3, 4])
        b = gini_coefficient([10, 20, 30, 40])
        assert a == pytest.approx(b)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            gini_coefficient([])

    def test_negative_rejected(self):
        with pytest.raises(ValidationError):
            gini_coefficient([-1, 2])


class TestParticipation:
    def test_full(self):
        assert participation_fraction([1, 2, 3]) == 1.0

    def test_half(self):
        assert participation_fraction([0, 0, 1, 1]) == 0.5


class TestWorkloads:
    def test_markov_workload(self):
        from repro.core.network import HyperMConfig

        wl, report = build_markov_network(
            n_peers=5, items_per_peer=20, dimensionality=16,
            config=HyperMConfig(levels_used=2, n_clusters=3), rng=0,
        )
        assert wl.network.n_peers == 5
        assert report.items_published == 100

    def test_histogram_workload_holdout(self):
        from repro.core.network import HyperMConfig

        wl = build_histogram_network(
            n_peers=5, n_objects=20, views_per_object=6, n_bins=32,
            config=HyperMConfig(levels_used=2, n_clusters=3),
            rng=0, holdout_fraction=0.25,
        )
        assert wl.held_out_data.shape[0] == 30
        assert wl.ground_truth.n_items == 90

    def test_insert_post_hoc_updates_truth(self):
        from repro.core.network import HyperMConfig

        wl = build_histogram_network(
            n_peers=4, n_objects=15, views_per_object=6, n_bins=32,
            config=HyperMConfig(levels_used=2, n_clusters=2),
            rng=1, holdout_fraction=0.2,
        )
        before = wl.ground_truth.n_items
        added = insert_post_hoc(wl, 10, rng=2)
        assert added == 10
        assert wl.ground_truth.n_items == before + 10

    def test_insert_post_hoc_caps_at_available(self):
        from repro.core.network import HyperMConfig

        wl = build_histogram_network(
            n_peers=4, n_objects=15, views_per_object=6, n_bins=32,
            config=HyperMConfig(levels_used=2, n_clusters=2),
            rng=3, holdout_fraction=0.1,
        )
        available = wl.held_out_data.shape[0]
        assert insert_post_hoc(wl, available + 50, rng=4) == available

    def test_sample_queries(self, rng):
        data = rng.random((50, 8))
        queries = sample_queries(data, 5, rng=0)
        assert queries.shape == (5, 8)
        # Each query is an actual dataset row.
        for q in queries:
            assert any(np.array_equal(q, row) for row in data)

    def test_sample_queries_jitter(self, rng):
        data = rng.random((50, 8))
        queries = sample_queries(data, 5, rng=0, jitter=0.05)
        assert queries.min() >= 0.0 and queries.max() <= 1.0


class TestReporting:
    def test_rows_to_table(self):
        from repro.evaluation.dissemination import Fig8cRow

        rows = [Fig8cRow(1, 0.5), Fig8cRow(2, 0.8)]
        out = rows_to_table(rows, title="T")
        assert "levels_used" in out
        assert "0.500" in out

    def test_rows_to_table_empty(self):
        assert rows_to_table([], title="T") == "T"

    def test_series_to_table(self):
        from repro.evaluation.effectiveness import RecallSeries

        series = {
            "a": [RecallSeries(1, 0.5, 0.4, 0.6)],
            "b": [RecallSeries(1, 0.7, 0.6, 0.8)],
        }
        out = series_to_table(series, x_name="peers")
        assert "0.500 (0.400-0.600)" in out

    def test_rows_to_table_type_error(self):
        with pytest.raises(TypeError):
            rows_to_table([1, 2, 3])
