"""Pin the event-ordering semantics the engine refactor must preserve.

The scheduler extraction (``repro.net.events`` -> ``repro.engine``) is
only safe if today's ordering contract is written down first.  Three
families of guarantees are pinned here, all against the *public* import
path so they hold verbatim before and after the move:

* **Same-tick tie-breaking** — events scheduled for the same simulated
  time fire in scheduling order (the ``(time, seq)`` heap key), even
  when interleaved with earlier/later times or scheduled mid-run.
* **FIFO within a peer** — frames sent through ``Network.transmit``
  toward one destination are delivered in send order whenever their
  latencies tie (the per-hop schedule inherits the tie-break).
* **Replay identity** — the same build seed plus the same seeded
  :class:`FaultPlan` reproduces identical fabric metrics, identical
  flight-recorder edge streams, and identical query scores across two
  independent end-to-end runs.
"""

from __future__ import annotations

import numpy as np

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.faults import FaultPlan, plan_scope
from repro.net.events import Event, Scheduler
from repro.net.messages import MessageKind
from repro.net.network import Network
from repro.net.node import SimNode
from repro.obs.flight import FlightRecorder, flight_recording


class TestSameTickTieBreaking:
    def test_same_time_fires_in_scheduling_order(self):
        sched = Scheduler()
        fired = []
        for tag in range(8):
            sched.schedule_at(2.0, lambda t=tag: fired.append(t))
        sched.run()
        assert fired == list(range(8))

    def test_interleaved_times_keep_per_tick_fifo(self):
        sched = Scheduler()
        fired = []
        # Schedule out of chronological order; ties must still respect
        # the order the schedule_* calls were made in.
        sched.schedule_at(3.0, lambda: fired.append("c1"))
        sched.schedule_at(1.0, lambda: fired.append("a1"))
        sched.schedule_at(3.0, lambda: fired.append("c2"))
        sched.schedule_at(1.0, lambda: fired.append("a2"))
        sched.schedule_after(1.0, lambda: fired.append("a3"))
        sched.run()
        assert fired == ["a1", "a2", "a3", "c1", "c2"]

    def test_mid_run_scheduling_joins_the_tail_of_its_tick(self):
        sched = Scheduler()
        fired = []

        def first():
            fired.append("first")
            # Scheduled *during* the tick at the same timestamp: runs
            # after everything already queued for that timestamp.
            sched.schedule_at(1.0, lambda: fired.append("late"))

        sched.schedule_at(1.0, first)
        sched.schedule_at(1.0, lambda: fired.append("second"))
        sched.run()
        assert fired == ["first", "second", "late"]

    def test_cancelled_events_do_not_consume_order(self):
        sched = Scheduler()
        fired = []
        keep = []
        for tag in range(6):
            event = sched.schedule_at(1.0, lambda t=tag: fired.append(t))
            keep.append(event)
        keep[1].cancel()
        keep[4].cancel()
        sched.run()
        assert fired == [0, 2, 3, 5]

    def test_seq_is_monotonic_across_ticks(self):
        sched = Scheduler()
        events = [sched.schedule_at(float(t % 3), lambda: None)
                  for t in range(9)]
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_event_ordering_key_is_time_then_seq(self):
        early = Event(time=1.0, seq=5, action=lambda: None)
        late = Event(time=1.0, seq=6, action=lambda: None)
        other = Event(time=2.0, seq=0, action=lambda: None)
        assert early < late < other


class TestFifoWithinAPeer:
    def _fabric_with_nodes(self, n=3, **kwargs):
        fabric = Network(**kwargs)
        nodes = [SimNode(node_id=i) for i in range(n)]
        for node in nodes:
            fabric.register(node)
        return fabric, nodes

    def test_deliveries_to_one_peer_preserve_send_order(self):
        fabric, nodes = self._fabric_with_nodes(2)
        inbox = []
        for tag in range(10):
            fabric.transmit(
                0, 1, MessageKind.DATA, 64,
                deliver=lambda msg, t=tag: inbox.append(t),
            )
        fabric.scheduler.run()
        assert inbox == list(range(10))

    def test_two_senders_one_receiver_interleave_in_send_order(self):
        fabric, nodes = self._fabric_with_nodes(3)
        inbox = []
        for tag in range(8):
            fabric.transmit(
                tag % 2, 2, MessageKind.DATA, 64,
                deliver=lambda msg, t=tag: inbox.append(t),
            )
        fabric.scheduler.run()
        assert inbox == list(range(8))

    def test_zero_latency_frames_still_fifo(self):
        fabric, nodes = self._fabric_with_nodes(2, hop_latency=0.0)
        inbox = []
        for tag in range(6):
            fabric.transmit(
                0, 1, MessageKind.DATA, 16,
                deliver=lambda msg, t=tag: inbox.append(t),
            )
        fabric.scheduler.run()
        assert inbox == list(range(6))


def _build_network(seed=0, n_peers=5, dim=16):
    config = HyperMConfig(levels_used=3, n_clusters=3)
    network = HyperMNetwork(dim, config, rng=seed)
    data_rng = np.random.default_rng(seed + 1)
    for __ in range(n_peers):
        network.add_peer(data_rng.random((20, dim)))
    network.publish_all()
    return network


def _faulted_run(seed=0, loss=0.15, fault_seed=7, n_queries=5):
    """One end-to-end faulted run; returns every replayable signal."""
    flight = FlightRecorder(capacity=50_000)
    with plan_scope(FaultPlan(loss=loss, seed=fault_seed)), \
            flight_recording(flight):
        network = _build_network(seed=seed)
        rng = np.random.default_rng(seed + 99)
        results = []
        for __ in range(n_queries):
            result = network.range_query(
                rng.random(network.dimensionality), 0.6, max_peers=3
            )
            results.append(
                (
                    sorted(result.item_ids),
                    sorted(
                        (pid, round(score, 12))
                        for pid, score in result.peer_scores.items()
                    ),
                    result.index_hops,
                )
            )
    edges = [
        (e.kind, e.source, e.dest, e.size_bytes, e.status, e.attempt, e.t)
        for e in flight.edges
    ]
    return {
        "results": results,
        "metrics": network.fabric.metrics.snapshot(),
        "events": network.fabric.scheduler.events_processed,
        "edges": edges,
    }


class TestReplayIdentity:
    def test_seeded_fault_plan_replays_bit_identically(self):
        first = _faulted_run()
        second = _faulted_run()
        assert first["results"] == second["results"]
        assert first["metrics"] == second["metrics"]
        assert first["events"] == second["events"]
        assert first["edges"] == second["edges"]

    def test_different_fault_seed_changes_the_run(self):
        # Sanity check that the replay test has teeth: a different fault
        # seed must perturb at least the edge stream.
        first = _faulted_run(fault_seed=7)
        other = _faulted_run(fault_seed=8)
        assert first["edges"] != other["edges"]
