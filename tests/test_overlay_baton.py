"""Tests for the BATON tree overlay (the paper's other named substrate)."""

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import ValidationError
from repro.overlay.baton import BatonNetwork


@pytest.fixture
def baton():
    net = BatonNetwork(2, rng=0)
    net.grow(15)
    return net


class TestTreeStructure:
    def test_level_order_fill(self, baton):
        levels = sorted(
            (node.level, node.pos) for node in baton._nodes.values()
        )
        # 15 nodes fill levels 0..3 completely.
        assert levels == [
            (lvl, pos) for lvl in range(4) for pos in range(1 << lvl)
        ]

    def test_ranges_partition_unit_interval(self, baton):
        starts, ids = baton._range_starts()
        assert starts[0] == 0.0
        nodes = [baton.node(nid) for nid in ids]
        for a, b in zip(nodes, nodes[1:]):
            assert a.range_hi == pytest.approx(b.range_lo)
        assert nodes[-1].range_hi == pytest.approx(1.0)

    def test_ranges_follow_in_order_traversal(self, baton):
        """In-order traversal of the tree visits ranges in sorted order."""
        visited = []

        def in_order(node_id):
            node = baton.node(node_id)
            if node.left_child is not None:
                in_order(node.left_child)
            visited.append(node.range_lo)
            if node.right_child is not None:
                in_order(node.right_child)

        root = baton._by_position[(0, 0)]
        in_order(root)
        assert visited == sorted(visited)

    def test_adjacent_links_form_ordered_chain(self, baton):
        starts, ids = baton._range_starts()
        for i, nid in enumerate(ids):
            node = baton.node(nid)
            if i > 0:
                assert node.left_adjacent == ids[i - 1]
            if i + 1 < len(ids):
                assert node.right_adjacent == ids[i + 1]

    def test_routing_tables_are_same_level(self, baton):
        for node in baton._nodes.values():
            for nid in node.left_routing + node.right_routing:
                assert baton.node(nid).level == node.level


class TestRoutingAndData:
    def test_routing_reaches_owner(self, baton, rng):
        for __ in range(20):
            p = rng.random(2)
            key = baton.scalar_key(p)
            for start in list(baton.node_ids)[:5]:
                owner, path = baton._route(start, key)
                assert baton.node(owner).owns(key)

    def test_routing_is_logarithmic(self):
        net = BatonNetwork(1, rng=1)
        net.grow(63)
        rng = np.random.default_rng(2)
        hops = []
        for __ in range(30):
            start = int(rng.choice(net.node_ids))
            __owner, path = net._route(start, float(rng.random()))
            hops.append(len(path))
        assert np.mean(hops) <= 10  # ~log2(63) with routing tables

    def test_point_roundtrip(self, baton):
        ids = baton.node_ids
        baton.insert(ids[0], [0.3, 0.7], "payload")
        receipt = baton.lookup(ids[9], [0.3, 0.7])
        assert [e.value for e in receipt.entries] == ["payload"]

    def test_range_completeness(self, baton, rng):
        points = rng.random((60, 2))
        ids = baton.node_ids
        for i, p in enumerate(points):
            baton.insert(ids[i % len(ids)], p, i)
        for __ in range(8):
            center = rng.random(2)
            radius = float(rng.uniform(0.05, 0.3))
            receipt = baton.range_query(ids[0], center, radius)
            got = sorted(
                e.value for e in receipt.entries if isinstance(e.value, int)
            )
            want = sorted(
                i
                for i, p in enumerate(points)
                if np.linalg.norm(p - center) <= radius + 1e-12
            )
            assert got == want

    def test_sphere_replication(self, baton):
        ids = baton.node_ids
        receipt = baton.insert(ids[0], [0.5, 0.5], "s", radius=0.2)
        assert receipt.replicas >= 1
        # Found when querying near the sphere edge.
        out = baton.range_query(ids[3], np.array([0.68, 0.5]), 0.05)
        assert any(e.value == "s" for e in out.entries)


class TestJoinSplitsRanges:
    def test_join_preserves_entries(self):
        net = BatonNetwork(2, rng=3)
        net.grow(3)
        rng = np.random.default_rng(4)
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            net.insert(net.node_ids[0], p, i)
        net.grow(10)
        held = set()
        for nid in net.node_ids:
            for entry in net.node(nid).store:
                if isinstance(entry.value, int):
                    held.add(entry.value)
        assert held == set(range(30))

    def test_entries_live_at_their_owner(self):
        net = BatonNetwork(2, rng=5)
        net.grow(10)
        rng = np.random.default_rng(6)
        points = rng.random((20, 2))
        for i, p in enumerate(points):
            net.insert(net.node_ids[0], p, i)
        net.grow(8)
        for i, p in enumerate(points):
            receipt = net.lookup(net.node_ids[0], p)
            assert any(e.value == i for e in receipt.entries)


class TestLeave:
    def test_leaf_departure(self, baton, rng):
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            baton.insert(baton.node_ids[0], p, i)
        # Depart a deepest-level node (a leaf).
        leaf_id = next(
            nid
            for nid, node in baton._nodes.items()
            if node.level == 3
        )
        baton.leave(leaf_id)
        assert leaf_id not in baton.node_ids
        self._assert_complete(baton, points)

    def test_internal_departure_uses_substitute(self, baton, rng):
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            baton.insert(baton.node_ids[0], p, i)
        root_id = baton._by_position[(0, 0)]
        baton.leave(root_id)
        assert root_id not in baton.node_ids
        assert (0, 0) in baton._by_position  # substitute filled the root
        self._assert_complete(baton, points)

    def test_many_departures_then_joins(self, baton, rng):
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            baton.insert(baton.node_ids[0], p, i)
        ids = list(baton.node_ids)
        for nid in ids[:7]:
            baton.leave(nid)
        baton.grow(5)
        self._assert_complete(baton, points)

    @staticmethod
    def _assert_complete(net, points):
        starts, ids = net._range_starts()
        assert starts[0] == 0.0
        rng = np.random.default_rng(0)
        center = np.array([0.5, 0.5])
        receipt = net.range_query(net.node_ids[0], center, 0.4)
        got = sorted(
            e.value for e in receipt.entries if isinstance(e.value, int)
        )
        want = sorted(
            i
            for i, p in enumerate(points)
            if np.linalg.norm(p - center) <= 0.4 + 1e-12
        )
        assert got == want


class TestHyperMOnBaton:
    def test_full_pipeline(self, rng):
        config = HyperMConfig(levels_used=3, n_clusters=3)
        net = HyperMNetwork(
            16, config, rng=0, overlay_factory=BatonNetwork
        )
        for p in range(5):
            net.add_peer(
                rng.random((20, 16)), np.arange(p * 20, (p + 1) * 20)
            )
        report = net.publish_all()
        assert report.items_published == 100
        query = net.peers[2].data[0]
        result = net.range_query(query, 0.6)
        assert any(item.distance <= 1e-9 for item in result.items)

    def test_invalid_grow(self):
        with pytest.raises(ValidationError):
            BatonNetwork(2, rng=0).grow(0)
