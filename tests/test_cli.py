"""Tests for the experiment CLI."""

import pytest

from repro.cli import _COMMANDS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_known_commands(self):
        for name in _COMMANDS:
            args = build_parser().parse_args([name])
            assert args.command == name
            assert args.scale == "quick"

    def test_overrides(self):
        args = build_parser().parse_args(
            ["fig8a", "--peers", "7", "--seed", "3", "--scale", "paper"]
        )
        assert args.peers == 7
        assert args.seed == 3
        assert args.scale == "paper"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])


class TestMain:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in _COMMANDS:
            assert name in out

    def test_fig11_runs(self, capsys):
        assert main(["fig11", "--peers", "5", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 11" in out
        assert "original" in out

    def test_fig8a_runs_quick(self, capsys):
        assert main(["fig8a", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8a" in out
        assert "clusters_per_peer" in out
