"""End-to-end integration tests: whole-lifecycle scenarios.

Each test drives a full session the way a deployment would: build,
publish, query, churn, repair — asserting cross-module invariants that
unit tests cannot see.
"""

import numpy as np
import pytest

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.serialization import load_summary, save_summary
from repro.datasets.histograms import generate_histograms
from repro.datasets.partition import partition_among_peers
from repro.evaluation.metrics import precision_recall
from repro.overlay.ring import RingNetwork


def build_network(rng_seed=0, n_peers=10, overlay_factory=None):
    config = HyperMConfig(levels_used=4, n_clusters=5)
    dataset = generate_histograms(60, 10, 32, rng=rng_seed)
    ids = np.arange(dataset.n_items)
    parts = partition_among_peers(
        dataset.data, n_peers, clusters_per_peer=5, item_ids=ids,
        rng=rng_seed + 1,
    )
    network = HyperMNetwork(
        32, config, rng=rng_seed + 2, overlay_factory=overlay_factory
    )
    for data, item_ids in parts:
        network.add_peer(data, item_ids)
    network.publish_all()
    return network, dataset


class TestFullLifecycle:
    def test_session_with_churn_and_recovery(self):
        network, dataset = build_network(rng_seed=10)
        rng = np.random.default_rng(0)
        query = dataset.data[25]

        # Phase 1: healthy network answers with full-contact recall 1.0
        # on published items (Theorem 4.1 end-to-end).
        truth = CentralizedIndex.from_network(network).range_search(query, 0.15)
        result = network.range_query(query, 0.15)
        assert truth <= result.item_ids

        # Phase 2: three peers depart abruptly.
        for peer_id in (1, 4, 7):
            network.remove_peer(peer_id)
        surviving_truth = CentralizedIndex.from_network_online_only(
            network
        ).range_search(query, 0.15)
        result = network.range_query(query, 0.15)
        assert surviving_truth <= result.item_ids  # survivors still complete

        # Phase 3: a surviving peer takes on new items and republishes.
        peer = network.peers[2]
        new_items = np.clip(
            dataset.data[:5] + rng.normal(0, 0.01, size=(5, 32)), 0, 1
        )
        peer.add_items(new_items, np.arange(9000, 9005))
        network.republish_peer(2)
        result = network.range_query(new_items[0], 0.05)
        assert any(item.item_id == 9000 for item in result.items)

    def test_cross_session_persistence(self, tmp_path):
        """Summaries persisted in session 1 power instant publication in
        session 2, with equivalent retrieval quality."""
        network1, dataset = build_network(rng_seed=20)
        paths = {}
        for peer_id, peer in network1.peers.items():
            paths[peer_id] = tmp_path / f"peer{peer_id}.json"
            save_summary(peer.summary, paths[peer_id])

        # Session 2: same devices, fresh overlay.
        config = HyperMConfig(levels_used=4, n_clusters=5)
        network2 = HyperMNetwork(32, config, rng=99)
        for peer_id, peer in network1.peers.items():
            network2.add_peer(peer.data, peer.item_ids)
        for peer_id in network2.peers:
            network2.publish_peer(
                peer_id, summary=load_summary(paths[peer_id])
            )

        query = dataset.data[10]
        truth = CentralizedIndex.from_network(network2).range_search(query, 0.15)
        result = network2.range_query(query, 0.15)
        assert truth <= result.item_ids

    def test_same_results_on_both_overlays(self):
        """Range-query completeness is overlay-independent."""
        can_net, dataset = build_network(rng_seed=30)
        ring_net, __ = build_network(rng_seed=30, overlay_factory=RingNetwork)
        for qi in (3, 47, 111):
            query = dataset.data[qi]
            can_ids = can_net.range_query(query, 0.12).item_ids
            ring_ids = ring_net.range_query(query, 0.12).item_ids
            truth = CentralizedIndex.from_network(can_net).range_search(
                query, 0.12
            )
            assert truth <= can_ids
            assert truth <= ring_ids

    def test_aggregation_policies_all_complete_at_full_contact(self):
        """Sum/product aggregation also contact every candidate when
        unbounded, so completeness holds for all policies."""
        network, dataset = build_network(rng_seed=40)
        query = dataset.data[77]
        truth = CentralizedIndex.from_network(network).range_search(query, 0.12)
        for policy in ("min", "sum", "product"):
            result = network.range_query(query, 0.12, aggregation=policy)
            assert truth <= result.item_ids, policy

    def test_min_policy_prunes_hardest(self):
        network, dataset = build_network(rng_seed=50)
        query = dataset.data[5]
        candidates = {}
        for policy in ("min", "sum"):
            result = network.range_query(query, 0.12, aggregation=policy)
            candidates[policy] = set(result.peer_scores)
        # Min-score candidates are exactly the peers present at every
        # level; sum over the same intersection — candidate sets match,
        # but ranking differs. Check sets are consistent subsets.
        assert candidates["min"] == candidates["sum"]

    def test_energy_accounting_monotone(self):
        network, dataset = build_network(rng_seed=60)
        before = network.fabric.energy.total
        network.range_query(dataset.data[0], 0.1)
        after = network.fabric.energy.total
        assert after > before

    def test_metrics_by_kind_populated(self):
        network, __ = build_network(rng_seed=70)
        snapshot = network.fabric.metrics.snapshot()
        assert "join" in snapshot
        assert "insert" in snapshot
        assert snapshot["insert"]["hops"] > 0


class TestScalingSmoke:
    @pytest.mark.slow
    def test_fifty_peer_network(self):
        """A §6-scale network (50 peers) builds and answers correctly."""
        config = HyperMConfig(levels_used=4, n_clusters=10)
        dataset = generate_histograms(150, 8, 64, rng=0)
        ids = np.arange(dataset.n_items)
        parts = partition_among_peers(
            dataset.data, 50, clusters_per_peer=10, item_ids=ids, rng=1
        )
        network = HyperMNetwork(64, config, rng=2)
        for data, item_ids in parts:
            network.add_peer(data, item_ids)
        report = network.publish_all()
        assert report.items_published == dataset.n_items
        query = dataset.data[0]
        truth = CentralizedIndex.from_network(network).range_search(query, 0.12)
        result = network.range_query(query, 0.12)
        pr = precision_recall(result.item_ids, truth)
        assert pr.precision == 1.0
        assert pr.recall == 1.0
