"""Unit tests for the k-NN heuristic's internal machinery."""

import numpy as np

from repro.core.knn import _discover_level, _peers_to_contact
from repro.core.results import ClusterRecord
from repro.overlay.can import CANNetwork


class TestPeersToContact:
    def test_explicit_top_p(self):
        ranked = [(1, 50.0), (2, 30.0), (3, 5.0)]
        assert _peers_to_contact(ranked, 10, top_p=2) == ranked[:2]

    def test_cumulative_score_rule(self):
        ranked = [(1, 6.0), (2, 3.0), (3, 2.0), (4, 1.0)]
        # k=8: 6 < 8, 6+3 = 9 >= 8 → two peers.
        assert _peers_to_contact(ranked, 8, top_p=None) == ranked[:2]

    def test_takes_all_when_scores_insufficient(self):
        ranked = [(1, 1.0), (2, 1.0)]
        assert _peers_to_contact(ranked, 100, top_p=None) == ranked

    def test_single_peer_covers(self):
        ranked = [(1, 50.0), (2, 30.0)]
        assert _peers_to_contact(ranked, 10, top_p=None) == ranked[:1]

    def test_empty_ranking(self):
        assert _peers_to_contact([], 5, top_p=None) == []


class TestDiscoverLevel:
    def _overlay_with_clusters(self, spheres):
        can = CANNetwork(2, rng=0)
        ids = can.grow(8)
        for i, (center, radius, items) in enumerate(spheres):
            record = ClusterRecord(peer_id=i % 3, items=items, level_name="A")
            can.insert(ids[0], center, record, radius=radius)
        return can, ids[0]

    def test_finds_enough_clusters(self):
        spheres = [
            ([0.5, 0.5], 0.05, 40),
            ([0.55, 0.5], 0.05, 40),
            ([0.9, 0.9], 0.02, 40),
        ]
        overlay, origin = self._overlay_with_clusters(spheres)
        eps, entries, hops = _discover_level(
            overlay, origin, np.array([0.5, 0.5]), 10.0
        )
        assert eps > 0
        assert entries  # found the nearby clusters
        assert hops >= 0

    def test_empty_overlay_returns_no_entries(self):
        can = CANNetwork(2, rng=1)
        ids = can.grow(4)
        eps, entries, hops = _discover_level(
            can, ids[0], np.array([0.5, 0.5]), 5.0
        )
        assert len(entries) == 0

    def test_probes_expand_until_coverage(self):
        # A single far-away cluster: discovery must expand to reach it.
        spheres = [([0.95, 0.95], 0.02, 100)]
        overlay, origin = self._overlay_with_clusters(spheres)
        eps, entries, __ = _discover_level(
            overlay, origin, np.array([0.05, 0.05]), 5.0
        )
        assert len(entries) == 1


class TestKnnEdgeCases:
    def test_k_exceeds_total_items(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.knn_query(wl.ground_truth.data[0], 10_000)
        assert len(result.items) > 0

    def test_duplicate_queries_deterministic_scores(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        q = wl.ground_truth.data[3]
        a = wl.network.knn_query(q, 5)
        b = wl.network.knn_query(q, 5)
        assert a.item_ids == b.item_ids
        assert a.peer_scores == b.peer_scores
