"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for CI speed: property tests exercise dozens of
# cases each without making the suite minutes long.
settings.register_profile(
    "repro",
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for reproducible tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_can():
    """A 2-d CAN with 16 nodes."""
    from repro.overlay.can import CANNetwork

    can = CANNetwork(2, rng=7)
    can.grow(16)
    return can


@pytest.fixture
def tiny_histogram_workload():
    """A published 8-peer histogram network with ground truth."""
    from repro.core.network import HyperMConfig
    from repro.evaluation.workloads import build_histogram_network

    return build_histogram_network(
        n_peers=8,
        n_objects=40,
        views_per_object=8,
        n_bins=32,
        config=HyperMConfig(levels_used=3, n_clusters=4),
        rng=99,
    )
