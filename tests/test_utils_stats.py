"""Unit and property tests for repro.utils.stats."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import RunningStats, summarize

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestRunningStats:
    def test_empty(self):
        s = RunningStats()
        assert s.count == 0
        assert s.mean == 0.0
        assert s.variance == 0.0

    def test_single_value(self):
        s = RunningStats()
        s.add(5.0)
        assert s.mean == 5.0
        assert s.std == 0.0
        assert s.min == s.max == 5.0

    @given(st.lists(finite_floats, min_size=1, max_size=50))
    def test_matches_numpy(self, values):
        s = RunningStats()
        s.extend(values)
        arr = np.asarray(values)
        assert s.count == arr.size
        assert np.isclose(s.mean, arr.mean(), atol=1e-6)
        assert np.isclose(s.variance, arr.var(), atol=1e-4 * max(1.0, arr.var()))
        assert s.min == arr.min()
        assert s.max == arr.max()

    @given(
        st.lists(finite_floats, min_size=1, max_size=30),
        st.lists(finite_floats, min_size=1, max_size=30),
    )
    def test_merge_equals_concatenation(self, left, right):
        a = RunningStats()
        a.extend(left)
        b = RunningStats()
        b.extend(right)
        merged = a.merge(b)
        both = RunningStats()
        both.extend(left + right)
        assert merged.count == both.count
        assert np.isclose(merged.mean, both.mean, atol=1e-6)
        assert np.isclose(merged.variance, both.variance, rtol=1e-6, atol=1e-6)

    def test_merge_with_empty(self):
        a = RunningStats()
        a.extend([1.0, 2.0])
        empty = RunningStats()
        assert a.merge(empty).mean == a.mean
        assert empty.merge(a).count == 2


class TestSummarize:
    def test_empty(self):
        out = summarize([])
        assert out["count"] == 0

    def test_basic(self):
        out = summarize([1.0, 2.0, 3.0])
        assert out["count"] == 3
        assert out["mean"] == 2.0
        assert out["min"] == 1.0
        assert out["max"] == 3.0
        assert "p50" in out
