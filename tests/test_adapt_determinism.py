"""Replay determinism of the load-adaptation control loop.

The controller's inputs are deterministic ledgers (LoadLedger counters,
store heat) and every iteration order is explicitly sorted, so the same
build seed plus the same :class:`FaultPlan` must reproduce the identical
decision sequence — epoch by epoch, subject by subject — alongside the
identical query results the faults suite already pins. A second pin:
adaptation under the null plan is byte-identical to adaptation with no
plan installed at all.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.faults import FaultPlan, crash_peer
from repro.overlay.adapt import AdaptConfig


def _build(seed=0, n_peers=5, dim=16, epoch_queries=4):
    config = HyperMConfig(levels_used=3, n_clusters=3)
    net = HyperMNetwork(dim, config, rng=seed)
    net.enable_adaptation(AdaptConfig(epoch_queries=epoch_queries))
    data_rng = np.random.default_rng(seed + 1)
    for __ in range(n_peers):
        net.add_peer(data_rng.random((20, dim)))
    net.publish_all()
    return net


def _run_queries(network, n=12, seed=0, max_peers=3):
    rng = np.random.default_rng(seed)
    out = []
    for __ in range(n):
        result = network.range_query(
            rng.random(network.dimensionality), 0.6, max_peers=max_peers
        )
        out.append(
            (
                sorted(result.item_ids),
                result.peers_contacted,
                sorted(result.failed_contacts),
                round(result.confidence, 12),
            )
        )
    return out


def _trace(network):
    controller = network.adaptation
    return (
        [d.as_tuple() for d in controller.decisions],
        controller.snapshot(),
    )


class TestAdaptationReplay:
    @settings(max_examples=8, deadline=None)
    @given(
        fault_seed=st.integers(0, 1000),
        loss=st.sampled_from([0.0, 0.05, 0.2]),
    )
    def test_same_seed_same_plan_identical_decisions(self, fault_seed, loss):
        runs = []
        for __ in range(2):
            network = _build(seed=3)
            network.fabric.install_faults(
                FaultPlan(loss=loss, seed=fault_seed)
            )
            results = _run_queries(network, seed=fault_seed)
            runs.append((results, _trace(network)))
        assert runs[0] == runs[1]
        decisions = runs[0][1][0]
        assert decisions  # the loop acted, so the pin is not vacuous

    def test_crashes_replay_identical_decisions(self):
        runs = []
        for __ in range(2):
            network = _build(seed=5)
            network.fabric.install_faults(FaultPlan(loss=0.1, seed=9))
            crash_peer(network, 1)
            crash_peer(network, 3)
            results = _run_queries(network, seed=7, max_peers=4)
            runs.append((results, _trace(network)))
        assert runs[0] == runs[1]

    def test_null_plan_matches_no_plan(self):
        runs = []
        for install_null in (False, True):
            network = _build(seed=11)
            if install_null:
                network.fabric.install_faults(FaultPlan())
            results = _run_queries(network, seed=2)
            runs.append((results, _trace(network)))
        assert runs[0] == runs[1]

    def test_decision_log_is_json_safe_and_ordered(self):
        network = _build(seed=3)
        _run_queries(network, seed=0)
        log = network.adaptation.decision_log()
        assert len(log) == len(network.adaptation.decisions)
        epochs = [record["epoch"] for record in log]
        assert epochs == sorted(epochs)
        for record in log:
            assert record["action"] in {"split", "boost", "shed"}
            assert isinstance(record["targets"], list)
