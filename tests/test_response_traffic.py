"""Tests for result-sized response traffic accounting."""

import numpy as np

from repro.net.messages import MessageKind


class TestResponseTraffic:
    def test_response_bytes_scale_with_results(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        network = wl.network
        query = wl.ground_truth.data[0]

        def data_bytes():
            return network.fabric.metrics.kind(MessageKind.DATA).bytes

        before = data_bytes()
        small = network.range_query(query, 0.05, max_peers=4)
        small_bytes = data_bytes() - before
        before = data_bytes()
        large = network.range_query(query, 0.30, max_peers=4)
        large_bytes = data_bytes() - before
        assert len(large.items) > len(small.items)
        assert large_bytes > small_bytes

    def test_empty_responses_still_acknowledged(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        network = wl.network
        # A query in an empty corner: contacted peers return nothing but
        # the acknowledgement costs header bytes.
        query = np.full(32, 0.93)
        before = network.fabric.metrics.kind(MessageKind.DATA).messages
        result = network.range_query(query, 0.01, max_peers=3)
        after = network.fabric.metrics.kind(MessageKind.DATA).messages
        contacted_remote = [
            p for p in result.peers_contacted
            if network.overlay_node(network.levels[0], p)
            != network.overlay_node(
                network.levels[0], next(iter(network.peers))
            )
        ]
        assert after - before == len(contacted_remote)

    def test_knn_charges_responses(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        network = wl.network
        before = network.fabric.metrics.kind(MessageKind.DATA).bytes
        network.knn_query(wl.ground_truth.data[5], 8, c=2.0)
        assert network.fabric.metrics.kind(MessageKind.DATA).bytes > before
