"""Churn-then-query regression tests for the shared level stores.

The old scoring path cached stacked entry arrays behind an ``id()``-keyed
LRU, so a block built before ``withdraw_summaries`` could keep scoring
withdrawn spheres (and pinned them alive). With the columnar store this
is structurally impossible: withdrawal tombstones the rows and bumps the
generation, so a pre-churn ``CandidateSet`` raises
:class:`repro.exceptions.StaleCandidateError` and a fresh query can never
see the withdrawn rows. These tests pin that contract end to end,
plus the leave/withdraw/republish membership invariants.
"""

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.scoring import level_scores
from repro.exceptions import StaleCandidateError


@pytest.fixture
def network(rng):
    net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=3), rng=0)
    for p in range(5):
        net.add_peer(rng.random((20, 16)), np.arange(p * 20, (p + 1) * 20))
    net.publish_all()
    return net


def _verify_all_stores(net):
    for overlay in net.overlays.values():
        overlay.level_store.verify_integrity()


def _query_receipt(net, level, center, eps):
    overlay = net.overlays[level]
    origin = overlay.node_ids[0]
    return overlay, overlay.range_query(origin, center, eps)


class TestWithdrawnSpheresNeverScored:
    def test_stale_candidate_set_raises(self, network, rng):
        level = network.levels[0]
        center = rng.random(level.dimensionality)
        overlay, receipt = _query_receipt(network, level, center, 6.0)
        assert len(receipt.entries) > 0
        network.withdraw_summaries(2)
        # The pre-churn snapshot is dead, not silently stale.
        with pytest.raises(StaleCandidateError):
            level_scores(receipt.entries, center, 6.0)

    def test_fresh_query_excludes_withdrawn_peer(self, network, rng):
        level = network.levels[0]
        center = rng.random(level.dimensionality)
        overlay, receipt = _query_receipt(network, level, center, 8.0)
        before = level_scores(receipt.entries, center, 8.0)
        assert 2 in before  # broad query: every publisher scores
        network.withdraw_summaries(2)
        overlay, receipt = _query_receipt(network, level, center, 8.0)
        after = level_scores(receipt.entries, center, 8.0)
        assert 2 not in after
        assert {p: s for p, s in before.items() if p != 2} == after

    def test_withdrawn_rows_gone_from_every_store(self, network):
        network.withdraw_summaries(3)
        for overlay in network.overlays.values():
            store = overlay.level_store
            assert store.rows_for_peer(3).size == 0
            for node_id in overlay.node_ids:
                for entry in overlay.node(node_id).store:
                    assert entry.peer_id != 3
        _verify_all_stores(network)

    def test_abrupt_leave_keeps_summaries_scorable(self, network, rng):
        # Abrupt departure (the MANET default): the peer goes offline but
        # its summaries stay in the index, handed to surviving nodes.
        level = network.levels[0]
        center = rng.random(level.dimensionality)
        network.remove_peer(1)
        overlay, receipt = _query_receipt(network, level, center, 8.0)
        scores = level_scores(receipt.entries, center, 8.0)
        assert 1 in scores
        _verify_all_stores(network)


class TestChurnInvariants:
    def test_leave_preserves_distinct_spheres(self, network):
        before = {
            str(level): overlay.level_store.n_live
            for level, overlay in network.overlays.items()
        }
        network.remove_peer(0)
        network.remove_peer(4)
        for level, overlay in network.overlays.items():
            # Zone handoff moves memberships; it never drops rows.
            assert overlay.level_store.n_live == before[str(level)]
        _verify_all_stores(network)

    def test_withdraw_after_leave(self, network):
        network.remove_peer(2)
        removed = network.withdraw_summaries(2)
        assert removed > 0
        for overlay in network.overlays.values():
            assert overlay.level_store.rows_for_peer(2).size == 0
        _verify_all_stores(network)

    def test_republish_swaps_entry_ids(self, network, rng):
        overlay_ids_before = {
            str(level): set(
                int(overlay.level_store.entry_id_of(int(row)))
                for row in overlay.level_store.rows_for_peer(2)
            )
            for level, overlay in network.overlays.items()
        }
        network.peers[2].add_items(
            rng.random((20, 16)), np.arange(900, 920)
        )
        network.republish_peer(2)
        for level, overlay in network.overlays.items():
            store = overlay.level_store
            ids_after = {
                int(store.entry_id_of(int(row)))
                for row in store.rows_for_peer(2)
            }
            # Old generations fully withdrawn, new ids freshly minted.
            assert not (ids_after & overlay_ids_before[str(level)])
            assert ids_after
        _verify_all_stores(network)

    def test_batched_reap_preserves_survivor_identity(self, network):
        # remove_peer_entries sweeps every membership once; the post-state
        # must be exactly "drop the peer's entry ids, touch nothing else".
        for level, overlay in network.overlays.items():
            store = overlay.level_store
            doomed = {
                int(store.entry_id_of(int(row)))
                for row in store.rows_for_peer(4)
            }
            assert doomed
            expected_live = {
                int(store.entry_id_of(int(row)))
                for row in store.live_rows()
            } - doomed
            expected_held = {
                node_id: {
                    int(store.entry_id_of(int(row)))
                    for row in overlay.node(node_id).membership.rows()
                } - doomed
                for node_id in overlay.node_ids
            }
            removed = store.remove_peer_entries(4)
            assert removed == len(doomed)
            assert {
                int(store.entry_id_of(int(row)))
                for row in store.live_rows()
            } == expected_live
            for node_id, ids in expected_held.items():
                got = {
                    int(store.entry_id_of(int(row)))
                    for row in overlay.node(node_id).membership.rows()
                }
                assert got == ids
        _verify_all_stores(network)

    def test_churned_stores_still_answer_queries(self, network, rng):
        network.remove_peer(0, withdraw_summaries=True)
        network.withdraw_summaries(1)
        network.republish_peer(3)
        _verify_all_stores(network)
        result = network.range_query(
            rng.random(16), 0.8, origin_peer=2
        )
        assert result.peer_scores is not None
