"""Tests for the discrete-event scheduler."""

import pytest

from repro.exceptions import ValidationError
from repro.net.events import Scheduler


class TestScheduler:
    def test_chronological_order(self):
        sched = Scheduler()
        fired = []
        sched.schedule_after(3.0, lambda: fired.append("c"))
        sched.schedule_after(1.0, lambda: fired.append("a"))
        sched.schedule_after(2.0, lambda: fired.append("b"))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_tie_break(self):
        sched = Scheduler()
        fired = []
        for tag in "abc":
            sched.schedule_at(1.0, lambda t=tag: fired.append(t))
        sched.run()
        assert fired == ["a", "b", "c"]

    def test_clock_advances(self):
        sched = Scheduler()
        times = []
        sched.schedule_after(2.5, lambda: times.append(sched.now))
        sched.run()
        assert times == [2.5]
        assert sched.now == 2.5

    def test_cancellation(self):
        sched = Scheduler()
        fired = []
        event = sched.schedule_after(1.0, lambda: fired.append("x"))
        event.cancel()
        sched.run()
        assert fired == []

    def test_events_scheduled_during_run(self):
        sched = Scheduler()
        fired = []

        def first():
            fired.append("first")
            sched.schedule_after(1.0, lambda: fired.append("second"))

        sched.schedule_after(1.0, first)
        sched.run()
        assert fired == ["first", "second"]
        assert sched.now == 2.0

    def test_run_until(self):
        sched = Scheduler()
        fired = []
        sched.schedule_at(1.0, lambda: fired.append(1))
        sched.schedule_at(5.0, lambda: fired.append(5))
        count = sched.run_until(3.0)
        assert count == 1
        assert fired == [1]
        assert sched.now == 3.0
        sched.run()
        assert fired == [1, 5]

    def test_max_events_guard(self):
        sched = Scheduler()

        def rearm():
            sched.schedule_after(1.0, rearm)

        sched.schedule_after(1.0, rearm)
        count = sched.run(max_events=25)
        assert count == 25

    def test_past_scheduling_rejected(self):
        sched = Scheduler()
        sched.schedule_at(5.0, lambda: None)
        sched.run()
        with pytest.raises(ValidationError):
            sched.schedule_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValidationError):
            Scheduler().schedule_after(-1.0, lambda: None)

    def test_len_counts_pending(self):
        sched = Scheduler()
        e1 = sched.schedule_after(1.0, lambda: None)
        sched.schedule_after(2.0, lambda: None)
        assert len(sched) == 2
        e1.cancel()
        assert len(sched) == 1
