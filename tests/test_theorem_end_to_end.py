"""The reproduction's central guarantee, property-tested over random
networks: Theorem 4.1's no-false-dismissal behaviour end to end.

For arbitrary (seeded) datasets, peer partitions, cluster counts, level
counts, and query radii: a range query contacting every positive-score
peer retrieves a **superset** of the true results, and filtering locally
keeps precision at exactly 1.0.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.overlay.baton import BatonNetwork
from repro.overlay.ring import RingNetwork
from repro.overlay.vbi import VBITree


def _build(seed: int, n_clusters: int, levels_used: int, overlay=None):
    rng = np.random.default_rng(seed)
    config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)
    network = HyperMNetwork(16, config, rng=seed, overlay_factory=overlay)
    n_peers = 5
    for p in range(n_peers):
        network.add_peer(
            rng.random((20, 16)), np.arange(p * 20, (p + 1) * 20)
        )
    network.publish_all()
    return network, rng


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_clusters=st.integers(1, 8),
    levels_used=st.integers(1, 5),
    radius=st.floats(min_value=0.05, max_value=1.2),
)
def test_no_false_dismissals_can(seed, n_clusters, levels_used, radius):
    network, rng = _build(seed, n_clusters, levels_used)
    truth_index = CentralizedIndex.from_network(network)
    query = network.peers[int(rng.integers(5))].data[
        int(rng.integers(20))
    ]
    truth = truth_index.range_search(query, radius)
    result = network.range_query(query, radius)
    assert truth <= result.item_ids
    # Local filtering keeps precision exact.
    assert result.item_ids <= truth


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 10_000), radius=st.floats(0.1, 1.0))
@pytest.mark.parametrize("overlay", [RingNetwork, BatonNetwork, VBITree])
def test_no_false_dismissals_other_overlays(overlay, seed, radius):
    network, rng = _build(seed, 4, 3, overlay=overlay)
    truth_index = CentralizedIndex.from_network(network)
    query = network.peers[int(rng.integers(5))].data[0]
    truth = truth_index.range_search(query, radius)
    result = network.range_query(query, radius)
    assert truth <= result.item_ids


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n_clusters=st.integers(1, 8),
    levels_used=st.integers(1, 5),
    radius=st.floats(min_value=0.05, max_value=1.2),
)
def test_index_phase_never_dismisses_a_holding_peer(
    seed, n_clusters, levels_used, radius
):
    """Theorem 4.1 at the index phase itself: every peer holding a true
    range answer must survive min-aggregation with a strictly positive
    score (this is the property the intersection-fraction floor and the
    log-space volume ratios exist to protect — an underflow to 0.0 at any
    single level would erase the peer from the min)."""
    network, rng = _build(seed, n_clusters, levels_used)
    truth_index = CentralizedIndex.from_network(network)
    query = network.peers[int(rng.integers(5))].data[int(rng.integers(20))]
    truth = truth_index.range_search(query, radius)
    result = network.range_query(query, radius)
    # Item ids were assigned as arange(p*20, (p+1)*20): holder = id // 20.
    holding_peers = {item_id // 20 for item_id in truth}
    for peer in holding_peers:
        assert peer in result.peer_scores, (
            f"peer {peer} holds a true answer but was dismissed"
        )
        assert result.peer_scores[peer] > 0.0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10_000), k=st.integers(1, 15))
def test_knn_always_returns_k_when_available(seed, k):
    """With C >= 1 and enough items, the k-NN heuristic returns at least
    k candidates (possibly imperfect ones — that is the heuristic's
    documented trade-off)."""
    network, rng = _build(seed, 4, 3)
    query = network.peers[0].data[int(rng.integers(20))]
    result = network.knn_query(query, k, c=1.5)
    assert len(result.items) >= min(k, network.total_items) // 2
