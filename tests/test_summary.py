"""Tests for the one-call full-report generator."""

import pytest

from repro.evaluation.summary import (
    ExperimentReport,
    render_markdown,
    run_full_report,
)


@pytest.fixture(scope="module")
def reports():
    return run_full_report(scale="quick", rng=3)


@pytest.mark.slow
class TestFullReport:
    def test_every_experiment_present(self, reports):
        names = [r.name for r in reports]
        assert names == [
            "fig8a", "fig8b", "fig8c", "fig9", "fig10a",
            "fig10b", "cknob", "fig10c", "fig11",
        ]

    def test_records_are_json_safe(self, reports):
        import json

        json.dumps([r.records for r in reports])

    def test_tables_rendered(self, reports):
        for report in reports:
            assert report.table
            assert "|" in report.table

    def test_markdown_rendering(self, reports):
        text = render_markdown(reports)
        assert text.startswith("# Hyper-M")
        assert text.count("## ") == len(reports)
        assert "Figure 10a" in text

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            run_full_report(scale="huge")
