"""Tests for HyperMNetwork construction and publication."""

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import ValidationError
from repro.overlay.ring import RingNetwork
from repro.wavelets.multiresolution import Level


class TestConfig:
    def test_defaults_are_paper_operating_point(self):
        config = HyperMConfig()
        assert config.levels_used == 4
        assert config.n_clusters == 10
        assert config.aggregation == "min"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"levels_used": 0},
            {"n_clusters": 0},
            {"aggregation": "median"},
            {"kmeans_restarts": 0},
        ],
    )
    def test_invalid_configs(self, kwargs):
        with pytest.raises(ValidationError):
            HyperMConfig(**kwargs)


class TestConstruction:
    def test_levels_structure(self):
        net = HyperMNetwork(64, HyperMConfig(levels_used=4), rng=0)
        assert [str(l) for l in net.levels] == ["A", "D0", "D1", "D2"]
        assert net.overlays[Level.detail(2)].dimensionality == 4

    def test_add_peer_joins_every_overlay(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=2), rng=0)
        peer = net.add_peer(rng.random((10, 16)))
        for level in net.levels:
            node_id = net.overlay_node(level, peer.peer_id)
            assert node_id in net.overlays[level].node_ids

    def test_dimension_mismatch_rejected(self, rng):
        net = HyperMNetwork(16, rng=0)
        with pytest.raises(ValidationError):
            net.add_peer(rng.random((5, 32)))

    def test_unknown_overlay_node(self):
        net = HyperMNetwork(16, rng=0)
        with pytest.raises(ValidationError):
            net.overlay_node(Level.approximation(), 99)

    def test_total_items(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        net.add_peer(rng.random((10, 16)))
        net.add_peer(rng.random((15, 16)))
        assert net.total_items == 25


class TestPublication:
    def test_report_counts(self, rng):
        config = HyperMConfig(levels_used=3, n_clusters=4)
        net = HyperMNetwork(16, config, rng=0)
        for __ in range(3):
            net.add_peer(rng.random((20, 16)))
        report = net.publish_all()
        assert report.items_published == 60
        # At most K_p spheres per level per peer.
        assert report.spheres_inserted <= 3 * 3 * 4
        assert report.spheres_inserted >= 3 * 3  # at least 1 per level/peer
        assert report.total_hops == report.routing_hops + report.replica_hops
        assert report.energy > 0
        assert report.bytes_sent > 0

    def test_hops_per_item(self, rng):
        config = HyperMConfig(levels_used=2, n_clusters=2)
        net = HyperMNetwork(16, config, rng=0)
        net.add_peer(rng.random((50, 16)))
        report = net.publish_all()
        assert np.isclose(
            report.hops_per_item, report.total_hops / 50
        )

    def test_published_entries_present_in_overlays(self, rng):
        config = HyperMConfig(levels_used=2, n_clusters=3)
        net = HyperMNetwork(16, config, rng=0)
        net.add_peer(rng.random((20, 16)))
        net.publish_all()
        for level in net.levels:
            stored = sum(net.overlays[level].loads().values())
            assert stored >= 1

    def test_cluster_records_reference_peers(self, rng):
        config = HyperMConfig(levels_used=2, n_clusters=2)
        net = HyperMNetwork(16, config, rng=0)
        net.add_peer(rng.random((10, 16)))
        net.add_peer(rng.random((10, 16)))
        net.publish_all()
        level = net.levels[0]
        overlay = net.overlays[level]
        peer_ids = set()
        for node_id in overlay.node_ids:
            for entry in overlay.node(node_id).store:
                peer_ids.add(entry.value.peer_id)
        assert peer_ids == {0, 1}

    def test_merge_reports(self, rng):
        config = HyperMConfig(levels_used=2, n_clusters=2)
        net = HyperMNetwork(16, config, rng=0)
        p0 = net.add_peer(rng.random((10, 16)))
        p1 = net.add_peer(rng.random((10, 16)))
        r0 = net.publish_peer(p0.peer_id)
        r1 = net.publish_peer(p1.peer_id)
        merged = r0.merge(r1)
        assert merged.items_published == 20
        assert merged.total_hops == r0.total_hops + r1.total_hops


class TestOverlayIndependence:
    def test_runs_on_ring_overlay(self, rng):
        """The paper's claim: Hyper-M is overlay-agnostic."""
        config = HyperMConfig(levels_used=3, n_clusters=3)
        net = HyperMNetwork(
            16, config, rng=0, overlay_factory=RingNetwork
        )
        for __ in range(4):
            net.add_peer(rng.random((15, 16)))
        report = net.publish_all()
        assert report.items_published == 60
        result = net.range_query(rng.random(16), 0.5)
        assert result.peers_contacted


class TestDepartureSemantics:
    """depart() is the *clean-only* exit; crashes live in repro.faults."""

    @pytest.fixture
    def network(self, rng):
        config = HyperMConfig(levels_used=3, n_clusters=3)
        net = HyperMNetwork(16, config, rng=0)
        for __ in range(5):
            net.add_peer(rng.random((20, 16)))
        net.publish_all()
        return net

    def test_depart_hands_off_zones(self, network):
        counts = {
            level: len(overlay.node_ids)
            for level, overlay in network.overlays.items()
        }
        network.depart(2)
        for level, overlay in network.overlays.items():
            assert len(overlay.node_ids) == counts[level] - 1

    def test_depart_keeps_index_routable(self, network, rng):
        network.depart(1)
        result = network.range_query(rng.random(16), 0.6)
        online = {p for p, peer in network.peers.items() if peer.online}
        assert set(result.peers_contacted) <= online

    def test_remove_peer_is_depart_alias(self, network):
        network.remove_peer(3)
        assert not network.peers[3].online
        for overlay in network.overlays.values():
            # The alias stays clean: the zones were handed off.
            assert len(overlay.node_ids) == network.n_peers - 1

    def test_depart_never_leaves_crashed_nodes(self, network):
        """Clean departure must not touch the fault injector's registry."""
        from repro.faults import FaultPlan

        injector = network.fabric.install_faults(FaultPlan())
        network.depart(2)
        assert injector.crashed_peers == set()
        assert injector.crashed_nodes == set()

    def test_abrupt_failure_requires_faults_module(self, network):
        """There is no abrupt-departure flag here; crash_peer is the way."""
        from repro.faults import crash_peer

        with pytest.raises(ValidationError):
            crash_peer(network, 2)
