"""Load-adaptation invariants: rebalancing, replication retuning, multicast.

The hard contract pinned here is that adaptation never changes *what* a
query answers, only *where* the load lands:

* ``rebalance_zone`` keeps the zones a tiling of the unit torus and keeps
  the Theorem 4.1 invariant — every node whose zone overlaps a sphere
  holds its row — so flooded range queries return identical entry sets.
* ``boost_replication`` only adds holders (queries dedup the shared row);
  ``shed_replication`` only releases non-overlapping holders and never
  tombstones, so the baseline replica set is inviolable.
* End to end, an adapted :class:`HyperMNetwork` answers the same queries
  with the same item ids and peer scores (1e-9) as a clean one.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.results import ClusterRecord
from repro.core.scoring import level_scores
from repro.exceptions import ValidationError
from repro.obs.loadmap import build_loadmap
from repro.overlay.adapt import (
    AdaptConfig,
    AdaptationController,
    active_adapt_config,
    adapt_scope,
)
from repro.overlay.can import CANNetwork
from repro.overlay.can.replication import boost_replication, shed_replication


def _record(peer: int, items: int = 10) -> ClusterRecord:
    return ClusterRecord(peer_id=peer, items=items, level_name="A")


def _publish(can, rng, n=30):
    """Insert ``n`` replicated spheres from the first node."""
    origin = can.node_ids[0]
    for i in range(n):
        can.insert(
            origin,
            rng.random(can.dimensionality),
            _record(i % 5),
            radius=float(rng.uniform(0.05, 0.25)),
        )


def _assert_sphere_coverage(overlay):
    """Theorem 4.1: zone-overlap implies membership, for every live row."""
    store = overlay.level_store
    spheres = [
        (row, store.key_of(row), store.radius_of(row))
        for row in store.live_rows()
    ]
    for node_id in overlay.node_ids:
        node = overlay.node(node_id)
        for row, key, radius in spheres:
            if node.intersects_sphere(key, radius):
                assert row in node.membership, (
                    f"node {node_id} zone overlaps row {row} but does "
                    f"not hold it"
                )


def _query_entry_ids(can, centers, eps=0.3):
    origin = can.node_ids[0]
    return [
        sorted(int(e) for e in can.range_query(origin, c, eps).entries.entry_ids)
        for c in centers
    ]


def _build(seed=0, n_peers=6, dim=16, adapt=None):
    config = HyperMConfig(levels_used=3, n_clusters=3)
    net = HyperMNetwork(dim, config, rng=seed)
    if adapt is not None:
        net.enable_adaptation(adapt)
    data_rng = np.random.default_rng(seed + 1)
    for __ in range(n_peers):
        net.add_peer(data_rng.random((20, dim)))
    net.publish_all()
    return net


class TestRebalanceZone:
    def test_preserves_tiling_coverage_and_integrity(self, small_can, rng):
        _publish(small_can, rng)
        node_id = max(
            small_can.node_ids, key=lambda n: len(small_can.node(n).membership)
        )
        target = small_can.rebalance_zone(node_id)
        assert target is not None and target != node_id
        assert small_can.total_zone_volume() == pytest.approx(1.0)
        for point in rng.random((50, 2)):
            small_can.owner_of(point)  # raises if zones stopped tiling
        _assert_sphere_coverage(small_can)
        small_can.level_store.verify_integrity()

    def test_query_results_unchanged(self, small_can, rng):
        _publish(small_can, rng)
        centers = rng.random((10, 2))
        before_ids = _query_entry_ids(small_can, centers)
        before_scores = [
            level_scores(
                small_can.range_query(small_can.node_ids[0], c, 0.3).entries,
                c, 0.3,
            )
            for c in centers
        ]
        small_can.rebalance_zone(small_can.node_ids[0])
        assert _query_entry_ids(small_can, centers) == before_ids
        after_scores = [
            level_scores(
                small_can.range_query(small_can.node_ids[0], c, 0.3).entries,
                c, 0.3,
            )
            for c in centers
        ]
        for before, after in zip(before_scores, after_scores, strict=True):
            assert set(before) == set(after)
            for peer, score in before.items():
                assert after[peer] == pytest.approx(score, rel=1e-9)

    def test_explicit_target_and_self_target_rejected(self, small_can, rng):
        _publish(small_can, rng)
        node_id = small_can.node_ids[0]
        target_id = next(iter(small_can.node(node_id).neighbors))
        assert small_can.rebalance_zone(node_id, target_id) == target_id
        with pytest.raises(ValidationError):
            small_can.rebalance_zone(node_id, node_id)

    def test_multi_zone_target_adopts_nearest_half(self, small_can, rng):
        _publish(small_can, rng)
        node_ids = small_can.node_ids
        target = node_ids[0]
        donors = [n for n in node_ids if target in small_can.node(n).neighbors]
        # Two handoffs leave the target owning several zones; a third
        # rebalance onto it must pick the half nearest *any* of them.
        for donor in donors[:2]:
            assert small_can.rebalance_zone(donor, target) == target
        assert len(small_can.node(target).zones) >= 2
        donor = next(
            n for n in small_can.node_ids
            if n != target and target in small_can.node(n).neighbors
        )
        assert small_can.rebalance_zone(donor, target) == target
        assert small_can.total_zone_volume() == pytest.approx(1.0)
        _assert_sphere_coverage(small_can)

    def test_isolated_node_returns_none(self):
        can = CANNetwork(2, rng=0)
        can.grow(1)
        assert can.rebalance_zone(can.node_ids[0]) is None


class TestReplicationRetuning:
    def _hot_row(self, can):
        store = can.level_store
        return max(
            (int(r) for r in store.live_rows() if store.radius_of(int(r)) > 0),
            key=lambda r: sum(
                1 for n in can.node_ids if r in can.node(n).membership
            ),
        )

    def test_boost_adds_only_new_holders(self, small_can, rng):
        _publish(small_can, rng)
        row = self._hot_row(small_can)
        holders = {
            n for n in small_can.node_ids
            if row in small_can.node(n).membership
        }
        added = boost_replication(small_can, row, 2)
        assert 0 < len(added) <= 2
        assert not set(added) & holders
        for node_id in added:
            assert row in small_can.node(node_id).membership
        small_can.level_store.verify_integrity()

    def test_boost_zero_extra_is_noop(self, small_can, rng):
        _publish(small_can, rng)
        assert boost_replication(small_can, self._hot_row(small_can), 0) == []

    def test_boost_does_not_change_query_results(self, small_can, rng):
        _publish(small_can, rng)
        centers = rng.random((10, 2))
        before = _query_entry_ids(small_can, centers)
        boost_replication(small_can, self._hot_row(small_can), 3)
        assert _query_entry_ids(small_can, centers) == before

    def test_shed_releases_exactly_the_boosted_extras(self, small_can, rng):
        _publish(small_can, rng)
        store = small_can.level_store
        row = self._hot_row(small_can)
        # Freshly replicated rows have zone-overlapping holders only.
        assert shed_replication(small_can, row) == []
        added = boost_replication(small_can, row, 2)
        n_live = store.n_live
        shed = shed_replication(small_can, row)
        assert set(shed) == set(added)
        assert store.n_live == n_live  # shedding never tombstones
        key, radius = store.key_of(row), store.radius_of(row)
        for node_id in small_can.node_ids:
            if small_can.node(node_id).intersects_sphere(key, radius):
                assert row in small_can.node(node_id).membership
        store.verify_integrity()


class TestControllerUnits:
    def test_config_validation(self):
        with pytest.raises(ValidationError):
            AdaptConfig(split_threshold=1.0)
        with pytest.raises(ValidationError):
            AdaptConfig(relay_fanout=-1)

    def test_relay_plan_covers_every_peer_once(self):
        net = _build(seed=1, adapt=AdaptConfig(relay_fanout=2))
        plan = net.adaptation.relay_plan([5, 1, 4, 2, 3])
        assert len(plan) == 2
        covered = [r for r, __ in plan] + [
            c for __, children in plan for c in children
        ]
        assert sorted(covered) == [1, 2, 3, 4, 5]

    def test_relay_plan_flat_when_small_or_disabled(self):
        net = _build(seed=1, adapt=AdaptConfig(relay_fanout=2))
        assert net.adaptation.relay_plan([7, 3]) == [(7, ()), (3, ())]
        flat = AdaptationController(net, AdaptConfig(relay_fanout=0))
        assert flat.relay_plan([5, 1, 4]) == [(5, ()), (1, ()), (4, ())]

    def test_response_dedup_bookkeeping(self):
        net = _build(seed=1, adapt=AdaptConfig())
        controller = net.adaptation
        assert controller.filter_new(3, 0, [10, 11, 12]) == [10, 11, 12]
        controller.mark_delivered(3, 0, [10, 11])
        assert controller.filter_new(3, 0, [10, 11, 12]) == [12]
        assert controller.filter_new(3, 1, [10, 11]) == [10, 11]  # per origin

    def test_quality_signals_default_clean(self):
        net = _build(seed=1, adapt=AdaptConfig())
        controller = net.adaptation
        assert controller.peer_quality(0) == 1.0
        assert controller.node_penalty(10**6) == 0.0

    def test_epoch_cadence(self):
        net = _build(seed=1, adapt=AdaptConfig(epoch_queries=3))
        controller = net.adaptation
        assert [controller.note_query() for __ in range(6)] == [
            False, False, True, False, False, True,
        ]
        assert controller.epochs == 2
        manual = AdaptationController(net, AdaptConfig(epoch_queries=0))
        assert not any(manual.note_query() for __ in range(10))
        assert manual.epochs == 0

    def test_first_epoch_is_baseline_only(self):
        net = _build(seed=2, adapt=AdaptConfig(epoch_queries=0))
        controller = net.adaptation
        rng = np.random.default_rng(0)
        for __ in range(4):
            net.range_query(rng.random(net.dimensionality), 0.6)
        first = controller.run_epoch()
        assert [d for d in first if d.action == "boost"] == []
        for __ in range(4):
            net.range_query(rng.random(net.dimensionality), 0.6)
        second = controller.run_epoch()
        boosts = [d for d in second if d.action == "boost"]
        assert boosts  # heat grew between epochs
        for decision in boosts:
            assert decision.targets
            assert decision.epoch == 1
        snapshot = controller.snapshot()
        assert snapshot["epochs"] == 2
        assert snapshot["decisions"]["boost"] == len(
            [d for d in controller.decisions if d.action == "boost"]
        )

    def test_ambient_scope_enables_adaptation(self):
        assert active_adapt_config() is None
        with adapt_scope(AdaptConfig(epoch_queries=5)):
            net = _build(seed=1)
            assert net.adaptation is not None
            assert net.adaptation.config.epoch_queries == 5
        assert active_adapt_config() is None
        clean = _build(seed=1)
        assert clean.adaptation is None

    def test_stats_exposes_adaptation_snapshot(self):
        net = _build(seed=1, adapt=AdaptConfig())
        assert net.stats()["adaptation"]["epochs"] == 0
        assert "adaptation" not in _build(seed=1).stats()


class TestAdaptedQueryParity:
    def _run(self, adapt):
        net = _build(seed=9, n_peers=6, adapt=adapt)
        rng = np.random.default_rng(3)
        out = []
        for __ in range(16):
            result = net.range_query(rng.random(net.dimensionality), 0.6)
            out.append((sorted(result.item_ids), result.peer_scores))
        return net, out

    def test_adapted_answers_match_clean(self):
        clean_net, clean = self._run(None)
        adapted_net, adapted = self._run(AdaptConfig(epoch_queries=4))
        controller = adapted_net.adaptation
        assert controller.epochs == 4
        assert controller.decisions  # the loop actually acted
        for (c_items, c_scores), (a_items, a_scores) in zip(
            clean, adapted, strict=True
        ):
            assert a_items == c_items  # Theorem 4.1 set equality
            assert set(a_scores) == set(c_scores)
            for peer, score in c_scores.items():
                assert a_scores[peer] == pytest.approx(score, rel=1e-9)
        for overlay in adapted_net.overlays.values():
            _assert_sphere_coverage(overlay)
            overlay.level_store.verify_integrity()

    def test_loadmap_reports_sphere_heat(self):
        net, __ = self._run(AdaptConfig(epoch_queries=4))
        loadmap = build_loadmap(net)
        assert set(loadmap["sphere_heat"]) == {
            str(level) for level in net.levels
        }
        for level_heat in loadmap["sphere_heat"].values():
            assert level_heat["total"] > 0
            assert level_heat["top"]
            for entry in level_heat["top"]:
                assert {"entry_id", "heat", "peer"} <= set(entry)
