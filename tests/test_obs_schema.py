"""Tests for the observability schema validators and the fused run report.

Real artefacts (produced by the actual recorders and ``run_report``)
must validate cleanly; mutated ones must produce one problem string per
defect; the ``python -m repro.obs.schema`` CLI must gate files the way
CI relies on.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.evaluation.report import (
    collect_bench_reports,
    render_markdown,
    run_report,
)
from repro.obs.flight import FlightRecorder, flight_recording
from repro.obs.loadmap import build_loadmap
from repro.obs.schema import (
    check_flight_record,
    check_jsonl,
    check_loadmap,
    check_report,
    check_report_file,
    check_trace_record,
    main as schema_main,
)

REPORT_KNOBS = {
    "n_peers": 5,
    "items_per_peer": 20,
    "dimensionality": 16,
    "n_queries": 2,
    "seed": 0,
}


@pytest.fixture(scope="module")
def report():
    return run_report(**REPORT_KNOBS)


@pytest.fixture(scope="module")
def flight_artifacts():
    net = HyperMNetwork(
        8, HyperMConfig(levels_used=2, n_clusters=2), rng=1
    )
    rec = FlightRecorder()
    with flight_recording(rec):
        data = np.random.default_rng(2).random((2, 10, 8))
        for rows in data:
            net.add_peer(rows)
        net.publish_all()
        net.range_query(data[0][0], 0.5)
    return rec


class TestTraceRecordChecker:
    VALID = {
        "span": "publish", "id": 1, "parent": None, "depth": 0,
        "start": 0.0, "end": 1.0, "duration": 1.0,
        "attrs": {}, "counts": {},
    }

    def test_valid(self):
        assert check_trace_record(self.VALID) == []

    def test_missing_field(self):
        record = dict(self.VALID)
        del record["depth"]
        assert "missing field 'depth'" in check_trace_record(record)[0]

    def test_wrong_type(self):
        record = dict(self.VALID, id="one")
        assert "field 'id' has type str" in check_trace_record(record)[0]

    def test_negative_depth(self):
        record = dict(self.VALID, depth=-1)
        assert "negative depth" in check_trace_record(record)[0]


class TestFlightRecordChecker:
    def test_real_records_validate(self, flight_artifacts):
        for record in flight_artifacts.to_records():
            assert check_flight_record(record) == []

    def test_unknown_status(self, flight_artifacts):
        record = dict(flight_artifacts.edges[0].to_record(), status="lost")
        assert "unknown status" in check_flight_record(record)[0]

    def test_bad_attempt_and_seq(self, flight_artifacts):
        edge = flight_artifacts.edges[0].to_record()
        assert "attempt" in check_flight_record(dict(edge, attempt=0))[0]
        assert "negative seq" in check_flight_record(dict(edge, seq=-1))[0]

    def test_op_with_negative_counter(self, flight_artifacts):
        op = dict(flight_artifacts.op_summaries()[0], hops=-1)
        assert "negative hops" in check_flight_record(op)[0]


class TestJsonlChecker:
    def test_clean_file(self, tmp_path, flight_artifacts):
        path = tmp_path / "flight.jsonl"
        flight_artifacts.write_jsonl(path)
        assert check_jsonl(path, check_flight_record) == []

    def test_invalid_json_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1\nnot json\n')
        problems = check_jsonl(path, check_trace_record)
        assert any("invalid JSON" in p for p in problems)

    def test_non_object_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        assert "not an object" in check_jsonl(path, check_trace_record)[0]


class TestLoadmapChecker:
    def test_real_loadmap_validates(self, flight_artifacts):
        # Any published network will do; rebuild a tiny one.
        net = HyperMNetwork(
            8, HyperMConfig(levels_used=2, n_clusters=2), rng=1
        )
        net.add_peer(np.random.default_rng(3).random((10, 8)))
        net.publish_all()
        assert check_loadmap(build_loadmap(net)) == []

    def test_missing_section(self):
        assert "missing section 'skew'" in check_loadmap(
            {"generations": {}, "zones": [], "peers": [], "hotspots": {}}
        )[0]

    def test_zone_row_missing_field(self):
        loadmap = {
            "generations": {}, "peers": [],
            "hotspots": {"zones": [], "peers": []},
            "skew": {},
            "zones": [{"level": "0"}],
        }
        problems = check_loadmap(loadmap)
        assert any("zones[0]" in p for p in problems)


class TestReportChecker:
    def test_real_report_validates(self, report):
        assert check_report(report) == []

    def test_missing_section(self, report):
        broken = {k: v for k, v in report.items() if k != "loadmap"}
        assert "missing section 'loadmap'" in check_report(broken)[0]

    def test_meta_fields_required(self, report):
        broken = dict(report, meta={"command": "report"})
        problems = check_report(broken)
        assert any("seed" in p for p in problems)

    def test_report_file(self, tmp_path, report):
        path = tmp_path / "report.json"
        path.write_text(json.dumps(report))
        assert check_report_file(path) == []
        path.write_text("{broken")
        assert "invalid JSON" in check_report_file(path)[0]


class TestSchemaCli:
    def test_all_valid(self, tmp_path, report, flight_artifacts, capsys):
        report_path = tmp_path / "report.json"
        report_path.write_text(json.dumps(report))
        flight_path = tmp_path / "flight.jsonl"
        flight_artifacts.write_jsonl(flight_path)
        code = schema_main(
            [str(report_path), "--flight", str(flight_path)]
        )
        assert code == 0
        assert "schema OK (2 file(s))" in capsys.readouterr().out

    def test_malformed_fails(self, tmp_path, capsys):
        path = tmp_path / "flight.jsonl"
        path.write_text('{"op": 1}\n')
        assert schema_main(["--flight", str(path)]) == 1
        assert "missing field" in capsys.readouterr().err

    def test_nothing_to_validate_errors(self):
        with pytest.raises(SystemExit):
            schema_main([])


class TestRunReport:
    def test_artifacts_written_and_valid(self, tmp_path):
        trace_path = tmp_path / "trace.jsonl"
        flight_path = tmp_path / "flight.jsonl"
        report = run_report(
            **REPORT_KNOBS,
            trace_out=trace_path,
            flight_out=flight_path,
        )
        assert check_report(report) == []
        assert check_jsonl(trace_path, check_trace_record) == []
        assert check_jsonl(flight_path, check_flight_record) == []

    def test_report_fuses_every_plane(self, report):
        assert report["stats"]["fabric"]["messages"] > 0
        assert report["energy"]["total"] > 0
        assert report["operations"]["insert"]["ops"] > 0
        assert report["flight"]["edges"] > 0
        assert report["phases"], "expected span flame rows"
        assert report["loadmap"]["hotspots"]["zones"]

    def test_bench_dir_fusion(self, tmp_path):
        (tmp_path / "BENCH_demo.json").write_text('{"speedup": 5.0}')
        (tmp_path / "BENCH_broken.json").write_text("{nope")
        found = collect_bench_reports(tmp_path)
        assert found["demo"] == {"speedup": 5.0}
        assert "error" in found["broken"]
        assert collect_bench_reports(tmp_path / "missing") == {}

    def test_render_markdown(self, report):
        text = render_markdown(report)
        assert "# Hyper-M run report" in text
        assert "fabric totals" in text
        assert "per-operation routing cost" in text
        assert "load skew" in text
        assert "hottest zones" in text


class TestReportCli:
    def test_json_output(self, capsys):
        code = cli.main([
            "report", "--peers", "5", "--seed", "1",
            "--queries", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert check_report(payload) == []
        assert payload["meta"]["seed"] == 1

    def test_out_writes_schema_valid_file(self, tmp_path, capsys):
        out = tmp_path / "report.json"
        flight = tmp_path / "flight.jsonl"
        code = cli.main([
            "report", "--peers", "5", "--seed", "0", "--queries", "2",
            "--out", str(out), "--flight-out", str(flight),
        ])
        assert code == 0
        assert check_report_file(out) == []
        assert check_jsonl(flight, check_flight_record) == []
        assert "# Hyper-M run report" in capsys.readouterr().out
