"""Stateful property testing of the tree overlays (BATON and VBI).

Random interleavings of joins, departures, insertions, and range queries,
with global invariants checked after every step — the same harness that
exposed the CAN routing dead-end.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.overlay.baton import BatonNetwork
from repro.overlay.vbi import VBITree

coords = st.floats(min_value=0.0, max_value=1.0)


class _TreeOverlayMachine(RuleBasedStateMachine):
    """Shared rules; subclasses pick the overlay under test."""

    overlay_factory = None

    def __init__(self):
        super().__init__()
        self.net = self.overlay_factory(2, rng=77)
        self.net.grow(3)
        self.inserted: dict[int, np.ndarray] = {}
        self.next_value = 0

    @rule()
    def join(self):
        self.net.join()

    @precondition(lambda self: len(self.net) > 3)
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def leave(self, pick):
        ids = self.net.node_ids
        self.net.leave(ids[pick % len(ids)])

    @rule(x=coords, y=coords, pick=st.integers(min_value=0, max_value=10**6))
    def insert_point(self, x, y, pick):
        ids = self.net.node_ids
        value = self.next_value
        self.next_value += 1
        key = np.array([x, y])
        self.net.insert(ids[pick % len(ids)], key, value)
        self.inserted[value] = key

    @rule(
        x=coords,
        y=coords,
        radius=st.floats(min_value=0.05, max_value=0.4),
    )
    def range_query_is_complete(self, x, y, radius):
        center = np.array([x, y])
        receipt = self.net.range_query(self.net.node_ids[0], center, radius)
        got = {e.value for e in receipt.entries}
        for value, key in self.inserted.items():
            if float(np.linalg.norm(key - center)) <= radius - 1e-9:
                assert value in got, (value, key, center, radius)

    @invariant()
    def all_items_stored_somewhere(self):
        held = set()
        for nid in self.net.node_ids:
            for entry in self.net.node(nid).store:
                held.add(entry.value)
        assert set(self.inserted) <= held

    @invariant()
    def every_point_routable(self):
        rng = np.random.default_rng(len(self.net))
        p = rng.random(2)
        start = self.net.node_ids[0]
        if isinstance(self.net, VBITree):
            owner, __ = self.net._route(start, p)
            assert self.net.node(owner).region.contains(p)
        else:
            key = self.net.scalar_key(p)
            owner, __ = self.net._route(start, key)
            assert self.net.node(owner).owns(key)


class BatonMachine(_TreeOverlayMachine):
    overlay_factory = BatonNetwork

    @invariant()
    def ranges_partition_unit_interval(self):
        starts, ids = self.net._range_starts()
        assert starts[0] == 0.0
        nodes = [self.net.node(nid) for nid in ids]
        for a, b in zip(nodes, nodes[1:]):
            assert abs(a.range_hi - b.range_lo) < 1e-12
        assert abs(nodes[-1].range_hi - 1.0) < 1e-12


class VBIMachine(_TreeOverlayMachine):
    overlay_factory = VBITree

    @invariant()
    def regions_tile(self):
        assert abs(self.net.total_region_volume() - 1.0) < 1e-9

    @invariant()
    def managers_valid(self):
        for vn in self.net._tree.values():
            assert vn.manager_id in self.net._nodes


TestBatonStateful = BatonMachine.TestCase
TestBatonStateful.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
TestVBIStateful = VBIMachine.TestCase
TestVBIStateful.settings = settings(
    max_examples=15, stateful_step_count=20, deadline=None
)
