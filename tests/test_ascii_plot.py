"""Tests for terminal charts."""

import pytest

from repro.utils.ascii_plot import bar_chart, line_chart


class TestLineChart:
    def test_basic_render(self):
        out = line_chart(
            {"a": [1, 2, 3, 4], "b": [4, 3, 2, 1]},
            x_labels=[10, 20, 30, 40],
            title="T",
            height=6,
            width=20,
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "o=a" in lines[-1] and "x=b" in lines[-1]
        assert "10" in lines[-2] and "40" in lines[-2]

    def test_extremes_plotted_at_edges(self):
        out = line_chart({"s": [0.0, 10.0]}, height=5, width=11)
        rows = [l for l in out.splitlines() if "|" in l]
        assert "o" in rows[0]  # max at top
        assert "o" in rows[-1]  # min at bottom

    def test_constant_series(self):
        out = line_chart({"s": [5.0, 5.0, 5.0]})
        assert "o" in out

    def test_single_point(self):
        out = line_chart({"s": [1.0]})
        assert "o" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"s": []})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            line_chart({"a": [1, 2], "b": [1]})


class TestBarChart:
    def test_basic(self):
        out = bar_chart([("hyperm", 1.0), ("can", 4.0)], width=8)
        lines = out.splitlines()
        assert lines[0].count("#") == 2
        assert lines[1].count("#") == 8

    def test_zero_values(self):
        out = bar_chart([("a", 0.0), ("b", 0.0)])
        assert "#" not in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([])
