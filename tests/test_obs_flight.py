"""Tests for the flight recorder: ring semantics, reconstruction, and the
edge-count ⇔ metrics-hops invariant.

The load-bearing contract (ISSUE 6 acceptance): with flight recording
enabled, **any** publish/query operation reconstructs into a routing
tree whose primary edge count equals the hops
:class:`repro.net.metrics.NetworkMetrics` reports for that operation —
including under a lossy :class:`repro.faults.FaultPlan`, where drops,
retries, and duplicates appear as *tagged* edges, never as holes.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.faults import FaultPlan
from repro.net.messages import MessageKind
from repro.net.network import Network
from repro.net.node import SimNode
from repro.obs.flight import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    flight_recorder,
    flight_recording,
    read_flight_jsonl,
    set_flight_recorder,
)


class _Ticker:
    """Deterministic injectable clock: 0.0, 1.0, 2.0, ..."""

    def __init__(self) -> None:
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


class TestOperations:
    def test_root_operation_is_its_own_trace(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("publish", peer=3) as op:
            assert op.trace_id == op.op_id
            assert op.parent_op is None
        assert rec.ops == [op]
        assert op.attrs == {"peer": 3}
        assert op.end is not None and op.end > op.start

    def test_children_inherit_root_trace_id(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("publish") as root:
            with rec.operation("insert") as child:
                with rec.operation("range_query") as grandchild:
                    assert grandchild.trace_id == root.op_id
            assert child.trace_id == root.op_id
            assert child.parent_op == root.op_id
            assert rec.current is root
        assert rec.current is None

    def test_exception_annotates_and_closes(self):
        rec = FlightRecorder(clock=_Ticker())
        with pytest.raises(RuntimeError):
            with rec.operation("insert"):
                raise RuntimeError("boom")
        assert rec.ops[-1].attrs["error"] == "RuntimeError"
        assert rec.current is None

    def test_set_annotations(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("query") as op:
            op.set(items=7, peers_contacted=2)
        assert op.attrs == {"items": 7, "peers_contacted": 2}


class TestRecording:
    def test_edges_bump_operation_counters(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("insert") as op:
            stamp = rec.record("insert", 1, 2, 100, t=0.5)
            rec.record("insert", 2, 3, 100, t=0.6)
            rec.record("replicate", 3, 4, 50, status="dropped", t=0.7)
        assert stamp == (op.op_id, op.op_id, 0)
        assert (op.hops, op.bytes, op.drops) == (3, 250, 1)
        assert [e.seq for e in rec.edges] == [0, 1, 2]
        assert [e.t for e in rec.edges] == [0.5, 0.6, 0.7]

    def test_retransmits_and_duplicates_are_tagged_edges(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("patch") as op:
            rec.record("publish_delta", 1, 2, 64, retransmits=2, copies=1)
        statuses = [e.status for e in rec.edges]
        assert statuses == ["sent", "retransmit", "retransmit", "duplicate"]
        assert [e.seq for e in rec.edges] == [0, 1, 2, 3]
        # Primary-hop counters exclude the tagged extras.
        assert (op.hops, op.retransmits, op.duplicates) == (1, 2, 1)
        assert op.bytes == 64

    def test_orphan_edges_without_operation(self):
        rec = FlightRecorder(clock=_Ticker())
        assert rec.record("data", 1, 2, 10) == (None, None, 0)
        assert rec.record("data", 2, 3, 10, retransmits=1) == (None, None, 1)
        assert rec.record("data", 3, 4, 10) == (None, None, 3)
        assert all(e.op_id is None for e in rec.edges)

    def test_mark_retry_is_one_shot(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("query"):
            rec.record("retrieve", 1, 2, 10)
            rec.mark_retry(2)
            rec.record("retrieve", 1, 2, 10)
            rec.record("retrieve", 1, 2, 10)
        assert [e.attempt for e in rec.edges] == [1, 2, 1]

    def test_ring_eviction_preserves_counters(self):
        rec = FlightRecorder(capacity=4, clock=_Ticker())
        with rec.operation("insert") as op:
            for hop in range(10):
                rec.record("insert", hop, hop + 1, 8)
        assert len(rec.edges) == 4
        assert rec.evicted_edges == 6
        assert [e.seq for e in rec.edges] == [6, 7, 8, 9]
        # Summary counters survive the eviction of their edges.
        assert (op.hops, op.bytes) == (10, 80)
        assert rec.snapshot()["evicted_edges"] == 6

    def test_max_ops_eviction(self):
        rec = FlightRecorder(max_ops=3, clock=_Ticker())
        for index in range(5):
            with rec.operation("lookup", n=index):
                pass
        assert [op.attrs["n"] for op in rec.ops] == [2, 3, 4]
        assert rec.evicted_ops == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)
        with pytest.raises(ValueError):
            FlightRecorder(sample=1.5)


class TestSampling:
    def test_sampled_out_root_records_nothing(self):
        rec = FlightRecorder(sample=0.0, clock=_Ticker())
        with rec.operation("publish") as op:
            assert rec.record("insert", 1, 2, 10) is None
            with rec.operation("insert") as child:
                assert rec.record("insert", 2, 3, 10) is None
        assert not rec.edges
        assert (op.hops, child.hops) == (0, 0)
        assert not op.sampled and not child.sampled

    def test_sampling_is_seed_deterministic(self):
        def decisions(seed):
            rec = FlightRecorder(sample=0.5, seed=seed, clock=_Ticker())
            out = []
            for __ in range(64):
                with rec.operation("op") as op:
                    out.append(op.sampled)
            return out

        first = decisions(42)
        assert first == decisions(42)
        assert any(first) and not all(first)
        assert first != decisions(43)

    def test_children_follow_root_decision(self):
        rec = FlightRecorder(sample=0.5, seed=1, clock=_Ticker())
        for __ in range(32):
            with rec.operation("publish") as root:
                with rec.operation("insert") as child:
                    assert child.sampled == root.sampled


class TestReconstruction:
    def test_routing_tree_chain_and_branch(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("range_query") as op:
            rec.record("range_query", 1, 2, 10)
            rec.record("range_query", 2, 3, 10)
            rec.record("range_query", 2, 4, 10, status="dropped")
        tree = rec.routing_tree(op.op_id)
        assert tree["roots"] == [1]
        assert tree["children"][1] == [(2, "sent")]
        assert tree["children"][2] == [(3, "sent"), (4, "dropped")]
        assert tree["primary_edges"] == 3 == op.hops
        assert tree["dropped"] == 1

    def test_subtree_merges_child_operations(self):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("publish") as root:
            rec.record("publish", 9, 1, 10)
            with rec.operation("insert"):
                rec.record("insert", 1, 2, 10, retransmits=1)
        tree = rec.routing_tree(root.op_id, subtree=True)
        assert tree["primary_edges"] == 2
        assert tree["retransmits"] == 1
        flat = rec.routing_tree(root.op_id, subtree=False)
        assert flat["primary_edges"] == 1

    def test_per_op_histograms(self):
        rec = FlightRecorder(clock=_Ticker())
        for hops in (2, 2, 4):
            with rec.operation("insert"):
                for hop in range(hops):
                    rec.record("insert", hop, hop + 1, 10)
        hist = rec.per_op_histograms()["insert"]
        assert hist["ops"] == 3
        assert hist["hops"]["mean"] == pytest.approx(8 / 3)
        assert hist["hop_counts"] == {"2": 2, "4": 1}


class TestExport:
    def test_jsonl_roundtrip(self, tmp_path):
        rec = FlightRecorder(clock=_Ticker())
        with rec.operation("query", origin=5):
            rec.record("retrieve", 1, 2, 10, t=1.0)
            rec.record("data", 2, 1, 99, status="dropped", copies=1, t=2.0)
        path = tmp_path / "flight.jsonl"
        assert rec.write_jsonl(path) == len(rec.edges) + len(rec.ops)
        edges, ops = read_flight_jsonl(path)
        assert edges == [e.to_record() for e in rec.edges]
        assert ops == rec.op_summaries()

    def test_dumps_jsonl_is_deterministic(self):
        def run():
            rec = FlightRecorder(clock=_Ticker())
            with rec.operation("insert", origin=1):
                rec.record("insert", 1, 2, 10, t=0.25)
            return rec.dumps_jsonl()

        assert run() == run()

    def test_empty_recorder_writes_empty_file(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        assert FlightRecorder(clock=_Ticker()).write_jsonl(path) == 0
        assert path.read_text() == ""


class TestGlobalState:
    def test_default_is_null_recorder(self):
        assert flight_recorder() is NULL_FLIGHT_RECORDER
        assert not flight_recorder().enabled

    def test_null_recorder_is_inert(self):
        null = NullFlightRecorder()
        with null.operation("insert") as op:
            op.set(ignored=True)
            assert null.record("insert", 1, 2, 10) is None
        null.mark_retry(3)
        assert op.op_id is None and op.hops == 0

    def test_context_manager_installs_and_restores(self):
        rec = FlightRecorder(clock=_Ticker())
        with flight_recording(rec) as active:
            assert active is rec
            assert flight_recorder() is rec
        assert flight_recorder() is NULL_FLIGHT_RECORDER

    def test_set_flight_recorder_roundtrip(self):
        rec = FlightRecorder(clock=_Ticker())
        previous = set_flight_recorder(rec)
        try:
            assert flight_recorder() is rec
        finally:
            set_flight_recorder(previous)
        assert flight_recorder() is previous

    def test_transmit_stamps_message_causal_fields(self):
        fabric = Network()
        fabric.register(SimNode(1))
        fabric.register(SimNode(2))
        rec = FlightRecorder(clock=_Ticker())
        with flight_recording(rec):
            with rec.operation("lookup") as op:
                message = fabric.transmit(1, 2, MessageKind.LOOKUP, 40)
        assert message.trace_id == op.trace_id
        assert message.parent_op == op.op_id
        assert message.hop_index == 0
        # Without a recorder the fields stay None.
        clean = fabric.transmit(1, 2, MessageKind.LOOKUP, 40)
        assert clean.trace_id is None and clean.hop_index is None


# ---------------------------------------------------------------------------
# The acceptance invariant: flight edges ⇔ NetworkMetrics, end to end.
# ---------------------------------------------------------------------------

#: Flight-operation kinds that map 1:1 onto a metrics finish_operation kind.
KIND_MAP = {
    "join": MessageKind.JOIN,
    "insert": MessageKind.INSERT,
    "lookup": MessageKind.LOOKUP,
    "range_query": MessageKind.RANGE_QUERY,
}


def _build(seed=0, n_peers=5, dim=16, plan=None):
    config = HyperMConfig(levels_used=3, n_clusters=3)
    net = HyperMNetwork(dim, config, rng=seed)
    if plan is not None:
        net.fabric.install_faults(plan)
    data_rng = np.random.default_rng(seed + 1)
    for __ in range(n_peers):
        net.add_peer(data_rng.random((12, dim)))
    net.publish_all()
    return net


def _run_queries(net, n=4, seed=0):
    rng = np.random.default_rng(seed)
    for __ in range(n):
        net.range_query(rng.random(net.dimensionality), 0.6, max_peers=3)


def _assert_flight_matches_metrics(rec, net):
    metrics = net.fabric.metrics
    # 1. Every finished operation reconstructs into a routing tree whose
    #    primary edge count equals its hop counter, drops/retries/dups
    #    appearing as tagged edges.
    for op in rec.ops:
        tree = rec.routing_tree(op.op_id, subtree=False)
        assert tree["primary_edges"] == op.hops
        assert tree["dropped"] == op.drops
        assert tree["retransmits"] == op.retransmits
        assert tree["duplicates"] == op.duplicates
    # 2. Per-kind: the flight ops of each overlay kind reproduce exactly
    #    the per-op hop statistics the fabric metrics reported.
    for flight_kind, message_kind in KIND_MAP.items():
        ops = [op for op in rec.ops if op.kind == flight_kind]
        bucket = metrics.kind(message_kind)
        assert len(ops) == bucket.per_op_hops.count
        assert sum(op.hops for op in ops) == pytest.approx(
            bucket.per_op_hops.mean * bucket.per_op_hops.count
        )
        if ops:
            assert max(op.hops for op in ops) == bucket.per_op_hops.max
            assert min(op.hops for op in ops) == bucket.per_op_hops.min
    # 3. Patch + retract flight ops together are the PUBLISH_DELTA bucket.
    delta_ops = [op for op in rec.ops if op.kind in ("patch", "retract")]
    delta = metrics.kind(MessageKind.PUBLISH_DELTA)
    assert len(delta_ops) == delta.per_op_hops.count
    assert sum(op.hops for op in delta_ops) == pytest.approx(
        delta.per_op_hops.mean * delta.per_op_hops.count
    )
    # 4. Global conservation: every transmit produced exactly one primary
    #    edge, every fault-injected extra exactly one tagged edge.
    by_status = {"sent": 0, "dropped": 0, "retransmit": 0, "duplicate": 0}
    for edge in rec.edges:
        by_status[edge.status] += 1
    assert by_status["sent"] + by_status["dropped"] == metrics.total_messages
    assert by_status["retransmit"] == metrics.total_retransmits
    assert by_status["duplicate"] == metrics.total_duplicates


class TestMetricsInvariant:
    def test_clean_fabric_publish_and_query(self):
        rec = FlightRecorder()
        with flight_recording(rec):
            net = _build(seed=2)
            _run_queries(net, seed=2)
        assert not rec.evicted_edges, "ring too small for the workload"
        _assert_flight_matches_metrics(rec, net)
        # A clean fabric has no tagged edges at all.
        assert all(e.status == "sent" for e in rec.edges)

    def test_delta_republish_maps_onto_publish_delta_bucket(self):
        rec = FlightRecorder()
        with flight_recording(rec):
            net = _build(seed=4)
            peer = net.peers[1]
            rng = np.random.default_rng(99)
            peer.add_items(
                rng.random((3, net.dimensionality)),
                np.arange(1_000_000, 1_000_003),
            )
            net.republish_peer(1)
            _run_queries(net, n=2, seed=4)
        _assert_flight_matches_metrics(rec, net)
        assert any(op.kind == "patch" for op in rec.ops)

    @settings(max_examples=6, deadline=None)
    @given(
        loss=st.sampled_from([0.05, 0.2, 0.4]),
        duplication=st.sampled_from([0.0, 0.1]),
        fault_seed=st.integers(0, 100),
    )
    def test_lossy_fabric_property(self, loss, duplication, fault_seed):
        """Drops, retries and duplicates appear as tagged edges, never
        as holes: the invariant holds under any lossy plan."""
        plan = FaultPlan(
            loss=loss, duplication=duplication, seed=fault_seed
        )
        rec = FlightRecorder()
        with flight_recording(rec):
            net = _build(seed=3, plan=plan)
            _run_queries(net, seed=fault_seed)
        assert not rec.evicted_edges, "ring too small for the workload"
        _assert_flight_matches_metrics(rec, net)

    def test_lossy_fabric_tags_retries_with_attempts(self):
        plan = FaultPlan(loss=0.4, seed=7)
        rec = FlightRecorder()
        with flight_recording(rec):
            net = _build(seed=3, plan=plan)
            _run_queries(net, n=8, seed=7)
        assert net.fabric.metrics.total_retransmits > 0
        # reliable_send retries stamp attempt > 1 on the retry frames.
        assert any(e.attempt > 1 for e in rec.edges)
        _assert_flight_matches_metrics(rec, net)

    def test_query_hits_marked_on_load_ledger(self):
        with flight_recording(FlightRecorder()):
            net = _build(seed=5)
            _run_queries(net, seed=5)
        snapshot = net.fabric.load.snapshot()
        assert snapshot["query_hits"] > 0
