"""Tests for HyperMPeer."""

import numpy as np
import pytest

from repro.core.peer import HyperMPeer
from repro.exceptions import ValidationError


@pytest.fixture
def peer(rng):
    return HyperMPeer(0, rng.random((30, 16)))


class TestConstruction:
    def test_default_item_ids(self, peer):
        assert np.array_equal(peer.item_ids, np.arange(30))

    def test_explicit_item_ids(self, rng):
        ids = np.arange(100, 110)
        peer = HyperMPeer(1, rng.random((10, 8)), ids)
        assert np.array_equal(peer.item_ids, ids)

    def test_id_length_mismatch(self, rng):
        with pytest.raises(ValidationError):
            HyperMPeer(0, rng.random((5, 8)), np.arange(4))

    def test_out_of_cube_rejected(self):
        with pytest.raises(ValidationError):
            HyperMPeer(0, np.full((3, 4), 2.0))


class TestSummary:
    def test_build_summary(self, peer):
        summary = peer.build_summary(n_clusters=4, levels_used=3, rng=0)
        assert peer.summary is summary
        assert len(summary.levels) == 3

    def test_summary_only_covers_published(self, rng):
        peer = HyperMPeer(0, rng.random((20, 16)))
        peer.add_items(rng.random((10, 16)), np.arange(100, 110))
        summary = peer.build_summary(n_clusters=3, levels_used=2, rng=0)
        for level in summary.levels:
            assert summary.items_summarised(level) == 20


class TestRangeSearch:
    def test_self_retrieval(self, peer):
        hits = peer.range_search(peer.data[4], 0.0)
        assert any(h.item_id == 4 for h in hits)

    def test_exactness(self, peer, rng):
        query = rng.random(16)
        radius = 0.8
        hits = peer.range_search(query, radius)
        expected = {
            int(i)
            for i, row in enumerate(peer.data)
            if np.linalg.norm(row - query) <= radius
        }
        assert {h.item_id for h in hits} == expected

    def test_distances_correct(self, peer, rng):
        query = rng.random(16)
        for hit in peer.range_search(query, 2.0):
            row = peer.data[list(peer.item_ids).index(hit.item_id)]
            assert np.isclose(hit.distance, np.linalg.norm(row - query))

    def test_dimension_mismatch(self, peer):
        with pytest.raises(Exception):
            peer.range_search(np.zeros(4), 0.1)


class TestNearestItems:
    def test_order_and_count(self, peer, rng):
        query = rng.random(16)
        hits = peer.nearest_items(query, 5)
        assert len(hits) == 5
        dists = [h.distance for h in hits]
        assert dists == sorted(dists)

    def test_count_capped(self, peer, rng):
        assert len(peer.nearest_items(rng.random(16), 100)) == 30

    def test_zero_count(self, peer, rng):
        assert peer.nearest_items(rng.random(16), 0) == []

    def test_matches_brute_force(self, peer, rng):
        query = rng.random(16)
        hits = peer.nearest_items(query, 7)
        dists = np.linalg.norm(peer.data - query, axis=1)
        expected = set(np.argsort(dists)[:7].tolist())
        assert {h.item_id for h in hits} == expected


class TestAddItems:
    def test_post_hoc_items_visible_to_search(self, peer, rng):
        new = rng.random((5, 16))
        peer.add_items(new, np.arange(200, 205))
        assert peer.n_items == 35
        hits = peer.range_search(new[0], 0.0)
        assert any(h.item_id == 200 for h in hits)

    def test_unpublished_boundary_tracked(self, peer, rng):
        peer.add_items(rng.random((3, 16)), np.arange(300, 303))
        assert peer.unpublished_from == 30

    def test_id_mismatch_rejected(self, peer, rng):
        with pytest.raises(ValidationError):
            peer.add_items(rng.random((2, 16)), np.arange(3))
