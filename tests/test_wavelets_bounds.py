"""Theorem 3.1 / 4.1 bounds and key-space mapping tests.

The property tests here are the heart of the reproduction's correctness
story: points inside a sphere must map inside the theorem's scaled sphere
at every level, and the per-level thresholds must never dismiss a true
range-query answer.
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.wavelets.bounds import (
    coefficient_interval,
    from_unit_cube,
    key_space_radius,
    radius_scale,
    theorem41_inflation,
    to_unit_cube,
)
from repro.wavelets.multiresolution import Level, decompose, levels_for


def unit_vec(dim):
    return arrays(
        np.float64,
        (dim,),
        elements=st.floats(min_value=0.0, max_value=1.0, width=64),
    )


class TestRadiusScale:
    def test_paper_formula_for_details(self):
        # r / sqrt(2^(log2 d - l)) for detail level l
        d = 16
        for l in range(4):
            expected = 1.0 / math.sqrt(2 ** (math.log2(d) - l))
            assert np.isclose(radius_scale(d, Level.detail(l)), expected)

    def test_approximation_equals_d0(self):
        assert radius_scale(64, Level.approximation()) == radius_scale(
            64, Level.detail(0)
        )

    def test_scale_increases_with_level(self):
        scales = [radius_scale(64, l) for l in levels_for(64)]
        assert scales == sorted(scales)

    def test_finest_detail_is_inv_sqrt2(self):
        assert np.isclose(radius_scale(64, Level.detail(5)), 1 / math.sqrt(2))

    def test_invalid_level_for_dim(self):
        with pytest.raises(ValueError):
            radius_scale(4, Level.detail(5))


class TestTheorem31Property:
    """Theorem 3.1: points within distance r of q in the original space stay
    within r * scale(level) of q's projection in every subspace."""

    @given(unit_vec(16), unit_vec(16))
    def test_all_levels_bounded(self, q, x):
        r = float(np.linalg.norm(x - q))
        dq = decompose(q)
        dx = decompose(x)
        for level in levels_for(16):
            scale = radius_scale(16, level)
            dist_l = float(np.linalg.norm(dx[level] - dq[level]))
            assert dist_l <= r * scale + 1e-9

    @given(unit_vec(8))
    def test_bound_is_tight_for_constant_offset(self, q):
        """A constant offset vector achieves the approximation bound exactly."""
        offset = 0.1
        x = np.clip(q + offset, 0.0, 1.0)
        if not np.allclose(x - q, offset):
            return  # clipped: the offset is no longer constant
        r = float(np.linalg.norm(x - q))
        level = Level.approximation()
        dq, dx = decompose(q), decompose(x)
        dist = float(np.linalg.norm(dx[level] - dq[level]))
        assert np.isclose(dist, r * radius_scale(8, level), rtol=1e-9)


class TestTheorem41:
    def test_inflation_formula(self):
        assert np.isclose(theorem41_inflation(4), math.sqrt(3))
        assert np.isclose(theorem41_inflation(512), math.sqrt(10))

    @given(unit_vec(16), unit_vec(16))
    def test_per_level_survivors_are_bounded_in_original_space(self, q, x):
        """If x passes the Theorem 3.1 threshold at every level for radius R,
        then ||x - q|| <= R * sqrt(log2 d + 1)."""
        dq, dx = decompose(q), decompose(x)
        levels = levels_for(16)
        per_level = [
            np.linalg.norm(dx[level] - dq[level]) / radius_scale(16, level)
            for level in levels
        ]
        radius_r = max(per_level)  # smallest R that passes all levels
        true_dist = float(np.linalg.norm(x - q))
        assert true_dist <= radius_r * theorem41_inflation(16) + 1e-9


class TestKeySpaceMaps:
    @pytest.mark.parametrize(
        "level", [Level.approximation(), Level.detail(0), Level.detail(3)]
    )
    def test_roundtrip(self, level, rng):
        lo, hi = coefficient_interval(level)
        coeffs = rng.uniform(lo, hi, size=level.dimensionality)
        keys = to_unit_cube(coeffs, level)
        assert keys.min() >= -1e-12 and keys.max() <= 1.0 + 1e-12
        assert np.allclose(from_unit_cube(keys, level), coeffs)

    def test_intervals(self):
        assert coefficient_interval(Level.approximation()) == (0.0, 1.0)
        assert coefficient_interval(Level.detail(2)) == (-0.5, 0.5)

    @given(unit_vec(16))
    def test_real_coefficients_map_into_cube(self, x):
        decomposition = decompose(x)
        for level in levels_for(16):
            keys = to_unit_cube(decomposition[level], level)
            assert keys.min() >= -1e-9
            assert keys.max() <= 1.0 + 1e-9

    def test_key_space_radius_preserves_relative_distances(self, rng):
        """The affine key map scales distances by 1/(hi-lo); the radius
        helper must apply the same factor."""
        level = Level.detail(2)
        a = rng.uniform(-0.5, 0.5, size=4)
        b = rng.uniform(-0.5, 0.5, size=4)
        orig = np.linalg.norm(a - b)
        mapped = np.linalg.norm(to_unit_cube(a, level) - to_unit_cube(b, level))
        assert np.isclose(mapped, key_space_radius(orig, level))
