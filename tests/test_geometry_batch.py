"""Property tests pinning the vectorized kernels to the scalar oracles.

The batch kernels in :mod:`repro.geometry.batch` are the retrieval hot
path; the scalar functions in :mod:`repro.geometry.intersection` are the
reference implementation. Over randomized ``(r, eps, b, d)`` grids the two
must agree to 1e-9 (they actually agree to ~1e-14 relative: the same
formulas evaluated array-wise).
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.geometry.batch import (
    cap_fraction_batch,
    intersection_fraction_batch,
    spheres_intersect_batch,
)
from repro.geometry.intersection import (
    INTERSECTION_SLACK,
    cap_fraction,
    intersection_fraction,
    spheres_intersect,
)


def _assert_matches_oracle(radii, eps, dists, d):
    batch = intersection_fraction_batch(radii, eps, dists, d)
    oracle = np.array(
        [intersection_fraction(r, eps, b, d) for r, b in zip(radii, dists)]
    )
    np.testing.assert_allclose(batch, oracle, rtol=1e-9, atol=1e-30)


class TestCapFractionBatch:
    @pytest.mark.parametrize("d", [1, 2, 3, 8, 64, 512])
    def test_matches_scalar_over_grid(self, d):
        alphas = np.linspace(0.0, math.pi, 101)
        batch = cap_fraction_batch(alphas, d)
        oracle = np.array([cap_fraction(a, d) for a in alphas])
        np.testing.assert_allclose(batch, oracle, rtol=1e-9, atol=1e-300)

    def test_limits(self):
        out = cap_fraction_batch(np.array([0.0, math.pi / 2, math.pi]), 7)
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0], atol=1e-12)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValidationError):
            cap_fraction_batch(np.array([0.5]), 0)
        with pytest.raises(ValidationError):
            cap_fraction_batch(np.array([-0.2]), 4)
        with pytest.raises(ValidationError):
            cap_fraction_batch(np.array([4.0]), 4)


class TestIntersectionFractionBatch:
    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        eps=st.floats(min_value=0.0, max_value=3.0),
        d=st.sampled_from([1, 2, 3, 4, 8, 16, 64, 128, 512]),
    )
    def test_randomized_grid_matches_oracle(self, seed, eps, d):
        rng = np.random.default_rng(seed)
        radii = rng.uniform(0.0, 2.5, 64)
        radii[rng.random(64) < 0.1] = 0.0  # sprinkle point entries
        dists = rng.uniform(0.0, 5.0, 64)
        _assert_matches_oracle(radii, eps, dists, d)

    def test_degenerate_placements(self):
        # disjoint, tangent, containment both ways, point data spheres.
        radii = np.array([1.0, 1.0, 0.5, 2.0, 0.0, 0.0])
        dists = np.array([3.0, 2.0, 0.3, 0.0, 0.5, 1.5])
        _assert_matches_oracle(radii, 1.0, dists, 4)

    def test_point_query_radius(self):
        radii = np.array([1.0, 1.0, 0.0])
        dists = np.array([0.5, 2.0, 0.0])
        _assert_matches_oracle(radii, 0.0, dists, 6)

    def test_high_dimensional_underflow_band(self):
        """d = 512: fractions far below the old (eps/r)**d underflow point
        still match the scalar log-space values and stay positive."""
        radii = np.ones(5)
        eps = 0.25
        dists = np.array([0.0, 0.2, 0.5, 0.74, 0.76])
        out = intersection_fraction_batch(radii, eps, dists, 512)
        assert (out[:-1] > 0.0).all()
        _assert_matches_oracle(radii, eps, dists, 512)

    def test_output_in_unit_interval(self):
        rng = np.random.default_rng(7)
        out = intersection_fraction_batch(
            rng.uniform(0, 2, 200), 0.9, rng.uniform(0, 4, 200), 8
        )
        assert float(out.min()) >= 0.0
        assert float(out.max()) <= 1.0

    def test_rejects_negative_inputs(self):
        with pytest.raises(ValidationError):
            intersection_fraction_batch(np.array([-1.0]), 1.0, np.array([1.0]), 2)
        with pytest.raises(ValidationError):
            intersection_fraction_batch(np.array([1.0]), -1.0, np.array([1.0]), 2)
        with pytest.raises(ValidationError):
            intersection_fraction_batch(np.array([1.0]), 1.0, np.array([-1.0]), 2)

    def test_broadcasts_scalar_radius(self):
        out = intersection_fraction_batch(
            np.array([1.0]), 0.5, np.array([0.2, 0.7, 3.0]), 3
        )
        assert out.shape == (3,)


class TestSpheresIntersectBatch:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), eps=st.floats(0.0, 2.0))
    def test_matches_scalar_predicate(self, seed, eps):
        rng = np.random.default_rng(seed)
        radii = rng.uniform(0.0, 2.0, 64)
        dists = rng.uniform(0.0, 5.0, 64)
        mask = spheres_intersect_batch(radii, eps, dists)
        oracle = [spheres_intersect(r, eps, b) for r, b in zip(radii, dists)]
        assert mask.tolist() == oracle

    def test_boundary_band_is_intersecting(self):
        """The slack band is classified as intersecting — the same answer
        the overlay's entry filter gives, so survivor accounting agrees."""
        r, eps = 1.0, 0.5
        inside = r + eps + 0.5 * INTERSECTION_SLACK
        outside = r + eps + 2.0 * INTERSECTION_SLACK
        mask = spheres_intersect_batch(
            np.array([r, r]), eps, np.array([inside, outside])
        )
        assert mask.tolist() == [True, False]

    def test_agreement_with_fraction_classification(self):
        """Positive fraction implies the predicate holds (never the reverse
        mismatch that previously floored disjoint spheres)."""
        rng = np.random.default_rng(11)
        radii = rng.uniform(0, 2, 300)
        dists = rng.uniform(0, 5, 300)
        eps = 0.7
        fractions = intersection_fraction_batch(radii, eps, dists, 6)
        mask = spheres_intersect_batch(radii, eps, dists)
        assert not ((fractions > 0.0) & ~mask).any()
