"""Tests for range/point query processing — including the paper's central
no-false-dismissal guarantee, checked end-to-end."""

import pytest

from repro.core.baselines import CentralizedIndex
from repro.exceptions import QueryError
from repro.evaluation.metrics import precision_recall


class TestRangeQueries:
    def test_precision_always_one(self, tiny_histogram_workload, rng):
        wl = tiny_histogram_workload
        for __ in range(5):
            query = wl.ground_truth.data[int(rng.integers(wl.ground_truth.n_items))]
            result = wl.network.range_query(query, 0.12, max_peers=4)
            truth = wl.ground_truth.range_search(query, 0.12)
            pr = precision_recall(result.item_ids, truth)
            assert pr.precision == 1.0

    def test_no_false_dismissals_when_all_peers_contacted(
        self, tiny_histogram_workload, rng
    ):
        """Theorem 4.1 end-to-end: contacting every positive-score peer
        must retrieve every true result."""
        wl = tiny_histogram_workload
        for __ in range(8):
            query = wl.ground_truth.data[int(rng.integers(wl.ground_truth.n_items))]
            radius = float(rng.uniform(0.05, 0.2))
            result = wl.network.range_query(query, radius, max_peers=None)
            truth = wl.ground_truth.range_search(query, radius)
            assert truth <= result.item_ids, (
                f"missing {truth - result.item_ids} at radius {radius}"
            )

    def test_results_sorted_by_distance(self, tiny_histogram_workload, rng):
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[0]
        result = wl.network.range_query(query, 0.2)
        dists = [item.distance for item in result.items]
        assert dists == sorted(dists)

    def test_max_peers_limits_contacts(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[0]
        result = wl.network.range_query(query, 0.2, max_peers=2)
        assert len(result.peers_contacted) <= 2

    def test_more_peers_never_reduces_recall(self, tiny_histogram_workload, rng):
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[int(rng.integers(wl.ground_truth.n_items))]
        truth = wl.ground_truth.range_search(query, 0.15)
        if not truth:
            pytest.skip("degenerate query")
        recalls = []
        for p in (1, 3, 8):
            result = wl.network.range_query(query, 0.15, max_peers=p)
            recalls.append(precision_recall(result.item_ids, truth).recall)
        assert recalls == sorted(recalls)

    def test_hop_accounting_positive(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.range_query(wl.ground_truth.data[0], 0.1)
        assert result.index_hops >= 0
        assert result.retrieval_messages >= 0

    def test_scores_cover_contacted_peers(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.range_query(wl.ground_truth.data[0], 0.15)
        for peer_id in result.peers_contacted:
            assert peer_id in result.peer_scores

    def test_unknown_origin_rejected(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        with pytest.raises(QueryError):
            wl.network.range_query(
                wl.ground_truth.data[0], 0.1, origin_peer=999
            )

    def test_aggregation_override(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[0]
        for policy in ("min", "sum", "product"):
            result = wl.network.range_query(query, 0.1, aggregation=policy)
            assert isinstance(result.peer_scores, dict)


class TestPointQueries:
    def test_finds_existing_item(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        network = wl.network
        peer = network.peers[2]
        target = peer.data[0]
        result = network.point_query(target)
        assert any(item.distance <= 1e-9 for item in result.items)

    def test_point_query_is_zero_radius_range(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[5]
        a = wl.network.point_query(query)
        b = wl.network.range_query(query, 0.0)
        assert a.item_ids == b.item_ids


class TestGroundTruthConsistency:
    def test_centralized_index_from_network(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        gt = CentralizedIndex.from_network(wl.network)
        assert gt.n_items == wl.network.total_items
