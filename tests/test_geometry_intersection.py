"""Tests for Eq. 5–7: cap and intersection volume fractions.

The analytic formulas are validated three ways: against closed-form 2-d/3-d
geometry, against the paper's own Eq. 5 series, and against Monte-Carlo
estimates (property tests).
"""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.geometry.intersection import (
    TINY_FRACTION,
    cap_fraction,
    cap_fraction_series_even,
    intersection_fraction,
    spheres_intersect,
)
from repro.geometry.montecarlo import monte_carlo_intersection_fraction


class TestCapFraction:
    def test_limits(self):
        for d in (1, 2, 3, 4, 7, 10):
            assert cap_fraction(0.0, d) == 0.0
            assert np.isclose(cap_fraction(math.pi / 2, d), 0.5)
            assert np.isclose(cap_fraction(math.pi, d), 1.0)

    def test_2d_closed_form(self):
        # Circular segment: (alpha - sin(alpha)cos(alpha)) / pi
        for alpha in (0.3, 0.7, 1.2, 2.0, 2.9):
            expected = (alpha - math.sin(alpha) * math.cos(alpha)) / math.pi
            assert np.isclose(cap_fraction(alpha, 2), expected, atol=1e-12)

    def test_3d_closed_form(self):
        # Spherical cap: h^2 (3 - h) / 4 with h = 1 - cos(alpha), r = 1.
        for alpha in (0.4, 1.0, 1.5):
            h = 1.0 - math.cos(alpha)
            expected = h * h * (3.0 - h) / 4.0
            assert np.isclose(cap_fraction(alpha, 3), expected, atol=1e-12)

    def test_monotone_in_alpha(self):
        alphas = np.linspace(0, math.pi, 50)
        for d in (2, 5, 16):
            values = [cap_fraction(a, d) for a in alphas]
            assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_invalid_inputs(self):
        with pytest.raises(ValidationError):
            cap_fraction(-0.1, 2)
        with pytest.raises(ValidationError):
            cap_fraction(4.0, 2)
        with pytest.raises(ValidationError):
            cap_fraction(1.0, 0)


class TestEq5Series:
    @pytest.mark.parametrize("d", [2, 4, 6, 8, 16, 64])
    def test_matches_beta_closed_form(self, d):
        """The paper's Eq. 5 series equals the incomplete-beta cap fraction
        for every even dimension (for alpha <= pi/2 where the series form
        applies directly)."""
        for alpha in np.linspace(0.01, math.pi / 2, 12):
            assert np.isclose(
                cap_fraction_series_even(alpha, d),
                cap_fraction(alpha, d),
                atol=1e-10,
            )

    def test_rejects_odd_d(self):
        with pytest.raises(ValidationError):
            cap_fraction_series_even(1.0, 3)


class TestIntersectionFraction:
    def test_disjoint(self):
        assert intersection_fraction(1.0, 1.0, 3.0, 4) == 0.0

    def test_tangent_external(self):
        assert intersection_fraction(1.0, 1.0, 2.0, 4) == 0.0

    def test_data_inside_query(self):
        assert intersection_fraction(0.5, 2.0, 0.3, 4) == 1.0

    def test_query_inside_data(self):
        # Concentric: fraction = (eps/r)^d
        assert np.isclose(intersection_fraction(2.0, 1.0, 0.0, 3), 0.125)

    def test_zero_radius_data_sphere(self):
        assert intersection_fraction(0.0, 1.0, 0.5, 4) == 1.0
        assert intersection_fraction(0.0, 1.0, 1.5, 4) == 0.0

    def test_equal_spheres_half_overlap_2d(self):
        # Two unit circles at distance 1: lens area is known.
        lens = 2.0 * math.pi / 3.0 - math.sqrt(3.0) / 2.0
        expected = lens / math.pi
        assert np.isclose(intersection_fraction(1.0, 1.0, 1.0, 2), expected)

    def test_symmetric_in_equal_radii(self):
        f = intersection_fraction(1.0, 1.0, 0.8, 6)
        assert 0.0 < f < 1.0

    def test_monotone_in_query_radius(self):
        eps_values = np.linspace(0.0, 3.0, 40)
        fractions = [
            intersection_fraction(1.0, e, 1.2, 5) for e in eps_values
        ]
        assert all(b >= a - 1e-12 for a, b in zip(fractions, fractions[1:]))

    def test_monotone_decreasing_in_distance(self):
        distances = np.linspace(0.0, 2.5, 40)
        fractions = [
            intersection_fraction(1.0, 1.0, b, 4) for b in distances
        ]
        assert all(b <= a + 1e-12 for a, b in zip(fractions, fractions[1:]))

    @given(
        r=st.floats(min_value=0.1, max_value=2.0),
        eps=st.floats(min_value=0.1, max_value=2.0),
        gap=st.floats(min_value=0.0, max_value=0.95),
        d=st.integers(min_value=1, max_value=8),
    )
    def test_in_unit_interval(self, r, eps, gap, d):
        b = gap * (r + eps)
        f = intersection_fraction(r, eps, b, d)
        assert 0.0 <= f <= 1.0

    def test_high_dimensional_containment_does_not_underflow(self):
        """Regression: at d = 512 (the paper's feature histograms) the
        direct power ``(eps/r)**512`` is exactly 0.0 for any radius ratio
        below ~0.2, and the unclamped value silently zeroed genuine
        containments out of the min-aggregation. The clamp keeps every
        intersecting pair positive; values still representable (even as
        subnormals) come through at full precision."""
        # Deep subnormal territory: exact log-space value, not the clamp.
        f = intersection_fraction(1.0, 0.25, 0.5, 512)
        assert np.isclose(f, math.exp(512 * math.log(0.25)), rtol=1e-12)
        assert 0.0 < f < 1e-300
        # Below even the subnormal range: clamped, never 0.0.
        assert (0.1 / 1.0) ** 512 == 0.0  # what the old code returned
        g = intersection_fraction(1.0, 0.1, 0.5, 512)
        assert g == TINY_FRACTION
        assert g > 0.0

    def test_high_dimensional_containment_large_ratio(self):
        # Ratio close to 1 stays in the comfortable double range and must
        # agree with the analytic value.
        f = intersection_fraction(1.0, 0.97, 0.01, 512)
        assert np.isclose(f, 1.6870499616221884e-07, rtol=1e-9)

    def test_high_dimensional_lens_positive(self):
        """A proper lens at d = 512 is a positive-volume overlap; the
        cap_b * (eps/r)**d product must not vanish en route."""
        f = intersection_fraction(1.0, 0.3, 0.75, 512)
        assert f > 0.0
        assert f < 1e-200  # genuinely tiny, not an accidental large value

    def test_subnormal_query_radius(self):
        # eps = 5e-324: eps/r underflows to 0.0; must clamp, not raise.
        tiny = math.ulp(0.0)
        f = intersection_fraction(2.0, tiny, 1.0, 3)
        assert f == TINY_FRACTION

    def test_positive_fraction_iff_intersecting(self):
        """The clamp preserves: intersecting (per the shared predicate)
        implies positive fraction, for every dimension tried."""
        for d in (1, 2, 8, 64, 512):
            for r, eps, b in [
                (1.0, 0.1, 0.5),
                (1.0, 0.5, 1.4),
                (2.0, 0.01, 1.99),
                (0.5, 0.25, 0.749),
            ]:
                assert spheres_intersect(r, eps, b)
                assert intersection_fraction(r, eps, b, d) > 0.0, (r, eps, b, d)

    @pytest.mark.parametrize(
        "r,eps,b,d",
        [
            (1.0, 1.0, 1.0, 2),
            (1.0, 0.7, 1.2, 3),
            (0.5, 1.1, 0.9, 4),
            (1.0, 1.0, 0.5, 6),
            (2.0, 1.0, 1.8, 5),
        ],
    )
    def test_against_monte_carlo(self, r, eps, b, d):
        analytic = intersection_fraction(r, eps, b, d)
        center = np.zeros(d)
        query = np.zeros(d)
        query[0] = b
        mc = monte_carlo_intersection_fraction(
            center, r, query, eps, n_samples=200_000, rng=0
        )
        assert abs(analytic - mc) < 0.01
