"""Tests for the query-explanation (``describe``) API."""



class TestDescribe:
    def test_range_describe_mentions_key_facts(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.range_query(wl.ground_truth.data[0], 0.15,
                                        max_peers=3)
        text = result.describe()
        assert "range query" in text
        assert "index traffic" in text
        assert "candidate peers" in text
        for peer_id in result.peers_contacted[:3]:
            assert f"peer {peer_id:>4}" in text

    def test_knn_describe_shows_radii(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.knn_query(wl.ground_truth.data[0], 5)
        text = result.describe()
        assert "k-NN query (k=5)" in text
        assert "estimated per-level radii" in text
        assert "A:" in text

    def test_describe_reports_failed_contacts(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        network = wl.network
        # Take one high-scoring peer offline; its contact should fail.
        result = network.range_query(wl.ground_truth.data[0], 0.2)
        if not result.peers_contacted:
            return
        victim = result.peers_contacted[0]
        origin = next(
            p for p in network.peers
            if p != victim and network.peers[p].online
        )
        network.peers[victim].online = False
        retry = network.range_query(
            wl.ground_truth.data[0], 0.2, origin_peer=origin
        )
        if retry.failed_contacts:
            assert "failed" in retry.describe()
            assert "unreachable" in retry.describe(top=len(network.peers))

    def test_describe_top_limits_rows(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.range_query(wl.ground_truth.data[0], 0.2)
        short = result.describe(top=1)
        assert short.count("peer ") <= 3  # header line + one row
