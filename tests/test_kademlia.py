"""Kademlia backend specifics: XOR routing, k-buckets, range owners.

The generic behaviour is already pinned by the parametrised contract
suite (``tests/test_overlay_contract.py``); these tests cover what is
unique to the XOR DHT — routing exactness of the α-concurrent iterative
lookup, k-bucket structure, the exact binary-trie owner enumeration
behind range queries, churn-driven re-homing, and the adaptation plane.
"""

import numpy as np
import pytest

from repro.overlay.kademlia import (
    K_BUCKET_SIZE,
    KademliaNetwork,
    LOOKUP_CONCURRENCY,
)


@pytest.fixture
def net():
    overlay = KademliaNetwork(2, rng=7)
    overlay.grow(16)
    return overlay


class TestIdentity:
    def test_kad_ids_distinct_and_in_range(self, net):
        ids = [net.kad_id(nid) for nid in net.node_ids]
        assert len(set(ids)) == len(ids)
        assert all(0 <= kid < net._key_space for kid in ids)

    def test_constants(self):
        assert K_BUCKET_SIZE == 20
        assert LOOKUP_CONCURRENCY == 3


class TestBuckets:
    def test_bucket_index_is_shared_prefix(self, net):
        origin = net.node_ids[0]
        kad = net.kad_id(origin)
        for index, bucket in enumerate(net.buckets(origin)):
            for member in bucket:
                distance = kad ^ net.kad_id(member)
                assert distance.bit_length() - 1 == index

    def test_buckets_cover_every_other_member(self, net):
        # Well under K_BUCKET_SIZE members per bucket, so nothing is
        # evicted: the union of one node's buckets is everyone else.
        origin = net.node_ids[0]
        seen = {m for bucket in net.buckets(origin) for m in bucket}
        assert seen == set(net.node_ids) - {origin}

    def test_bucket_capacity_respected(self, net):
        net.grow(30)
        for nid in net.node_ids:
            for bucket in net.buckets(nid):
                assert len(bucket) <= K_BUCKET_SIZE


class TestRouting:
    def test_iterative_lookup_is_exact(self, net):
        rng = np.random.default_rng(3)
        for code in rng.integers(0, net._key_space, size=100):
            owner, probes = net._iterative_lookup(
                net.node_ids[0], int(code)
            )
            assert owner == net._owner_of_code(int(code))
            assert len(probes) >= 1

    def test_lookup_charges_traffic(self, net):
        before = net.fabric.metrics.total_messages
        net.insert(net.node_ids[0], [0.4, 0.6], "x")
        assert net.fabric.metrics.total_messages > before

    def test_owners_of_range_matches_brute_force(self, net):
        rng = np.random.default_rng(5)
        for __ in range(50):
            lo = int(rng.integers(0, net._key_space - 1))
            hi = int(rng.integers(lo, min(lo + 4096, net._key_space - 1)))
            want = {
                net._owner_of_code(code) for code in range(lo, hi + 1)
            }
            assert net._owners_of_range(lo, hi) == want

    def test_owners_of_full_range_is_everyone(self, net):
        assert net._owners_of_range(0, net._key_space - 1) == set(
            net.node_ids
        )


class TestChurn:
    def _fill(self, net, count=30):
        rng = np.random.default_rng(11)
        points = rng.random((count, 2))
        for i, p in enumerate(points):
            net.insert(
                net.node_ids[i % len(net.node_ids)], p, i, radius=0.05
            )
        return points

    def test_leave_rehomes_rows(self, net):
        self._fill(net)
        for __ in range(5):
            net.leave(net.node_ids[-1])
        held = {
            entry.value
            for nid in net.node_ids
            for entry in net.node(nid).store
            if isinstance(entry.value, int)
        }
        assert held == set(range(30))
        net.level_store.verify_integrity()

    def test_ownership_exact_after_churn(self, net):
        self._fill(net)
        for __ in range(4):
            net.leave(net.node_ids[-1])
        net.grow(3)
        rng = np.random.default_rng(13)
        for code in rng.integers(0, net._key_space, size=30):
            owner, __ = net._iterative_lookup(net.node_ids[0], int(code))
            assert owner == net._owner_of_code(int(code))

    def test_range_query_complete_after_churn(self, net):
        points = self._fill(net)
        for __ in range(4):
            net.leave(net.node_ids[-1])
        net.grow(2)
        center = np.array([0.5, 0.5])
        radius = 0.35
        receipt = net.range_query(net.node_ids[0], center, radius)
        got = {e.value for e in receipt.entries if isinstance(e.value, int)}
        want = {
            i
            for i, p in enumerate(points)
            if np.linalg.norm(p - center) <= radius - 1e-9
        }
        assert want <= got


class TestAdaptationPlane:
    def test_rebalance_hot_moves_rows(self, net):
        rng = np.random.default_rng(17)
        for i in range(40):
            net.insert(net.node_ids[0], rng.random(2), i)
        loads = net.loads()
        hot = max(loads, key=lambda nid: (loads[nid], nid))
        if loads[hot] < 2:
            pytest.skip("no node hot enough to split")
        target = net.rebalance_hot(hot)
        assert target in net.node_ids
        # A DHT rebalance is bulk replication: the XOR-nearest peer now
        # holds every row the hot node holds (ownership stays put).
        hot_rows = set(net.node(hot).membership.rows().tolist())
        target_rows = set(net.node(target).membership.rows().tolist())
        assert hot_rows <= target_rows
        # Replication, not handoff: the hot node keeps serving its rows.
        assert net.loads()[hot] == loads[hot]
        held = {
            entry.value
            for nid in net.node_ids
            for entry in net.node(nid).store
            if isinstance(entry.value, int)
        }
        assert held == set(range(40))

    def test_boost_and_shed_replication(self, net):
        net.insert(net.node_ids[0], [0.5, 0.5], "hot", radius=0.1)
        row = net.level_store.row_of(
            next(
                e.entry_id
                for nid in net.node_ids
                for e in net.node(nid).store
                if e.value == "hot"
            )
        )
        holders_before = sum(
            1 for nid in net.node_ids
            if row in net.node(nid).membership
        )
        added = net.boost_replication(row, 2)
        assert len(added) == 2
        dropped = net.shed_replication(row)
        holders_after = sum(
            1 for nid in net.node_ids
            if row in net.node(nid).membership
        )
        assert holders_after == holders_before + len(added) - len(dropped)
        assert holders_after >= 1
        # Shedding never drops the row below its required targets.
        for target in net._row_targets(row):
            assert row in net.node(target).membership
