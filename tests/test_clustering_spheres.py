"""Tests for cluster-sphere summaries."""

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans
from repro.clustering.spheres import ClusterSphere, spheres_from_clustering
from repro.exceptions import ValidationError


class TestClusterSphere:
    def test_construction(self):
        s = ClusterSphere(np.array([0.5, 0.5]), 0.1, 10)
        assert s.dimensionality == 2
        assert s.items == 10

    def test_negative_radius_rejected(self):
        with pytest.raises(ValidationError):
            ClusterSphere(np.zeros(2), -0.1, 1)

    def test_zero_items_rejected(self):
        with pytest.raises(ValidationError):
            ClusterSphere(np.zeros(2), 0.1, 0)

    def test_contains(self):
        s = ClusterSphere(np.zeros(2), 1.0, 1)
        assert s.contains(np.array([0.5, 0.5]))
        assert s.contains(np.array([1.0, 0.0]))  # boundary
        assert not s.contains(np.array([1.0, 1.0]))

    def test_intersects_sphere(self):
        s = ClusterSphere(np.zeros(2), 1.0, 1)
        assert s.intersects_sphere(np.array([1.5, 0.0]), 0.6)
        assert s.intersects_sphere(np.array([2.0, 0.0]), 1.0)  # tangent
        assert not s.intersects_sphere(np.array([3.0, 0.0]), 0.5)

    def test_scaled(self):
        s = ClusterSphere(np.array([1.0, 0.0]), 0.5, 3).scaled(2.0)
        assert np.allclose(s.centroid, [2.0, 0.0])
        assert s.radius == 1.0
        assert s.items == 3

    def test_scaled_invalid(self):
        with pytest.raises(ValidationError):
            ClusterSphere(np.zeros(1), 0.5, 1).scaled(0.0)

    def test_translated(self):
        s = ClusterSphere(np.zeros(2), 0.5, 1).translated(np.array([1.0, 2.0]))
        assert np.allclose(s.centroid, [1.0, 2.0])


class TestSpheresFromClustering:
    def test_every_point_inside_its_sphere(self, rng):
        data = rng.random((50, 4))
        result = kmeans(data, 5, rng=0)
        spheres = spheres_from_clustering(data, result)
        for c, sphere in enumerate(spheres):
            # Sphere order matches non-empty cluster order.
            pass
        # Reconstruct mapping: check all points are covered by some sphere
        # whose centroid matches their assigned cluster.
        by_centroid = {tuple(np.round(s.centroid, 9)): s for s in spheres}
        for i, point in enumerate(data):
            centroid = result.centroids[result.labels[i]]
            sphere = by_centroid[tuple(np.round(centroid, 9))]
            assert sphere.contains(point)

    def test_counts_sum_to_n(self, rng):
        data = rng.random((30, 3))
        result = kmeans(data, 4, rng=1)
        spheres = spheres_from_clustering(data, result)
        assert sum(s.items for s in spheres) == 30

    def test_singleton_cluster_zero_radius(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = kmeans(data, 2, rng=0)
        spheres = spheres_from_clustering(data, result)
        assert all(s.radius == 0.0 for s in spheres)
        assert all(s.items == 1 for s in spheres)

    def test_empty_clusters_dropped(self):
        data = np.ones((5, 2))  # all identical: k-means leaves clusters empty
        result = kmeans(data, 3, rng=0)
        spheres = spheres_from_clustering(data, result)
        assert sum(s.items for s in spheres) == 5
        assert all(s.items >= 1 for s in spheres)
