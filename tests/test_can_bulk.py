"""Bulk CAN construction: the analytic grid equals the protocol's limit.

:mod:`repro.overlay.can.bulk` materialises the power-of-two grid that a
uniform midpoint split sequence converges to, instead of routing every
join. These tests pin the equivalences that make the shortcut safe:

* grid adjacency reproduces exactly what the O(n²) geometric scan
  (:meth:`CANNetwork._rebuild_all_neighbors`) would compute;
* :meth:`GridPlan.owner_nodes` agrees with greedy-routing ownership
  (:meth:`CANNetwork.owner_of`) for every key, boundaries included;
* :func:`bulk_publish` leaves the store, memberships, and the fabric's
  metrics/energy/load ledgers exactly where the per-frame path would.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.faults import FaultPlan, plan_scope
from repro.net.messages import MessageKind, vector_message_size
from repro.net.network import Network
from repro.overlay.can import (
    GridPlan,
    build_grid_can,
    bulk_publish,
    grid_shape,
)


class TestGridShape:
    def test_round_robin_split_order(self):
        assert grid_shape(2, 16) == (4, 4)
        assert grid_shape(2, 8) == (4, 2)
        assert grid_shape(3, 32) == (4, 4, 2)
        assert grid_shape(1, 8) == (8,)

    def test_rounds_up_to_a_power_of_two(self):
        assert grid_shape(2, 9) == (4, 4)
        assert grid_shape(2, 5) == (4, 2)

    def test_single_node_grid(self):
        assert grid_shape(3, 1) == (1, 1, 1)

    def test_validation(self):
        with pytest.raises(ValidationError):
            grid_shape(0, 4)
        with pytest.raises(ValidationError):
            grid_shape(2, 0)


class TestBuildGridCan:
    @pytest.mark.parametrize(
        "dim,n", [(1, 8), (2, 16), (2, 8), (3, 32), (4, 16), (2, 1), (1, 2)]
    )
    def test_adjacency_matches_geometric_scan(self, dim, n):
        can, __ = build_grid_can(dim, n)
        built = {
            node_id: set(can.node(node_id).neighbors)
            for node_id in can.node_ids
        }
        can._rebuild_all_neighbors()
        geometric = {
            node_id: set(can.node(node_id).neighbors)
            for node_id in can.node_ids
        }
        assert built == geometric

    def test_zones_tile_the_cube(self):
        can, plan = build_grid_can(3, 32)
        assert len(can) == plan.n_cells
        assert can.total_zone_volume() == pytest.approx(1.0, abs=1e-12)

    def test_owner_nodes_matches_greedy_ownership(self):
        can, plan = build_grid_can(2, 16, rng=0)
        rng = np.random.default_rng(4)
        keys = rng.random((200, 2))
        analytic = plan.owner_nodes(keys)
        routed = np.array([can.owner_of(key) for key in keys])
        np.testing.assert_array_equal(analytic, routed)

    def test_outer_face_clamps_into_the_last_cell(self):
        can, plan = build_grid_can(2, 16)
        corner = np.ones((1, 2))
        owner = int(plan.owner_nodes(corner)[0])
        assert owner == can.owner_of(corner[0])

    def test_node_id_offset_respected(self):
        can, plan = build_grid_can(2, 4, node_id_offset=5000)
        assert min(can.node_ids) == 5000
        assert plan.node_id_offset == 5000
        assert can._next_id == 5000 + plan.n_cells

    def test_owner_nodes_rejects_wrong_shape(self):
        plan = GridPlan(counts=(4, 4), node_id_offset=0)
        with pytest.raises(ValidationError, match="shape"):
            plan.owner_nodes(np.zeros((3, 3)))


class TestBulkPublish:
    def _publish(self, n=60, dim=2, seed=7, **kwargs):
        rng = np.random.default_rng(seed)
        can, plan = build_grid_can(dim, 16)
        keys = rng.random((n, dim))
        radii = 0.05 * rng.random(n)
        peer_ids = np.arange(n, dtype=np.int64) % 5
        report = bulk_publish(
            can, plan, keys, radii, peer_ids=peer_ids, **kwargs
        )
        return can, plan, keys, radii, report

    def test_report_counts(self):
        can, plan, keys, __, report = self._publish()
        assert report.spheres == keys.shape[0]
        assert report.messages == keys.shape[0]
        owners = plan.owner_nodes(keys)
        assert report.nodes_touched == np.unique(owners).size
        size = vector_message_size(can.dimensionality, scalars=2)
        assert report.bytes_sent == size * keys.shape[0]

    def test_rows_land_at_their_owners(self):
        can, plan, keys, __, __ = self._publish()
        owners = plan.owner_nodes(keys)
        store = can.level_store
        assert store.n_rows == keys.shape[0]
        for node_id in np.unique(owners):
            expected = int((owners == node_id).sum())
            assert len(can.node(int(node_id)).membership) == expected

    def test_mask_sees_every_published_sphere(self):
        can, plan, keys, radii, __ = self._publish()
        mask = can.level_store.intersection_mask(keys[0], 1.5)
        # Radius 1.5 > any torus distance + sphere radius: all live rows.
        assert int(mask.sum()) == keys.shape[0]

    def test_fabric_accounting_matches_per_frame_totals(self):
        can, plan, keys, __, report = self._publish()
        size = vector_message_size(can.dimensionality, scalars=2)
        insert = can.fabric.metrics.kind(MessageKind.INSERT)
        assert insert.messages == keys.shape[0]
        assert insert.bytes == size * keys.shape[0]
        # Energy: every frame charges one tx + one rx of `size` bytes.
        model = can.fabric.energy.model
        expected = keys.shape[0] * model.hop_cost(size)
        assert can.fabric.energy.total == pytest.approx(expected)

    def test_charge_false_skips_the_fabric(self):
        can, __, keys, __, report = self._publish(charge=False)
        assert report.messages == 0
        assert report.bytes_sent == 0
        assert can.fabric.metrics.total_messages == 0
        assert can.level_store.n_rows == keys.shape[0]

    def test_origins_attribute_senders(self):
        rng = np.random.default_rng(3)
        can, plan = build_grid_can(2, 4)
        keys = rng.random((10, 2))
        origins = np.full(10, can.node_ids[0], dtype=np.int64)
        bulk_publish(can, plan, keys, 0.05 * rng.random(10), origins=origins)
        load = can.fabric.load.per_node[can.node_ids[0]]
        assert load.msgs_out == 10

    def test_bulk_transmit_rejects_an_active_fault_plan(self):
        rng = np.random.default_rng(3)
        with plan_scope(FaultPlan(loss=0.2, seed=1)):
            can, plan = build_grid_can(2, 4)
            keys = rng.random((5, 2))
            with pytest.raises(ValidationError, match="clean-fabric"):
                bulk_publish(can, plan, keys, 0.05 * rng.random(5))

    def test_bulk_transmit_allows_a_null_fault_plan(self):
        rng = np.random.default_rng(3)
        with plan_scope(FaultPlan(loss=0.0, seed=1)):
            can, plan = build_grid_can(2, 4)
            keys = rng.random((5, 2))
            report = bulk_publish(can, plan, keys, 0.05 * rng.random(5))
        assert report.messages == 5

    def test_transmit_bulk_validates_alignment(self):
        fabric = Network()
        with pytest.raises(ValidationError, match="align"):
            fabric.transmit_bulk(
                MessageKind.INSERT, np.array([1, 2]), np.array([1]), 8
            )
        assert fabric.transmit_bulk(
            MessageKind.INSERT, np.array([], dtype=np.int64),
            np.array([], dtype=np.int64), 8,
        ) == 0
