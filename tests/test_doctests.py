"""Run the doctest examples embedded in public docstrings."""

import doctest

import pytest

import repro.engine.serial
import repro.overlay.can.network


@pytest.mark.parametrize(
    "module",
    [repro.engine.serial, repro.overlay.can.network],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
    assert results.attempted > 0, "no doctests found — examples removed?"
