"""Tests for the workload generators."""

import numpy as np
import pytest

from repro.datasets.histograms import generate_histograms
from repro.datasets.markov import generate_markov_vectors
from repro.datasets.partition import partition_among_peers
from repro.datasets.skewed import generate_skewed_dataset
from repro.exceptions import ValidationError


class TestMarkov:
    def test_shape_and_range(self):
        data = generate_markov_vectors(50, 64, rng=0)
        assert data.shape == (50, 64)
        assert data.min() >= 0.0 and data.max() <= 1.0

    def test_reproducible(self):
        a = generate_markov_vectors(10, 32, rng=7)
        b = generate_markov_vectors(10, 32, rng=7)
        assert np.array_equal(a, b)

    def test_vectors_are_smooth_walks(self):
        """Consecutive coordinates differ by at most the max step bound."""
        data = generate_markov_vectors(20, 64, max_step_bound=0.05, rng=1)
        diffs = np.abs(np.diff(data, axis=1))
        assert diffs.max() <= 0.05 + 1e-12

    def test_vectors_differ(self):
        data = generate_markov_vectors(5, 32, rng=2)
        assert not np.allclose(data[0], data[1])

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            generate_markov_vectors(0, 16)
        with pytest.raises(ValidationError):
            generate_markov_vectors(5, 0)


class TestHistograms:
    def test_shape_and_labels(self):
        ds = generate_histograms(10, 6, 32, rng=0)
        assert ds.data.shape == (60, 32)
        assert ds.labels.shape == (60,)
        assert ds.n_objects == 10
        assert np.all(np.bincount(ds.labels) == 6)

    def test_unit_cube(self):
        ds = generate_histograms(8, 5, 64, rng=1)
        assert ds.data.min() >= 0.0
        assert np.isclose(ds.data.max(), 1.0)

    def test_same_object_views_are_closer(self):
        """The ALOI structure: intra-object distance < inter-object."""
        ds = generate_histograms(15, 8, 64, rng=2)
        intra, inter = [], []
        rng = np.random.default_rng(3)
        for __ in range(300):
            i, j = rng.integers(0, ds.n_items, size=2)
            if i == j:
                continue
            dist = np.linalg.norm(ds.data[i] - ds.data[j])
            (intra if ds.labels[i] == ds.labels[j] else inter).append(dist)
        assert np.mean(intra) < 0.5 * np.mean(inter)

    def test_power_of_two_bins_required(self):
        with pytest.raises(Exception):
            generate_histograms(5, 5, 48)

    def test_reproducible(self):
        a = generate_histograms(5, 4, 32, rng=9)
        b = generate_histograms(5, 4, 32, rng=9)
        assert np.array_equal(a.data, b.data)


class TestSkewed:
    def test_output_is_subset(self, rng):
        data = rng.random((200, 8))
        skewed = generate_skewed_dataset(data, 3, rng=0)
        assert skewed.shape[0] < 200
        assert skewed.shape[1] == 8

    def test_fewer_clusters_fewer_rows(self, rng):
        data = rng.random((300, 8))
        small = generate_skewed_dataset(data, 2, rng=1)
        large = generate_skewed_dataset(data, 5, rng=1)
        assert small.shape[0] <= large.shape[0]

    def test_invalid(self, rng):
        with pytest.raises(ValidationError):
            generate_skewed_dataset(rng.random((10, 2)), 0)


class TestPartition:
    def test_every_item_exactly_once(self, rng):
        data = rng.random((200, 8))
        parts = partition_among_peers(data, 10, rng=0)
        all_ids = np.concatenate([ids for __, ids in parts])
        assert sorted(all_ids.tolist()) == list(range(200))

    def test_every_peer_nonempty(self, rng):
        data = rng.random((100, 4))
        parts = partition_among_peers(data, 20, rng=1)
        assert all(block.shape[0] >= 1 for block, __ in parts)

    def test_peer_count(self, rng):
        parts = partition_among_peers(rng.random((50, 4)), 7, rng=2)
        assert len(parts) == 7

    def test_data_matches_ids(self, rng):
        data = rng.random((80, 4))
        ids = np.arange(1000, 1080)
        parts = partition_among_peers(data, 8, item_ids=ids, rng=3)
        for block, block_ids in parts:
            for row, item_id in zip(block, block_ids):
                assert np.array_equal(row, data[item_id - 1000])

    def test_interest_locality(self, rng):
        """Items sharing a global cluster should concentrate on few peers."""
        centers = rng.random((10, 8))
        data = np.clip(
            np.repeat(centers, 30, axis=0)
            + rng.normal(0, 0.01, size=(300, 8)),
            0, 1,
        )
        parts = partition_among_peers(
            data, 20, clusters_per_peer=2, peers_per_cluster=(3, 3), rng=4
        )
        # ~13 k-means clusters over 10 true blobs, 3 peers each: every true
        # blob should concentrate on well under half the 20 peers.
        for c in range(10):
            holders = {
                peer_idx
                for peer_idx, (__, ids) in enumerate(parts)
                if np.any((ids >= c * 30) & (ids < (c + 1) * 30))
            }
            assert len(holders) <= 9

    def test_too_few_items(self, rng):
        with pytest.raises(ValidationError):
            partition_among_peers(rng.random((5, 2)), 10, rng=0)
