"""The batched index-phase plane: stacked masks, heat, set equality.

Pins the two facts the serving tier rests on:

* :meth:`LevelStore.intersection_masks` is row-for-row identical to the
  scalar :meth:`LevelStore.intersection_mask` (the GEMM's float drift is
  absorbed by the shared boundary band), tombstones included.
* :func:`repro.serve.batch.batched_candidates` resolves exactly the
  candidate sets the sequential overlay walk yields (the replication
  invariant: live rows under the mask == the visited zones' union), and
  every request bumps candidate heat — cached or freshly computed.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.network import HyperMConfig
from repro.core.results import ClusterRecord
from repro.evaluation.workloads import build_markov_network, sample_queries
from repro.exceptions import ValidationError
from repro.index import LevelStore
from repro.serve.batch import batched_candidates, fresh_candidates, level_radii
from repro.serve.cache import CandidateCache
from repro.wavelets.bounds import key_space_radius, radius_scale


def _record(peer: int) -> ClusterRecord:
    return ClusterRecord(peer_id=peer, items=10, level_name="A")


def _populate(store: LevelStore, n: int, d: int, rng):
    keys = rng.random((n, d))
    radii = rng.uniform(0.0, 0.5, n)
    return [
        store.add(keys[i], float(radii[i]), _record(int(i % 5)))
        for i in range(n)
    ]


class TestIntersectionMasks:
    @given(
        n=st.integers(1, 40),
        batch=st.integers(1, 8),
        d=st.integers(1, 6),
        seed=st.integers(0, 1000),
    )
    def test_matches_scalar_mask_per_row(self, n, batch, d, seed):
        rng = np.random.default_rng(seed)
        store = LevelStore(d)
        _populate(store, n, d, rng)
        centers = rng.random((batch, d))
        radii = rng.uniform(0.0, 0.8, batch)
        masks = store.intersection_masks(centers, radii)
        assert masks.shape == (batch, len(store))
        for i in range(batch):
            expected = store.intersection_mask(centers[i], float(radii[i]))
            assert np.array_equal(masks[i], expected)

    def test_skips_tombstoned_rows(self, rng):
        store = LevelStore(3)
        rows = _populate(store, 12, 3, rng)
        membership = store.new_membership()
        for row in rows[:4]:
            membership.add(row)
        for row in rows[:4]:
            membership.discard(row)  # tombstones rows 0..3
        centers = np.tile(store._keys[rows[0]], (2, 1))
        masks = store.intersection_masks(centers, np.array([10.0, 10.0]))
        assert not masks[:, rows[:4]].any()
        live = [r for r in rows[4:]]
        assert masks[:, live].all()  # radius 10 covers the unit cube

    def test_empty_store_yields_empty_masks(self):
        store = LevelStore(4)
        masks = store.intersection_masks(np.zeros((3, 4)), np.ones(3))
        assert masks.shape == (3, 0)

    def test_shape_validation(self, rng):
        store = LevelStore(3)
        _populate(store, 4, 3, rng)
        with pytest.raises(ValidationError):
            store.intersection_masks(np.zeros((2, 5)), np.ones(2))
        with pytest.raises(ValidationError):
            store.intersection_masks(np.zeros((2, 3)), np.ones(3))

    def test_boundary_band_matches_scalar_resolution(self, rng):
        # Construct a pair landing inside the exact-resolution band:
        # distance == sum of radii up to float drift.
        store = LevelStore(2)
        store.add(np.array([0.2, 0.2]), 0.1, _record(0))
        center = np.array([[0.2 + 0.1 + 0.05, 0.2]])
        masks = store.intersection_masks(center, np.array([0.05]))
        expected = store.intersection_mask(center[0], 0.05)
        assert np.array_equal(masks[0], expected)


class TestBumpHeat:
    def test_bumps_without_generation_change(self, rng):
        store = LevelStore(3)
        rows = _populate(store, 6, 3, rng)
        generation = store.generation
        store.bump_heat(np.asarray(rows[:3]))
        store.bump_heat(np.asarray(rows[:1]))
        assert store.generation == generation
        assert store.heat_of(np.asarray(rows[:1]))[0] == 2
        assert store.heat_of(np.asarray(rows[1:3])).tolist() == [1, 1]
        assert store.heat_of(np.asarray(rows[3:])).tolist() == [0, 0, 0]

    def test_empty_rows_are_a_no_op(self, rng):
        store = LevelStore(2)
        _populate(store, 3, 2, rng)
        store.bump_heat(np.empty(0, dtype=np.int64))
        assert store.heat_of(np.arange(3)).tolist() == [0, 0, 0]


@pytest.fixture(scope="module")
def served_workload():
    workload, __ = build_markov_network(
        n_peers=8,
        items_per_peer=40,
        dimensionality=16,
        config=HyperMConfig(levels_used=3, n_clusters=4),
        rng=11,
        publish=True,
    )
    return workload


def _plans(network, queries, epsilon):
    from repro.core.queries import _query_keys

    plans = []
    for query in queries:
        keys = _query_keys(network, query)
        radii = level_radii(network, epsilon)
        plans.append({
            level: (keys[level], radii[index])
            for index, level in enumerate(network.levels)
        })
    return plans


class TestBatchedCandidates:
    def test_level_radii_matches_theorem_31_scaling(self, served_workload):
        network = served_workload.network
        d = network.dimensionality
        radii = level_radii(network, 0.3)
        for index, level in enumerate(network.levels):
            expected = key_space_radius(0.3 * radius_scale(d, level), level)
            assert radii[index] == expected

    def test_equals_fresh_candidates_per_plan(self, served_workload):
        network = served_workload.network
        queries = sample_queries(
            served_workload.data, 6, rng=np.random.default_rng(2)
        )
        plans = _plans(network, queries, 0.3)
        batched = batched_candidates(network, plans, CandidateCache(64))
        for plan, resolved in zip(plans, batched):
            for level, (key, radius) in plan.items():
                store = network.overlays[level].level_store
                expected = fresh_candidates(store, key, radius)
                assert np.array_equal(resolved[level].rows, expected.rows)
                assert resolved[level].generation == expected.generation

    def test_cache_dedupes_within_and_across_batches(self, served_workload):
        network = served_workload.network
        queries = sample_queries(
            served_workload.data, 3, rng=np.random.default_rng(3)
        )
        cache = CandidateCache(64)
        # Same query twice in one batch: duplicates dedupe *before* the
        # cache, so the pass costs one miss per level and no hits.
        plans = _plans(network, [queries[0], queries[0]], 0.3)
        batched_candidates(network, plans, cache)
        stats = cache.snapshot()
        n_levels = len(network.levels)
        assert stats["misses"] == n_levels
        assert stats["hits"] == 0
        # Same batch again: one deduped cache hit per level, no misses.
        batched_candidates(network, plans, cache)
        stats = cache.snapshot()
        assert stats["misses"] == n_levels
        assert stats["hits"] == n_levels

    def test_every_request_bumps_heat_even_when_cached(self, served_workload):
        network = served_workload.network
        queries = sample_queries(
            served_workload.data, 1, rng=np.random.default_rng(4)
        )
        plans = _plans(network, [queries[0], queries[0]], 0.3)
        level = network.levels[0]
        store = network.overlays[level].level_store
        before = store._heat.copy()
        resolved = batched_candidates(network, plans, CandidateCache(64))
        rows = resolved[0][level].rows
        delta = store._heat - before
        if len(rows):
            assert (delta[rows] == 2).all()  # both requests counted

    def test_works_without_a_cache(self, served_workload):
        network = served_workload.network
        queries = sample_queries(
            served_workload.data, 2, rng=np.random.default_rng(5)
        )
        plans = _plans(network, queries, 0.2)
        batched = batched_candidates(network, plans, None)
        assert len(batched) == 2
        for plan, resolved in zip(plans, batched):
            for level, (key, radius) in plan.items():
                store = network.overlays[level].level_store
                expected = fresh_candidates(store, key, radius)
                assert np.array_equal(resolved[level].rows, expected.rows)
