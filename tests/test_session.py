"""Tests for the whole-session MANET simulator."""

import pytest

from repro.core.network import HyperMConfig
from repro.evaluation.session import (
    SessionConfig,
    SessionSimulator,
)
from repro.exceptions import ValidationError


def quick_config(**overrides):
    base = dict(
        duration=120.0,
        n_peers=8,
        query_rate=0.2,
        departure_rate=0.02,
        arrival_rate=0.02,
        sample_every=30.0,
    )
    base.update(overrides)
    return SessionConfig(**base)


class TestSessionConfig:
    def test_defaults_valid(self):
        SessionConfig()

    def test_invalid_duration(self):
        with pytest.raises(ValidationError):
            SessionConfig(duration=0)

    def test_invalid_rate(self):
        with pytest.raises(ValidationError):
            SessionConfig(query_rate=-1)

    def test_too_few_peers(self):
        with pytest.raises(ValidationError):
            SessionConfig(n_peers=1)


class TestSessionRun:
    @pytest.fixture(scope="class")
    def outcome(self):
        sim = SessionSimulator(
            quick_config(),
            hyperm=HyperMConfig(levels_used=3, n_clusters=4),
            rng=0,
        )
        return sim.run()

    def test_queries_ran(self, outcome):
        assert outcome.queries_run > 5

    def test_recall_reasonable(self, outcome):
        # A contact budget of 6 over 8 peers keeps recall high.
        assert outcome.mean_recall > 0.5

    def test_timeline_sampled(self, outcome):
        assert len(outcome.samples) >= 3
        times = [s.time for s in outcome.samples]
        assert times == sorted(times)
        assert all(s.online_peers >= 2 for s in outcome.samples)

    def test_traffic_monotone(self, outcome):
        hops = [s.total_hops for s in outcome.samples]
        assert hops == sorted(hops)
        energy = [s.total_energy for s in outcome.samples]
        assert energy == sorted(energy)

    def test_reproducible(self):
        a = SessionSimulator(
            quick_config(duration=60.0),
            hyperm=HyperMConfig(levels_used=2, n_clusters=3),
            rng=7,
        ).run()
        b = SessionSimulator(
            quick_config(duration=60.0),
            hyperm=HyperMConfig(levels_used=2, n_clusters=3),
            rng=7,
        ).run()
        assert a.queries_run == b.queries_run
        assert a.recalls == b.recalls


class TestChurnySession:
    def test_departures_and_returns(self):
        sim = SessionSimulator(
            quick_config(
                duration=400.0,
                departure_rate=0.05,
                arrival_rate=0.05,
                query_rate=0.1,
            ),
            hyperm=HyperMConfig(levels_used=2, n_clusters=3),
            rng=3,
        )
        outcome = sim.run()
        assert outcome.departures > 0
        # Returned peers republish and serve queries again.
        if outcome.arrivals:
            assert outcome.mean_recall > 0.2

    def test_no_churn_session(self):
        sim = SessionSimulator(
            quick_config(departure_rate=0.0, arrival_rate=0.0),
            hyperm=HyperMConfig(levels_used=2, n_clusters=3),
            rng=4,
        )
        outcome = sim.run()
        assert outcome.departures == 0
        assert outcome.arrivals == 0
        assert outcome.queries_run > 0
