"""Peak-RSS plumbing: injectable reader, report surface, schema check."""

from __future__ import annotations

import pytest

from repro.obs import peak_rss_bytes, peak_rss_mb, rss_snapshot
from repro.obs.schema import check_report


class TestReaders:
    def test_injected_reader_is_authoritative(self):
        assert peak_rss_bytes(lambda: 3 * 1024 * 1024) == 3 * 1024 * 1024
        assert peak_rss_mb(lambda: 3 * 1024 * 1024) == 3.0

    def test_default_reader_reports_something_plausible(self):
        peak = peak_rss_bytes()
        # A running CPython interpreter pins at least a few MiB and —
        # on any test machine — well under a TiB.
        assert 1024 * 1024 < peak < 2**40

    def test_snapshot_shape(self):
        snap = rss_snapshot(lambda: 1536 * 1024)
        assert snap == {
            "peak_rss_bytes": 1536 * 1024, "peak_rss_mb": 1.5
        }

    def test_peak_is_monotone_under_the_default_reader(self):
        first = peak_rss_bytes()
        second = peak_rss_bytes()
        assert second >= first


@pytest.fixture(scope="module")
def report():
    from repro.evaluation.report import run_report

    return run_report(
        n_peers=5, items_per_peer=20, dimensionality=16,
        n_queries=2, seed=0,
    )


class TestReportSurface:
    def test_report_carries_resources(self, report):
        from repro.evaluation.report import render_markdown

        assert report["resources"]["peak_rss_bytes"] > 0
        assert "peak RSS (MiB)" in render_markdown(report)

    def test_schema_accepts_valid_resources(self, report):
        assert not [
            p for p in check_report(report) if "resources" in p
        ]

    @pytest.mark.parametrize(
        "resources,expected",
        [
            ([1, 2], "not an object"),
            ({}, "peak_rss_bytes"),
            ({"peak_rss_bytes": "big"}, "peak_rss_bytes"),
        ],
    )
    def test_schema_rejects_malformed_resources(
        self, report, resources, expected
    ):
        mutated = dict(report)
        mutated["resources"] = resources
        problems = check_report(mutated)
        assert any(
            "resources" in p and expected in p for p in problems
        )
