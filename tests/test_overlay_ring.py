"""Tests for the Z-order ring overlay (the second substrate)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.ring import RingNetwork, covering_intervals, morton_key


class TestMortonKey:
    def test_in_unit_interval(self, rng):
        for __ in range(50):
            p = rng.random(3)
            key = morton_key(p, 8)
            assert 0.0 <= key < 1.0

    def test_identity_in_one_dim(self):
        for v in (0.0, 0.25, 0.5, 0.99):
            assert abs(morton_key(np.array([v]), 16) - v) < 2**-16 + 1e-12

    def test_locality_same_cell(self):
        a = morton_key(np.array([0.1001, 0.2001]), 8)
        b = morton_key(np.array([0.1002, 0.2002]), 8)
        assert abs(a - b) < 2**-10

    def test_distinct_cells_distinct_keys(self):
        a = morton_key(np.array([0.1, 0.1]), 8)
        b = morton_key(np.array([0.9, 0.9]), 8)
        assert a != b

    def test_boundary_clipping(self):
        assert 0.0 <= morton_key(np.array([1.0, 1.0]), 8) < 1.0


class TestCoveringIntervals:
    @given(seed=st.integers(0, 500))
    @settings(max_examples=20)
    def test_box_points_are_covered(self, seed):
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(1, 4))
        lows = rng.random(dim) * 0.5
        highs = lows + rng.random(dim) * 0.4
        highs = np.minimum(highs, 1.0)
        bits = 6
        intervals = covering_intervals(lows, highs, bits)
        for __ in range(30):
            p = lows + rng.random(dim) * (highs - lows)
            key = morton_key(p, bits)
            assert any(lo <= key < hi + 1e-12 for lo, hi in intervals), (
                p, key, intervals,
            )

    def test_full_cube_is_single_interval(self):
        intervals = covering_intervals(np.zeros(2), np.ones(2), 6)
        assert intervals == [(0.0, 1.0)]

    def test_intervals_sorted_and_disjoint(self):
        lows = np.array([0.2, 0.3])
        highs = np.array([0.7, 0.8])
        intervals = covering_intervals(lows, highs, 6)
        for (lo1, hi1), (lo2, hi2) in zip(intervals, intervals[1:]):
            assert hi1 < lo2


class TestRingNetwork:
    def test_grow_and_positions_sorted(self):
        ring = RingNetwork(2, rng=0)
        ring.grow(20)
        assert len(ring) == 20
        assert ring._positions == sorted(ring._positions)

    def test_point_roundtrip(self):
        ring = RingNetwork(2, rng=1)
        ids = ring.grow(15)
        ring.insert(ids[0], [0.3, 0.7], "payload")
        receipt = ring.lookup(ids[9], [0.3, 0.7])
        assert [e.value for e in receipt.entries] == ["payload"]

    def test_routing_hops_logarithmic(self):
        ring = RingNetwork(1, rng=2)
        ids = ring.grow(64)
        rng = np.random.default_rng(3)
        hops = []
        for __ in range(30):
            receipt = ring.lookup(int(rng.choice(ids)), rng.random(1))
            hops.append(receipt.routing_hops)
        assert np.mean(hops) <= 12  # ~2*log2(64)

    def test_range_completeness(self):
        ring = RingNetwork(2, rng=4)
        ids = ring.grow(20)
        rng = np.random.default_rng(5)
        points = rng.random((60, 2))
        for i, p in enumerate(points):
            ring.insert(ids[i % 20], p, i)
        for __ in range(8):
            center = rng.random(2)
            radius = rng.uniform(0.05, 0.3)
            receipt = ring.range_query(ids[0], center, radius)
            got = sorted(
                e.value for e in receipt.entries if isinstance(e.value, int)
            )
            want = sorted(
                i
                for i, p in enumerate(points)
                if np.linalg.norm(p - center) <= radius + 1e-12
            )
            assert got == want

    def test_sphere_replication_found_from_afar(self):
        ring = RingNetwork(2, rng=6)
        ids = ring.grow(15)
        ring.insert(ids[0], [0.5, 0.5], "sphere", radius=0.2)
        # Query near the sphere's edge, not its centre.
        receipt = ring.range_query(ids[3], np.array([0.68, 0.5]), 0.05)
        assert any(e.value == "sphere" for e in receipt.entries)

    def test_loads(self):
        ring = RingNetwork(1, rng=7)
        ids = ring.grow(5)
        ring.insert(ids[0], [0.5], "a")
        assert sum(ring.loads().values()) >= 1

    def test_empty_network_query_raises(self):
        ring = RingNetwork(2, rng=8)
        from repro.exceptions import EmptyNetworkError

        with pytest.raises(EmptyNetworkError):
            ring._sphere_interval_nodes(np.array([0.5, 0.5]), 0.1)
