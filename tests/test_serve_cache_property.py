"""Property: generation-keyed caching never serves a stale candidate set.

Hypothesis interleaves store mutations (post-publish inserts +
``publish_delta``, summary withdrawal, republish) with cached batched
queries on a small fresh network per example, and pins the serving
tier's safety contract:

* no ``StaleCandidateError`` ever escapes the engine (staleness is
  handled by eviction + recompute, never by an error storm);
* every batched result equals the sequential
  :meth:`HyperMNetwork.range_query` answer at 1e-9 — *after any prefix
  of mutations*, i.e. the cache never silently serves yesterday's
  candidates;
* mutations actually invalidate: re-running a cached query after a
  delta round evicts the stale entries (observed via the stale counter).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import HyperMConfig
from repro.evaluation.workloads import build_markov_network, sample_queries
from repro.serve import RangeRequest, ServeConfig, ServeEngine

N_PEERS = 6
N_QUERIES = 4
EPSILON = 0.3


def _build():
    workload, __ = build_markov_network(
        n_peers=N_PEERS,
        items_per_peer=20,
        dimensionality=16,
        config=HyperMConfig(levels_used=2, n_clusters=3),
        rng=77,
        publish=True,
    )
    return workload


def _assert_parity(engine, network, queries):
    requests = [
        RangeRequest(query=q, epsilon=EPSILON, max_peers=3) for q in queries
    ]
    batched = engine.execute_batch(requests)
    for request, served in zip(requests, batched):
        sequential = network.range_query(
            request.query, request.epsilon, max_peers=request.max_peers
        )
        assert sorted(i.item_id for i in served.items) == sorted(
            i.item_id for i in sequential.items
        )
        assert set(served.peer_scores) == set(sequential.peer_scores)
        for peer, score in served.peer_scores.items():
            assert score == pytest.approx(
                sequential.peer_scores[peer], abs=1e-9
            )


operation = st.one_of(
    st.tuples(st.just("query"), st.integers(0, N_QUERIES - 1)),
    st.tuples(st.just("delta"), st.integers(0, N_PEERS - 1)),
    st.tuples(st.just("withdraw"), st.integers(0, N_PEERS - 1)),
    st.tuples(st.just("republish"), st.integers(0, N_PEERS - 1)),
)


@settings(max_examples=15, deadline=None)
@given(
    ops=st.lists(operation, min_size=2, max_size=8),
    seed=st.integers(0, 100),
)
def test_interleaved_mutations_never_serve_stale_candidates(ops, seed):
    workload = _build()
    network = workload.network
    queries = sample_queries(
        workload.data, N_QUERIES, rng=np.random.default_rng(seed)
    )
    engine = ServeEngine(network, ServeConfig(cache_candidates=64))
    rng = np.random.default_rng(seed + 1)
    next_item_id = 1_000_000
    peer_ids = list(network.peers)

    _assert_parity(engine, network, queries)  # warm the caches
    for op, index in ops:
        if op == "query":
            _assert_parity(engine, network, [queries[index]])
        elif op == "delta":
            peer = network.peers[peer_ids[index]]
            fresh = rng.random((3, network.dimensionality))
            peer.add_items(
                fresh, np.arange(next_item_id, next_item_id + 3)
            )
            next_item_id += 3
            network.publish_delta(peer_ids[index])
        elif op == "withdraw":
            network.withdraw_summaries(peer_ids[index])
        elif op == "republish":
            network.republish_peer(peer_ids[index])
        # Whatever just happened, the very next batch must agree with
        # the sequential plane on the network's *current* state.
        _assert_parity(engine, network, queries[:2])

    snap = engine.snapshot()["candidate_cache"]
    assert snap["hits"] + snap["misses"] > 0


def test_delta_round_evicts_stale_entries():
    """A publish_delta between two identical queries forces stale drops."""
    workload = _build()
    network = workload.network
    queries = sample_queries(
        workload.data, 2, rng=np.random.default_rng(5)
    )
    engine = ServeEngine(network, ServeConfig(mine_queries=False))
    _assert_parity(engine, network, queries)
    assert engine.snapshot()["candidate_cache"]["stale"] == 0

    peer_id = next(iter(network.peers))
    network.peers[peer_id].add_items(
        np.random.default_rng(6).random((4, network.dimensionality)),
        np.arange(2_000_000, 2_000_004),
    )
    network.publish_delta(peer_id)

    _assert_parity(engine, network, queries)
    assert engine.snapshot()["candidate_cache"]["stale"] > 0


def test_withdrawn_peer_disappears_from_batched_results():
    workload = _build()
    network = workload.network
    queries = sample_queries(
        workload.data, 3, rng=np.random.default_rng(9)
    )
    engine = ServeEngine(network)
    _assert_parity(engine, network, queries)
    victim = next(iter(network.peers))
    network.withdraw_summaries(victim)
    requests = [RangeRequest(query=q, epsilon=EPSILON) for q in queries]
    for result in engine.execute_batch(requests):
        assert victim not in result.peer_scores
    _assert_parity(engine, network, queries)
