"""End-to-end determinism and bit-identity guarantees of repro.faults.

Two pinned contracts:

* **Replay** — the same build seed plus the same :class:`FaultPlan`
  reproduces identical fault traces, identical query results, and
  identical injector counters (the fault stream is a private seeded RNG
  drawn in strict call order).
* **Zero-fault identity** — installing ``FaultPlan()`` (the null plan)
  yields results byte-identical to running with no plan at all: same
  items, same accounting, same fabric metrics, same obs metrics.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.scoring import partial_confidence
from repro.exceptions import ValidationError
from repro.faults import FaultPlan, crash_peer
from repro.obs.registry import metrics_scope


def _build(seed=0, n_peers=5, dim=16):
    config = HyperMConfig(levels_used=3, n_clusters=3)
    net = HyperMNetwork(dim, config, rng=seed)
    data_rng = np.random.default_rng(seed + 1)
    for __ in range(n_peers):
        net.add_peer(data_rng.random((20, dim)))
    net.publish_all()
    return net


def _run_queries(network, n=4, seed=0, max_peers=3):
    rng = np.random.default_rng(seed)
    out = []
    for __ in range(n):
        result = network.range_query(
            rng.random(network.dimensionality), 0.6, max_peers=max_peers
        )
        out.append(
            (
                sorted(result.item_ids),
                result.peers_contacted,
                sorted(result.failed_contacts),
                result.index_hops,
                result.retrieval_messages,
                round(result.confidence, 12),
                result.degraded,
            )
        )
    return out


class TestReplayDeterminism:
    @settings(max_examples=8, deadline=None)
    @given(
        fault_seed=st.integers(0, 1000),
        loss=st.sampled_from([0.05, 0.2, 0.5]),
    )
    def test_same_plan_identical_queries_and_trace(self, fault_seed, loss):
        runs = []
        for __ in range(2):
            network = _build(seed=3)
            injector = network.fabric.install_faults(
                FaultPlan(loss=loss, seed=fault_seed)
            )
            results = _run_queries(network, seed=fault_seed)
            runs.append(
                (results, injector.trace_list(), injector.snapshot())
            )
        assert runs[0] == runs[1]

    def test_crashes_replay_identically(self):
        runs = []
        for __ in range(2):
            network = _build(seed=5)
            injector = network.fabric.install_faults(
                FaultPlan(loss=0.1, seed=9)
            )
            crash_peer(network, 1)
            crash_peer(network, 3)
            results = _run_queries(network, seed=7, max_peers=4)
            runs.append((results, injector.snapshot()))
        assert runs[0] == runs[1]

    def test_different_fault_seeds_diverge(self):
        traces = []
        for fault_seed in (1, 2):
            network = _build(seed=3)
            injector = network.fabric.install_faults(
                FaultPlan(loss=0.4, seed=fault_seed)
            )
            _run_queries(network, seed=0)
            traces.append(injector.trace_list())
        assert traces[0] != traces[1]


class TestZeroFaultIdentity:
    def _run(self, install_null):
        with metrics_scope() as registry:
            network = _build(seed=11)
            if install_null:
                network.fabric.install_faults(FaultPlan())
            results = _run_queries(network, seed=2)
            knn = network.knn_query(
                np.random.default_rng(4).random(network.dimensionality), 5
            )
            fabric = network.fabric.snapshot()
            fabric.pop("faults", None)
            return (
                results,
                sorted(knn.item_ids),
                knn.retrieval_messages,
                fabric,
                registry.snapshot(),
            )

    def test_null_plan_bit_identical(self):
        baseline = self._run(install_null=False)
        nulled = self._run(install_null=True)
        assert baseline == nulled

    def test_null_plan_draws_no_randomness(self):
        network = _build(seed=11)
        injector = network.fabric.install_faults(FaultPlan())
        state_before = injector._rng.bit_generator.state
        _run_queries(network, seed=2)
        assert injector._rng.bit_generator.state == state_before
        assert injector.counters == {}
        assert injector.trace_list() == []


class TestDegradationContract:
    def test_confidence_formula(self):
        assert partial_confidence(3, 3, 4, 4) == 1.0
        assert partial_confidence(2, 4, 3, 3) == pytest.approx(0.5)
        assert partial_confidence(3, 3, 1, 4) == pytest.approx(0.25)
        assert partial_confidence(0, 0, 0, 0) == 1.0  # nothing attempted

    def test_answered_cannot_exceed_attempted(self):
        with pytest.raises(ValidationError):
            partial_confidence(4, 3, 1, 1)
        with pytest.raises(ValidationError):
            partial_confidence(1, 1, 5, 3)

    def test_query_degrades_instead_of_raising(self):
        network = _build(seed=5)
        network.fabric.install_faults(FaultPlan(loss=0.1, seed=9))
        crash_peer(network, 1)
        crash_peer(network, 3)
        rng = np.random.default_rng(0)
        for __ in range(5):
            result = network.range_query(
                rng.random(network.dimensionality), 0.7, max_peers=4
            )
            assert 0.0 <= result.confidence <= 1.0
            if result.failed_contacts:
                assert result.degraded
                assert result.confidence < 1.0

    def test_clean_queries_report_full_confidence(self):
        network = _build(seed=5)
        result = network.range_query(
            np.random.default_rng(1).random(network.dimensionality), 0.6
        )
        assert result.confidence == 1.0
        assert not result.degraded
