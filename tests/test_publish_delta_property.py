"""Property test: interleaved mutations + delta rounds ≡ full publication.

For any random interleaving of item adds, item removals, and delta
publish rounds, the delta-maintained network must be indistinguishable
from from-scratch publication:

* **Score parity (1e-9)** — the overlay state left behind by the delta
  pipeline must produce exactly the Eq. 1 index-phase scores that
  publishing the peer's current summary from scratch would produce. This
  is the tentpole's core guarantee: patches, retractions, and revivals
  leave the index bit-equivalent to a clean publication of the same
  summaries.
* **No false dismissal (Theorem 4.1)** — unbudgeted range queries on the
  delta-maintained network return exactly the ground-truth result set,
  just like a freshly clustered ``publish_all`` twin does.
* **Store integrity** — every level store still passes its structural
  invariants after arbitrary churn.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.queries import index_phase

DIM = 8
CONFIG = dict(levels_used=2, n_clusters=3)
N_PEERS = 3
ITEMS_PER_PEER = 12


def _build_network(rng_seed: int) -> HyperMNetwork:
    net = HyperMNetwork(DIM, HyperMConfig(**CONFIG), rng=rng_seed)
    data_rng = np.random.default_rng(rng_seed)
    for p in range(N_PEERS):
        net.add_peer(
            data_rng.random((ITEMS_PER_PEER, DIM)),
            np.arange(p * ITEMS_PER_PEER, (p + 1) * ITEMS_PER_PEER),
        )
    net.publish_all()
    return net


def _apply_ops(net: HyperMNetwork, ops, op_rng) -> None:
    """Drive the network through an interleaved mutation schedule."""
    next_id = 10_000
    for kind, peer_id in ops:
        peer = net.peers[peer_id]
        if kind == "add":
            count = int(op_rng.integers(1, 6))
            peer.add_items(
                op_rng.random((count, DIM)),
                np.arange(next_id, next_id + count),
            )
            next_id += count
        elif kind == "remove":
            if peer.n_items < 2:
                continue
            count = int(op_rng.integers(1, min(4, peer.n_items - 1) + 1))
            victims = op_rng.choice(
                peer.item_ids, size=count, replace=False
            )
            peer.remove_items(victims)
        else:  # "delta"
            net.republish_peer(peer_id)


def _scores(net: HyperMNetwork, query: np.ndarray, radius: float) -> dict:
    aggregated, __ = index_phase(
        net, query, radius, origin_peer=next(iter(net.peers))
    )
    return aggregated


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "delta"]),
        st.integers(min_value=0, max_value=N_PEERS - 1),
    ),
    min_size=2,
    max_size=8,
)


@settings(max_examples=15, deadline=None)
@given(ops=ops_strategy, seed=st.integers(min_value=0, max_value=2**16))
def test_delta_rounds_match_full_publication(ops, seed):
    op_rng = np.random.default_rng(seed)
    net = _build_network(rng_seed=3)
    _apply_ops(net, ops, op_rng)
    # Flush every pending mutation so all three networks agree on state.
    for peer_id in sorted(net.peers):
        net.republish_peer(peer_id)

    # Twin R: the *same* summaries published from scratch. Its overlay
    # state is what the delta pipeline claims to have maintained.
    rebuilt = HyperMNetwork(DIM, HyperMConfig(**CONFIG), rng=4)
    for peer_id in sorted(net.peers):
        peer = net.peers[peer_id]
        rebuilt.add_peer(peer.data.copy(), peer.item_ids.copy())
    for peer_id in sorted(net.peers):
        rebuilt.publish_peer(peer_id, summary=net.peers[peer_id].summary)

    # Twin B: a genuinely fresh clustering of the final corpus.
    scratch = HyperMNetwork(DIM, HyperMConfig(**CONFIG), rng=5)
    for peer_id in sorted(net.peers):
        peer = net.peers[peer_id]
        scratch.add_peer(peer.data.copy(), peer.item_ids.copy())
    scratch.publish_all()

    truth_index = CentralizedIndex.from_network(net)
    query_rng = np.random.default_rng(seed + 1)
    picks = query_rng.integers(0, truth_index.data.shape[0], size=3)
    for query in truth_index.data[picks]:
        distances = np.linalg.norm(truth_index.data - query, axis=1)
        radius = float(np.quantile(distances, 0.2))
        truth = set(truth_index.range_search(query, radius))

        # 1e-9 score parity: delta-maintained overlays == published-
        # from-scratch overlays over the identical summaries.
        ours = _scores(net, query, radius)
        reference = _scores(rebuilt, query, radius)
        assert set(ours) == set(reference)
        for peer_id, expected in reference.items():
            assert abs(ours[peer_id] - expected) <= 1e-9 * max(
                1.0, abs(expected)
            ), f"peer {peer_id} score drifted"

        # Theorem 4.1: neither the delta-maintained network nor the
        # freshly clustered twin may dismiss a true match.
        got = net.range_query(query, radius, max_peers=None)
        assert set(got.item_ids) == truth
        fresh = scratch.range_query(query, radius, max_peers=None)
        assert set(fresh.item_ids) == truth

    for overlay in net.overlays.values():
        overlay.level_store.verify_integrity()
