"""Tests for the multi-seed repetition helper."""

import numpy as np
import pytest

from repro.evaluation.repeats import repeat_experiment
from repro.exceptions import ValidationError


def fake_runner(*, rng, offset=0.0):
    generator = np.random.default_rng(rng)
    return {"a": float(generator.random()) + offset, "b": 2.0}


class TestRepeatExperiment:
    def test_aggregates(self):
        out = repeat_experiment(
            fake_runner,
            seeds=[1, 2, 3, 4],
            extract=lambda result: result,
        )
        assert set(out) == {"a", "b"}
        assert out["a"].n == 4
        assert 0.0 < out["a"].mean < 1.0
        assert out["b"].std == 0.0
        assert out["b"].mean == 2.0

    def test_kwargs_forwarded(self):
        out = repeat_experiment(
            fake_runner,
            seeds=[1, 2],
            extract=lambda result: result,
            offset=10.0,
        )
        assert out["a"].mean > 10.0

    def test_needs_two_seeds(self):
        with pytest.raises(ValidationError):
            repeat_experiment(
                fake_runner, seeds=[1], extract=lambda r: r
            )

    def test_inconsistent_keys_rejected(self):
        calls = {"n": 0}

        def flaky(*, rng):
            calls["n"] += 1
            return {"a": 1.0} if calls["n"] == 1 else {"z": 1.0}

        with pytest.raises(ValidationError, match="inconsistent"):
            repeat_experiment(flaky, seeds=[1, 2], extract=lambda r: r)

    def test_formatted(self):
        out = repeat_experiment(
            fake_runner, seeds=[1, 2, 3], extract=lambda r: r
        )
        assert "±" in out["a"].formatted()

    @pytest.mark.slow
    def test_real_runner_fig8b(self):
        from repro.evaluation.dissemination import run_fig8b

        out = repeat_experiment(
            run_fig8b,
            seeds=[1, 2, 3],
            extract=lambda rows: {
                "hyperm_final": rows[-1].hyperm_hops_per_item,
                "can_final": rows[-1].can_hops_per_item,
            },
            n_peers=8,
            items_per_peer_sweep=(40, 200),
            baseline_sample=30,
        )
        # The headline shape holds in the mean across seeds.
        assert out["hyperm_final"].mean < out["can_final"].mean
