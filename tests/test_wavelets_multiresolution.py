"""Tests for the {A, D_0, …} multiresolution subspace view."""

import numpy as np
import pytest

from repro.exceptions import DimensionalityError
from repro.wavelets.multiresolution import (
    Level,
    decompose,
    decompose_dataset,
    levels_for,
    publication_levels,
)


class TestLevel:
    def test_ordering_coarse_to_fine(self):
        levels = sorted([Level.detail(2), Level.approximation(), Level.detail(0)])
        assert [str(l) for l in levels] == ["A", "D0", "D2"]

    def test_dimensionality(self):
        assert Level.approximation().dimensionality == 1
        assert Level.detail(0).dimensionality == 1
        assert Level.detail(3).dimensionality == 8

    def test_str(self):
        assert str(Level.approximation()) == "A"
        assert str(Level.detail(5)) == "D5"

    def test_negative_detail_rejected(self):
        with pytest.raises(DimensionalityError):
            Level.detail(-1)

    def test_levels_usable_as_dict_keys(self):
        d = {Level.approximation(): 1, Level.detail(0): 2}
        assert d[Level.approximation()] == 1


class TestLevelsFor:
    def test_structure_for_16(self):
        levels = levels_for(16)
        assert [str(l) for l in levels] == ["A", "D0", "D1", "D2", "D3"]
        assert [l.dimensionality for l in levels] == [1, 1, 2, 4, 8]

    def test_dim_one(self):
        assert [str(l) for l in levels_for(1)] == ["A"]

    def test_dims_sum_to_original(self):
        for d in (2, 8, 64, 512):
            assert sum(l.dimensionality for l in levels_for(d)) == d

    def test_rejects_non_power(self):
        with pytest.raises(DimensionalityError):
            levels_for(12)


class TestPublicationLevels:
    def test_paper_operating_point(self):
        levels = publication_levels(512, 4)
        assert [str(l) for l in levels] == ["A", "D0", "D1", "D2"]

    def test_bounds(self):
        with pytest.raises(DimensionalityError):
            publication_levels(16, 0)
        with pytest.raises(DimensionalityError):
            publication_levels(16, 6)

    def test_all_levels(self):
        assert len(publication_levels(16, 5)) == 5


class TestDecompose:
    def test_subspace_shapes(self, rng):
        x = rng.random(32)
        decomposition = decompose(x)
        for level in decomposition.levels:
            assert decomposition[level].shape == (level.dimensionality,)

    def test_reconstruct_roundtrip(self, rng):
        x = rng.random(64)
        assert np.allclose(decompose(x).reconstruct(), x, atol=1e-12)

    def test_dataset_roundtrip(self, rng):
        x = rng.random((10, 16))
        decomposition = decompose_dataset(x)
        assert np.allclose(decomposition.reconstruct(), x, atol=1e-12)

    def test_dataset_shapes(self, rng):
        x = rng.random((7, 16))
        decomposition = decompose_dataset(x)
        assert decomposition[Level.detail(3)].shape == (7, 8)
        assert decomposition[Level.approximation()].shape == (7, 1)

    def test_levels_sorted(self, rng):
        decomposition = decompose(rng.random(8))
        names = [str(l) for l in decomposition.levels]
        assert names == ["A", "D0", "D1", "D2"]

    def test_vector_requires_1d(self, rng):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            decompose(rng.random((2, 8)))
