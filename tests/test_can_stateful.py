"""Stateful property testing of the CAN overlay.

Hypothesis drives random interleavings of joins, departures, point and
sphere insertions, and range queries, checking after every step that the
overlay's global invariants hold:

* zones tile the key space exactly (volume 1, unique owner per point);
* neighbour tables are symmetric and geometrically correct;
* every inserted object remains retrievable by a range query;
* routing reaches the true owner from any start node.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)

from repro.overlay.can import CANNetwork
from repro.overlay.can.routing import route_to_owner

coords = st.floats(min_value=0.0, max_value=1.0)


class CANMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.can = CANNetwork(2, rng=1234)
        self.can.grow(2)
        self.inserted: dict[int, np.ndarray] = {}
        self.next_value = 0

    # -- actions ---------------------------------------------------------

    @rule(x=coords, y=coords)
    def join(self, x, y):
        self.can.join(np.array([x, y]))

    @precondition(lambda self: len(self.can) > 2)
    @rule(pick=st.integers(min_value=0, max_value=10**6))
    def leave(self, pick):
        ids = self.can.node_ids
        self.can.leave(ids[pick % len(ids)])

    @rule(x=coords, y=coords, pick=st.integers(min_value=0, max_value=10**6))
    def insert_point(self, x, y, pick):
        ids = self.can.node_ids
        origin = ids[pick % len(ids)]
        value = self.next_value
        self.next_value += 1
        key = np.array([x, y])
        self.can.insert(origin, key, value)
        self.inserted[value] = key

    @rule(
        x=coords,
        y=coords,
        radius=st.floats(min_value=0.01, max_value=0.3),
        pick=st.integers(min_value=0, max_value=10**6),
    )
    def insert_sphere(self, x, y, radius, pick):
        ids = self.can.node_ids
        origin = ids[pick % len(ids)]
        value = self.next_value
        self.next_value += 1
        key = np.array([x, y])
        self.can.insert(origin, key, value, radius=radius)
        self.inserted[value] = key

    @rule(
        x=coords,
        y=coords,
        radius=st.floats(min_value=0.05, max_value=0.5),
    )
    def range_query_is_complete(self, x, y, radius):
        center = np.array([x, y])
        receipt = self.can.range_query(self.can.node_ids[0], center, radius)
        got = {e.value for e in receipt.entries}
        for value, key in self.inserted.items():
            if float(np.linalg.norm(key - center)) <= radius - 1e-9:
                assert value in got, (value, key, center, radius)

    # -- invariants --------------------------------------------------------

    @invariant()
    def zones_tile(self):
        assert abs(self.can.total_zone_volume() - 1.0) < 1e-9

    @invariant()
    def unique_owner(self):
        rng = np.random.default_rng(len(self.can))
        for __ in range(3):
            p = rng.random(2)
            owners = [
                nid
                for nid, zones in self.can.all_zones().items()
                if any(z.contains(p) for z in zones)
            ]
            assert len(owners) == 1, (p, owners)

    @invariant()
    def neighbors_symmetric(self):
        for nid in self.can.node_ids:
            node = self.can.node(nid)
            for neighbor_id in node.neighbors:
                assert nid in self.can.node(neighbor_id).neighbors

    @invariant()
    def routing_reaches_owner(self):
        rng = np.random.default_rng(7 + len(self.can))
        p = rng.random(2)
        expected = self.can.owner_of(p)
        start = self.can.node_ids[0]
        owner, __ = route_to_owner(self.can, start, p)
        assert owner == expected


TestCANStateful = CANMachine.TestCase
TestCANStateful.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None
)
