"""Round-trip and determinism guarantees of the span-trace export plane.

The JSONL files :meth:`TraceRecorder.write_jsonl` emits are CI
artefacts: they must load back into exactly the records that were
dumped, validate against :mod:`repro.obs.schema`, and — under an
injectable clock — come out byte-identical run after run.
"""

from __future__ import annotations

import json

from repro.obs.schema import check_trace_record
from repro.obs.trace import TraceRecorder, read_jsonl


class _Ticker:
    """Deterministic injectable clock: 0.0, 1.0, 2.0, ..."""

    def __init__(self) -> None:
        self.now = -1.0

    def __call__(self) -> float:
        self.now += 1.0
        return self.now


def _record_workload(rec: TraceRecorder) -> None:
    with rec.span("publish", peer=1):
        with rec.span("dwt"):
            rec.add(bytes=128)
        for level in range(2):
            with rec.span("can_insert", level=level):
                rec.add(hops=3, messages=3)
    with rec.span("query", origin=5):
        rec.annotate(items=7)


class TestRoundTrip:
    def test_dumps_matches_file_content(self, tmp_path):
        rec = TraceRecorder(clock=_Ticker())
        _record_workload(rec)
        path = tmp_path / "trace.jsonl"
        assert rec.write_jsonl(path) == len(rec.spans)
        assert path.read_text() == rec.dumps_jsonl() + "\n"

    def test_read_jsonl_identity(self, tmp_path):
        rec = TraceRecorder(clock=_Ticker())
        _record_workload(rec)
        path = tmp_path / "trace.jsonl"
        rec.write_jsonl(path)
        assert read_jsonl(path) == rec.to_records()

    def test_records_validate_against_schema(self):
        rec = TraceRecorder(clock=_Ticker())
        _record_workload(rec)
        for record in rec.to_records():
            assert check_trace_record(record) == []

    def test_empty_recorder_round_trips(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        assert TraceRecorder(clock=_Ticker()).write_jsonl(path) == 0
        assert path.read_text() == ""
        assert read_jsonl(path) == []

    def test_counts_and_attrs_survive_the_trip(self, tmp_path):
        rec = TraceRecorder(clock=_Ticker())
        _record_workload(rec)
        path = tmp_path / "trace.jsonl"
        rec.write_jsonl(path)
        by_name = {r["span"]: r for r in read_jsonl(path)}
        # add() accumulates onto every open ancestor.
        assert by_name["publish"]["counts"]["bytes"] == 128
        assert by_name["publish"]["counts"]["hops"] == 6
        assert by_name["dwt"]["counts"] == {"bytes": 128}
        assert by_name["query"]["attrs"] == {"origin": 5, "items": 7}


class TestDeterminism:
    def test_injected_clock_gives_byte_stable_output(self):
        def run() -> str:
            rec = TraceRecorder(clock=_Ticker())
            _record_workload(rec)
            return rec.dumps_jsonl()

        assert run() == run()

    def test_lines_are_key_sorted_json(self):
        rec = TraceRecorder(clock=_Ticker())
        _record_workload(rec)
        for line in rec.dumps_jsonl().splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)


class TestFlameDepthClamp:
    def _deep_recorder(self) -> TraceRecorder:
        rec = TraceRecorder(clock=_Ticker())
        with rec.span("alpha"):
            with rec.span("bravo"):
                with rec.span("charlie"):
                    with rec.span("delta"):
                        pass
        return rec

    def test_unclamped_shows_all_levels(self):
        flame = self._deep_recorder().flame()
        for name in ("alpha", "bravo", "charlie", "delta"):
            assert name in flame

    def test_max_depth_clamps_deep_spans(self):
        # max_depth counts levels kept: 2 keeps depths 0 and 1.
        flame = self._deep_recorder().flame(max_depth=2)
        assert "alpha" in flame and "bravo" in flame
        assert "charlie" not in flame and "delta" not in flame

    def test_depth_one_keeps_roots_only(self):
        flame = self._deep_recorder().flame(max_depth=1)
        assert "alpha" in flame
        assert "bravo" not in flame
