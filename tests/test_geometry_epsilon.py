"""Tests for the Eq. 8 inversion (expected items -> query radius)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.clustering.spheres import ClusterSphere
from repro.exceptions import ValidationError
from repro.geometry.epsilon import estimate_epsilon_for_k, expected_items


def make_spheres(rng, n, d=4):
    return [
        ClusterSphere(
            centroid=rng.random(d),
            radius=float(rng.uniform(0.05, 0.3)),
            items=int(rng.integers(5, 50)),
        )
        for __ in range(n)
    ]


class TestExpectedItems:
    def test_empty(self):
        assert expected_items(1.0, [], np.zeros(3)) == 0.0

    def test_full_coverage_counts_everything(self, rng):
        spheres = make_spheres(rng, 5)
        total = sum(s.items for s in spheres)
        assert np.isclose(
            expected_items(10.0, spheres, np.zeros(4)), total
        )

    def test_zero_radius_counts_containing_singletons(self):
        q = np.array([0.5, 0.5])
        spheres = [
            ClusterSphere(q.copy(), 0.0, 7),
            ClusterSphere(np.array([0.9, 0.9]), 0.0, 3),
        ]
        assert expected_items(0.0, spheres, q) == 7.0

    def test_monotone_in_epsilon(self, rng):
        spheres = make_spheres(rng, 8)
        q = rng.random(4)
        values = [
            expected_items(e, spheres, q) for e in np.linspace(0, 3, 30)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))

    def test_concentric_analytic(self):
        sphere = ClusterSphere(np.zeros(4), 1.0, 100)
        # eps = (1/2)^(1/4) covers exactly half the ball's volume.
        eps = 0.5 ** 0.25
        assert np.isclose(expected_items(eps, [sphere], np.zeros(4)), 50.0)


class TestEstimateEpsilon:
    @pytest.mark.parametrize("method", ["brentq", "newton"])
    def test_inverts_expected_items(self, rng, method):
        spheres = make_spheres(rng, 10)
        q = rng.random(4)
        total = sum(s.items for s in spheres)
        for k in (1.0, total / 4, total / 2):
            eps = estimate_epsilon_for_k(k, spheres, q, method=method)
            assert np.isclose(
                expected_items(eps, spheres, q), k, rtol=1e-3, atol=1e-3
            )

    def test_k_exceeding_total_returns_cover_radius(self, rng):
        spheres = make_spheres(rng, 4)
        q = rng.random(4)
        total = sum(s.items for s in spheres)
        eps = estimate_epsilon_for_k(total * 2, spheres, q)
        cover = max(s.distance_to_center(q) + s.radius for s in spheres)
        assert np.isclose(eps, cover)
        assert np.isclose(expected_items(eps, spheres, q), total)

    def test_no_spheres(self):
        assert estimate_epsilon_for_k(5, [], np.zeros(3)) == 0.0

    def test_k_zero(self, rng):
        assert estimate_epsilon_for_k(0, make_spheres(rng, 3), np.zeros(4)) == 0.0

    def test_negative_k_rejected(self, rng):
        with pytest.raises(ValidationError):
            estimate_epsilon_for_k(-1, make_spheres(rng, 3), np.zeros(4))

    def test_unknown_method_rejected(self, rng):
        with pytest.raises(ValidationError):
            estimate_epsilon_for_k(
                1, make_spheres(rng, 3), np.zeros(4), method="bogus"
            )

    def test_query_on_singleton_centroid(self):
        """Exact-coincidence singleton: k already satisfied at eps = 0."""
        q = np.array([0.3, 0.7])
        spheres = [ClusterSphere(q.copy(), 0.0, 10)]
        assert estimate_epsilon_for_k(5, spheres, q) == 0.0

    @given(k_frac=st.floats(min_value=0.05, max_value=0.95))
    def test_brentq_and_newton_agree(self, k_frac):
        rng = np.random.default_rng(0)
        spheres = make_spheres(rng, 6)
        q = rng.random(4)
        k = k_frac * sum(s.items for s in spheres)
        a = estimate_epsilon_for_k(k, spheres, q, method="brentq")
        b = estimate_epsilon_for_k(k, spheres, q, method="newton")
        assert np.isclose(a, b, rtol=1e-3, atol=1e-4)

    def test_monotone_in_k(self, rng):
        spheres = make_spheres(rng, 8)
        q = rng.random(4)
        total = sum(s.items for s in spheres)
        ks = np.linspace(1, total - 1, 10)
        eps = [estimate_epsilon_for_k(k, spheres, q) for k in ks]
        assert all(b >= a - 1e-9 for a, b in zip(eps, eps[1:]))
