"""The Overlay contract, verified uniformly across all five substrates.

Hyper-M only relies on the :class:`repro.overlay.base.Overlay` interface;
these parametrised tests pin the behaviour every substrate must share, so
a new overlay implementation can be validated by adding one line.
``TestCapabilityPlanes`` pins which backends expose which plane, and
``TestDeltaPublishParity`` pins the maintenance plane's core guarantee —
delta repair leaves the index bit-equivalent to from-scratch publication
— on *every* registered backend.
"""

import numpy as np
import pytest

from repro.net.messages import MessageKind
from repro.overlay import (
    BatonNetwork,
    CANNetwork,
    KademliaNetwork,
    RingNetwork,
    VBITree,
)
from repro.overlay.base import Overlay

FACTORIES = [
    CANNetwork, BatonNetwork, VBITree, RingNetwork, KademliaNetwork,
]


@pytest.fixture(params=FACTORIES, ids=lambda f: f.__name__)
def overlay(request):
    net = request.param(2, rng=42)
    net.grow(12)
    return net


class TestContract:
    def test_is_overlay(self, overlay):
        assert isinstance(overlay, Overlay)
        assert overlay.dimensionality == 2
        assert len(overlay.node_ids) == 12

    def test_insert_returns_receipt(self, overlay):
        receipt = overlay.insert(overlay.node_ids[0], [0.4, 0.6], "v")
        assert receipt.owner in overlay.node_ids
        assert receipt.routing_hops >= 0
        assert receipt.total_hops == receipt.routing_hops + receipt.replicas

    def test_lookup_roundtrip(self, overlay):
        overlay.insert(overlay.node_ids[1], [0.25, 0.75], "payload")
        receipt = overlay.lookup(overlay.node_ids[5], [0.25, 0.75])
        assert "payload" in [e.value for e in receipt.entries]

    def test_lookup_from_every_node(self, overlay):
        overlay.insert(overlay.node_ids[0], [0.5, 0.5], "x")
        for start in overlay.node_ids:
            receipt = overlay.lookup(start, [0.5, 0.5])
            assert any(e.value == "x" for e in receipt.entries), start

    def test_range_query_completeness(self, overlay, rng):
        points = rng.random((50, 2))
        for i, p in enumerate(points):
            overlay.insert(overlay.node_ids[i % 12], p, i)
        center = np.array([0.5, 0.5])
        radius = 0.3
        receipt = overlay.range_query(overlay.node_ids[0], center, radius)
        got = {e.value for e in receipt.entries if isinstance(e.value, int)}
        want = {
            i
            for i, p in enumerate(points)
            if np.linalg.norm(p - center) <= radius - 1e-9
        }
        assert want <= got

    def test_sphere_entries_found_at_offset_queries(self, overlay):
        overlay.insert(
            overlay.node_ids[2], [0.5, 0.5], "sphere", radius=0.2
        )
        # Query near the sphere's edge, away from its centre.
        receipt = overlay.range_query(
            overlay.node_ids[7], np.array([0.66, 0.5]), 0.05
        )
        assert any(e.value == "sphere" for e in receipt.entries)

    def test_zero_radius_range_query(self, overlay):
        overlay.insert(overlay.node_ids[3], [0.3, 0.3], "pt")
        receipt = overlay.range_query(
            overlay.node_ids[0], np.array([0.3, 0.3]), 0.0
        )
        assert any(e.value == "pt" for e in receipt.entries)

    def test_traffic_is_charged(self, overlay):
        before = overlay.fabric.metrics.total_messages
        overlay.insert(overlay.node_ids[0], [0.9, 0.1], "x")
        overlay.range_query(overlay.node_ids[0], np.array([0.2, 0.2]), 0.2)
        assert overlay.fabric.metrics.total_messages >= before

    def test_insert_operation_metrics(self, overlay):
        overlay.insert(overlay.node_ids[0], [0.7, 0.7], "x")
        ops = overlay.fabric.metrics.kind(MessageKind.INSERT).per_op_hops
        assert ops.count >= 1

    def test_loads_accounting(self, overlay, rng):
        for i in range(20):
            overlay.insert(overlay.node_ids[i % 12], rng.random(2), i)
        loads = overlay.loads()
        assert set(loads) == set(overlay.node_ids)
        assert sum(loads.values()) >= 20

    def test_leave_preserves_entries(self, overlay, rng):
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            overlay.insert(overlay.node_ids[i % 12], p, i)
        for __ in range(4):
            overlay.leave(overlay.node_ids[-1])
        held = set()
        for nid in overlay.node_ids:
            for entry in overlay.node(nid).store:
                if isinstance(entry.value, int):
                    held.add(entry.value)
        assert held == set(range(30))

    def test_join_after_leave(self, overlay):
        overlay.leave(overlay.node_ids[0])
        new_id = overlay.join()
        assert new_id in overlay.node_ids
        receipt = overlay.insert(new_id, [0.1, 0.9], "post-churn")
        assert receipt.owner in overlay.node_ids

    def test_out_of_cube_insert_rejected(self, overlay):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            overlay.insert(overlay.node_ids[0], [1.4, 0.2], "x")


class TestCapabilityPlanes:
    """Which backend exposes which plane — and metered degradation."""

    def test_every_backend_has_a_maintenance_plane(self, overlay):
        from repro.overlay.base import MaintenancePlane, maintenance_plane

        assert isinstance(overlay, MaintenancePlane)
        assert maintenance_plane(overlay) is overlay

    def test_adaptation_plane_presence(self, overlay):
        from repro.overlay.base import AdaptationPlane, adaptation_plane

        expected = isinstance(overlay, (CANNetwork, KademliaNetwork))
        assert isinstance(overlay, AdaptationPlane) is expected
        plane = adaptation_plane(overlay)
        assert (plane is overlay) is expected

    def test_missing_plane_is_metered(self):
        from repro.obs import registry as obs_registry
        from repro.obs.registry import metrics_scope
        from repro.overlay.base import adaptation_plane

        ring = RingNetwork(2, rng=0)
        ring.grow(4)
        with metrics_scope():
            assert adaptation_plane(ring) is None
            metrics = obs_registry.metrics()
            assert metrics.counter(
                "overlay.plane.adaptation.missing"
            ).value == 1
            assert metrics.counter(
                "overlay.plane.adaptation.missing.RingNetwork"
            ).value == 1

    def test_load_snapshot_covers_every_node(self, overlay):
        from repro.overlay.base import adaptation_plane

        plane = adaptation_plane(overlay)
        if plane is None:
            pytest.skip("backend has no adaptation plane")
        snapshot = plane.load_snapshot()
        assert set(snapshot) == set(overlay.node_ids)


# -- delta-publish parity on every registered backend -------------------------

PARITY_DIM = 8
PARITY_CONFIG = dict(levels_used=2, n_clusters=3)
PARITY_PEERS = 3
PARITY_ITEMS = 12


def _parity_network(factory, rng_seed: int):
    from repro.core.network import HyperMConfig, HyperMNetwork

    net = HyperMNetwork(
        PARITY_DIM, HyperMConfig(**PARITY_CONFIG),
        rng=rng_seed, overlay_factory=factory,
    )
    data_rng = np.random.default_rng(rng_seed)
    for p in range(PARITY_PEERS):
        net.add_peer(
            data_rng.random((PARITY_ITEMS, PARITY_DIM)),
            np.arange(p * PARITY_ITEMS, (p + 1) * PARITY_ITEMS),
        )
    net.publish_all()
    return net


@pytest.mark.parametrize(
    "factory", FACTORIES, ids=lambda f: f.__name__
)
class TestDeltaPublishParity:
    """Delta repair ≡ from-scratch publication, on every backend.

    The maintenance plane's in-place patches/retractions must leave the
    overlay state bit-equivalent (1e-9 Eq. 1 score parity) to publishing
    the same summaries from scratch, and Theorem 4.1's no-false-dismissal
    guarantee must survive the churn.
    """

    def test_delta_matches_scratch_publication(self, factory):
        from repro.core.baselines import CentralizedIndex
        from repro.core.network import HyperMConfig, HyperMNetwork
        from repro.core.queries import index_phase

        net = _parity_network(factory, rng_seed=3)
        mut_rng = np.random.default_rng(11)
        next_id = 10_000
        for peer_id in sorted(net.peers):
            peer = net.peers[peer_id]
            count = int(mut_rng.integers(2, 5))
            peer.add_items(
                mut_rng.random((count, PARITY_DIM)),
                np.arange(next_id, next_id + count),
            )
            next_id += count
            victims = mut_rng.choice(
                peer.item_ids[:PARITY_ITEMS], size=2, replace=False
            )
            peer.remove_items(victims)
            net.republish_peer(peer_id)

        # Twin: the *same* summaries published from scratch on the same
        # backend. Its overlay state is what delta repair claims to have
        # maintained in place.
        rebuilt = HyperMNetwork(
            PARITY_DIM, HyperMConfig(**PARITY_CONFIG),
            rng=4, overlay_factory=factory,
        )
        for peer_id in sorted(net.peers):
            peer = net.peers[peer_id]
            rebuilt.add_peer(peer.data.copy(), peer.item_ids.copy())
        for peer_id in sorted(net.peers):
            rebuilt.publish_peer(
                peer_id, summary=net.peers[peer_id].summary
            )

        truth_index = CentralizedIndex.from_network(net)
        query_rng = np.random.default_rng(17)
        picks = query_rng.integers(0, truth_index.data.shape[0], size=3)
        origin = next(iter(net.peers))
        for query in truth_index.data[picks]:
            distances = np.linalg.norm(truth_index.data - query, axis=1)
            radius = float(np.quantile(distances, 0.2))

            ours, __ = index_phase(net, query, radius, origin_peer=origin)
            reference, __ = index_phase(
                rebuilt, query, radius, origin_peer=origin
            )
            assert set(ours) == set(reference)
            for peer_id, expected in reference.items():
                assert abs(ours[peer_id] - expected) <= 1e-9 * max(
                    1.0, abs(expected)
                ), f"peer {peer_id} score drifted on {factory.__name__}"

            truth = set(truth_index.range_search(query, radius))
            got = net.range_query(query, radius, max_peers=None)
            assert set(got.item_ids) == truth

        for overlay in net.overlays.values():
            overlay.level_store.verify_integrity()
