"""The Overlay contract, verified uniformly across all four substrates.

Hyper-M only relies on the :class:`repro.overlay.base.Overlay` interface;
these parametrised tests pin the behaviour every substrate must share, so
a new overlay implementation can be validated by adding one line.
"""

import numpy as np
import pytest

from repro.net.messages import MessageKind
from repro.overlay import BatonNetwork, CANNetwork, RingNetwork, VBITree
from repro.overlay.base import Overlay

FACTORIES = [CANNetwork, BatonNetwork, VBITree, RingNetwork]


@pytest.fixture(params=FACTORIES, ids=lambda f: f.__name__)
def overlay(request):
    net = request.param(2, rng=42)
    net.grow(12)
    return net


class TestContract:
    def test_is_overlay(self, overlay):
        assert isinstance(overlay, Overlay)
        assert overlay.dimensionality == 2
        assert len(overlay.node_ids) == 12

    def test_insert_returns_receipt(self, overlay):
        receipt = overlay.insert(overlay.node_ids[0], [0.4, 0.6], "v")
        assert receipt.owner in overlay.node_ids
        assert receipt.routing_hops >= 0
        assert receipt.total_hops == receipt.routing_hops + receipt.replicas

    def test_lookup_roundtrip(self, overlay):
        overlay.insert(overlay.node_ids[1], [0.25, 0.75], "payload")
        receipt = overlay.lookup(overlay.node_ids[5], [0.25, 0.75])
        assert "payload" in [e.value for e in receipt.entries]

    def test_lookup_from_every_node(self, overlay):
        overlay.insert(overlay.node_ids[0], [0.5, 0.5], "x")
        for start in overlay.node_ids:
            receipt = overlay.lookup(start, [0.5, 0.5])
            assert any(e.value == "x" for e in receipt.entries), start

    def test_range_query_completeness(self, overlay, rng):
        points = rng.random((50, 2))
        for i, p in enumerate(points):
            overlay.insert(overlay.node_ids[i % 12], p, i)
        center = np.array([0.5, 0.5])
        radius = 0.3
        receipt = overlay.range_query(overlay.node_ids[0], center, radius)
        got = {e.value for e in receipt.entries if isinstance(e.value, int)}
        want = {
            i
            for i, p in enumerate(points)
            if np.linalg.norm(p - center) <= radius - 1e-9
        }
        assert want <= got

    def test_sphere_entries_found_at_offset_queries(self, overlay):
        overlay.insert(
            overlay.node_ids[2], [0.5, 0.5], "sphere", radius=0.2
        )
        # Query near the sphere's edge, away from its centre.
        receipt = overlay.range_query(
            overlay.node_ids[7], np.array([0.66, 0.5]), 0.05
        )
        assert any(e.value == "sphere" for e in receipt.entries)

    def test_zero_radius_range_query(self, overlay):
        overlay.insert(overlay.node_ids[3], [0.3, 0.3], "pt")
        receipt = overlay.range_query(
            overlay.node_ids[0], np.array([0.3, 0.3]), 0.0
        )
        assert any(e.value == "pt" for e in receipt.entries)

    def test_traffic_is_charged(self, overlay):
        before = overlay.fabric.metrics.total_messages
        overlay.insert(overlay.node_ids[0], [0.9, 0.1], "x")
        overlay.range_query(overlay.node_ids[0], np.array([0.2, 0.2]), 0.2)
        assert overlay.fabric.metrics.total_messages >= before

    def test_insert_operation_metrics(self, overlay):
        overlay.insert(overlay.node_ids[0], [0.7, 0.7], "x")
        ops = overlay.fabric.metrics.kind(MessageKind.INSERT).per_op_hops
        assert ops.count >= 1

    def test_loads_accounting(self, overlay, rng):
        for i in range(20):
            overlay.insert(overlay.node_ids[i % 12], rng.random(2), i)
        loads = overlay.loads()
        assert set(loads) == set(overlay.node_ids)
        assert sum(loads.values()) >= 20

    def test_leave_preserves_entries(self, overlay, rng):
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            overlay.insert(overlay.node_ids[i % 12], p, i)
        for __ in range(4):
            overlay.leave(overlay.node_ids[-1])
        held = set()
        for nid in overlay.node_ids:
            for entry in overlay.node(nid).store:
                if isinstance(entry.value, int):
                    held.add(entry.value)
        assert held == set(range(30))

    def test_join_after_leave(self, overlay):
        overlay.leave(overlay.node_ids[0])
        new_id = overlay.join()
        assert new_id in overlay.node_ids
        receipt = overlay.insert(new_id, [0.1, 0.9], "post-churn")
        assert receipt.owner in overlay.node_ids

    def test_out_of_cube_insert_rejected(self, overlay):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            overlay.insert(overlay.node_ids[0], [1.4, 0.2], "x")
