"""Tests for item-level conveniences and charged withdrawal."""

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import ValidationError


@pytest.fixture
def network(rng):
    net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=3), rng=0)
    for p in range(5):
        net.add_peer(rng.random((20, 16)), np.arange(p * 20, (p + 1) * 20))
    net.publish_all()
    return net


class TestLocateItem:
    def test_finds_holder(self, network):
        peer, vector = network.locate_item(47)
        assert peer.peer_id == 2  # items 40-59
        assert 47 in peer.item_ids
        assert np.array_equal(
            vector, peer.data[list(peer.item_ids).index(47)]
        )

    def test_unknown_item(self, network):
        with pytest.raises(ValidationError):
            network.locate_item(9999)


class TestFindSimilar:
    def test_excludes_the_item_itself(self, network):
        result = network.find_similar(10, k=5)
        assert 10 not in result.item_ids
        assert len(result.items) >= 1

    def test_origin_is_the_holder(self, network):
        result = network.find_similar(85, k=3)
        # The holder answers for itself without a retrieval round trip.
        assert isinstance(result.peers_contacted, list)

    def test_exact_mode_passthrough(self, network):
        result = network.find_similar(25, k=4, exact=True)
        assert 25 not in result.item_ids
        assert len(result.items) == 4


class TestChargedWithdrawal:
    def test_charge_adds_traffic(self, network):
        before = network.fabric.metrics.total_hops
        removed = network.withdraw_summaries(1, charge=True)
        after = network.fabric.metrics.total_hops
        assert removed > 0
        assert after > before

    def test_uncharged_is_free(self, network):
        before = network.fabric.metrics.total_hops
        network.withdraw_summaries(1)
        assert network.fabric.metrics.total_hops == before

    def test_full_republish_charges_withdrawal(self, network, rng):
        network.peers[3].add_items(rng.random((5, 16)), np.arange(900, 905))
        before = network.fabric.metrics.total_hops
        report = network.republish_peer(3, full=True)
        delta = network.fabric.metrics.total_hops - before
        # Withdrawal traffic + fresh publication traffic both appear.
        assert delta > report.total_hops

    def test_delta_republish_skips_withdrawal(self, network, rng):
        network.peers[3].add_items(rng.random((5, 16)), np.arange(900, 905))
        before = network.fabric.metrics.total_hops
        report = network.republish_peer(3)
        delta = network.fabric.metrics.total_hops - before
        # The delta round's traffic is exactly what the report accounts:
        # no withdrawal pass precedes it.
        assert delta == report.total_hops
