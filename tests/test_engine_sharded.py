"""The sharded engine: registry, shm lifecycle, and serial parity.

The contract under test is the one the scale harness leans on: the
sharded engine is an *execution strategy*, never a different answer.
Masks and Eq. 1 scores computed on worker processes over shared-memory
columns must match the inline serial kernels at 1e-9 (they are the same
kernels — ``repro.engine.base.store_mask`` / ``gather_block`` — so the
tests mostly guard the transport: manifests, generations, barriers).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.scoring import level_scores
from repro.engine import (
    EngineConfig,
    SerialEngine,
    ShardedEngine,
    active_engine_config,
    create_engine,
    engine_names,
    engine_scope,
    gather_block,
    resolve_engine,
    store_mask,
)
from repro.exceptions import StaleCandidateError, ValidationError
from repro.index import LevelStore


def _populated_store(n=80, dim=3, seed=0):
    rng = np.random.default_rng(seed)
    store = LevelStore(dim)
    store.bulk_add(
        rng.random((n, dim)), 0.05 + 0.1 * rng.random(n),
        peer_ids=np.arange(n, dtype=np.int64) % 7,
    )
    return store


@pytest.fixture
def sharded():
    engine = ShardedEngine(EngineConfig(engine="sharded", workers=2))
    yield engine
    engine.close()


class TestRegistry:
    def test_registered_names(self):
        assert engine_names() == ["serial", "sharded"]

    def test_resolve_known(self):
        assert resolve_engine("serial") is SerialEngine
        assert resolve_engine("sharded") is ShardedEngine

    def test_resolve_unknown_lists_known(self):
        with pytest.raises(ValidationError, match="serial, sharded"):
            resolve_engine("gpu")

    def test_create_engine_defaults_to_serial(self):
        engine = create_engine()
        assert isinstance(engine, SerialEngine)
        assert not engine.parallel

    def test_scope_installs_and_restores(self):
        assert active_engine_config() is None
        config = EngineConfig(engine="sharded", workers=3)
        with engine_scope(config):
            assert active_engine_config() is config
        assert active_engine_config() is None

    def test_scope_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with engine_scope(EngineConfig()):
                raise RuntimeError("boom")
        assert active_engine_config() is None

    def test_config_validation(self):
        with pytest.raises(ValidationError, match="workers"):
            EngineConfig(workers=0)
        with pytest.raises(ValidationError, match="shard_by"):
            EngineConfig(shard_by="random")

    def test_network_adopts_ambient_engine(self):
        with engine_scope(EngineConfig(engine="sharded", workers=2)):
            network = HyperMNetwork(8, HyperMConfig(levels_used=2))
        try:
            assert network.engine.name == "sharded"
        finally:
            network.close()


class TestShardedParity:
    def _tasks(self, stores, n_queries=6, seed=3):
        rng = np.random.default_rng(seed)
        tasks = []
        for q in range(n_queries):
            key = q % len(stores)
            dim = stores[key].dimensionality
            tasks.append((key, rng.random(dim), 0.2 + 0.3 * rng.random()))
        return tasks

    def _register(self, engine, stores):
        for key, store in stores.items():
            engine.register_store(key, store)

    def test_masks_match_inline(self, sharded):
        stores = {0: _populated_store(dim=2), 1: _populated_store(dim=3, seed=5)}
        self._register(sharded, stores)
        tasks = self._tasks(stores)
        masks = sharded.masks(tasks)
        for (key, center, radius), mask in zip(tasks, masks):
            expected = store_mask(stores[key], center, radius)
            np.testing.assert_array_equal(mask, expected)

    def test_scores_match_inline_at_1e9(self, sharded):
        stores = {0: _populated_store(dim=2), 1: _populated_store(dim=3, seed=5)}
        self._register(sharded, stores)
        tasks = self._tasks(stores)
        scored = sharded.score_levels(tasks)
        for (key, center, radius), scores in zip(tasks, scored):
            store = stores[key]
            block = gather_block(store, store_mask(store, center, radius))
            expected = level_scores(block, center, radius)
            assert set(scores) == set(expected)
            for peer, score in expected.items():
                assert scores[peer] == pytest.approx(score, abs=1e-9)

    def test_region_sharding_matches_level_sharding(self):
        stores = {0: _populated_store(n=150, dim=3)}
        by_level = ShardedEngine(EngineConfig(engine="sharded", workers=2))
        by_region = ShardedEngine(
            EngineConfig(engine="sharded", workers=2, shard_by="region")
        )
        try:
            self._register(by_level, stores)
            self._register(by_region, stores)
            tasks = self._tasks(stores)
            for level_mask, region_mask in zip(
                by_level.masks(tasks), by_region.masks(tasks)
            ):
                np.testing.assert_array_equal(level_mask, region_mask)
            for level_scored, region_scored in zip(
                by_level.score_levels(tasks), by_region.score_levels(tasks)
            ):
                assert set(level_scored) == set(region_scored)
                for peer, score in level_scored.items():
                    assert region_scored[peer] == pytest.approx(
                        score, abs=1e-9
                    )
        finally:
            by_level.close()
            by_region.close()

    def test_empty_store_yields_empty_results(self, sharded):
        sharded.register_store(0, LevelStore(2))
        masks = sharded.masks([(0, np.array([0.5, 0.5]), 0.3)])
        assert masks[0].size == 0
        scored = sharded.score_levels([(0, np.array([0.5, 0.5]), 0.3)])
        assert scored[0] == {}


class TestShmLifecycle:
    def test_growth_bumps_shm_epoch_and_reattaches(self, sharded):
        store = _populated_store(n=10, dim=2)
        sharded.register_store(0, store)
        center, radius = np.array([0.5, 0.5]), 0.4
        first = sharded.masks([(0, center, radius)])[0]
        epoch_before = store.shm_epoch
        # Force a reallocation: capacity growth re-creates the shm
        # blocks, so the parent must resend the manifest to workers.
        rng = np.random.default_rng(9)
        store.bulk_add(
            rng.random((200, 2)), np.full(200, 0.05),
            peer_ids=np.arange(200, dtype=np.int64) % 5,
        )
        assert store.shm_epoch > epoch_before
        second = sharded.masks([(0, center, radius)])[0]
        assert second.size == store.n_rows
        expected = store_mask(store, center, radius)
        np.testing.assert_array_equal(second, expected)
        assert first.size < second.size

    def test_stale_generation_is_rejected(self, sharded):
        # Simulate a store mutated between task enqueue and the reply
        # check: the generation observed while building the descriptor
        # differs from the one seen when the reply comes back.
        store = _populated_store(n=20, dim=2)
        sharded.register_store(0, store)
        real_generation = store.generation
        reads = []

        class MutatedMidFlight:
            def __getattr__(self, name):
                return getattr(store, name)

            @property
            def generation(self):
                reads.append(True)
                # First read: descriptor build. Later reads: the
                # post-barrier staleness check, after a "mutation".
                if len(reads) == 1:
                    return real_generation
                return real_generation + 1

        sharded._stores[0] = MutatedMidFlight()
        with pytest.raises(StaleCandidateError, match="generation"):
            sharded.masks([(0, np.array([0.5, 0.5]), 0.3)])

    def test_close_is_idempotent_and_rejects_work(self):
        engine = ShardedEngine(EngineConfig(engine="sharded", workers=2))
        engine.register_store(0, _populated_store(n=10, dim=2))
        engine.close()
        engine.close()
        with pytest.raises(ValidationError, match="closed"):
            engine.masks([(0, np.array([0.5, 0.5]), 0.3)])

    def test_barrier_counts_epochs(self, sharded):
        assert sharded.epoch == 0
        sharded.barrier()
        sharded.barrier()
        assert sharded.epoch == 2

    def test_scheduler_exposes_engine_epoch(self, sharded):
        scheduler = sharded.create_scheduler()
        assert scheduler.epoch == 0
        scheduler.sync_shards()
        assert scheduler.epoch == sharded.epoch == 1
        # The event plane itself is the serial one.
        fired = []
        scheduler.schedule_after(0.5, lambda: fired.append(1))
        scheduler.run()
        assert fired == [1]

    def test_snapshot_shape(self, sharded):
        sharded.register_store(0, _populated_store(n=10, dim=2))
        sharded.masks([(0, np.array([0.5, 0.5]), 0.3)])
        snap = sharded.snapshot()
        assert snap["engine"] == "sharded"
        assert snap["workers"] == 2
        assert snap["shards"] == 1
        assert snap["epochs"] == 1
        assert snap["tasks_dispatched"] >= 1


class TestEndToEndParity:
    """A full Hyper-M network answers identically on both engines."""

    def _run(self, engine_config, seed=11, n_queries=4):
        config = HyperMConfig(levels_used=3, n_clusters=3)
        network = HyperMNetwork(
            16, config, rng=seed, engine_config=engine_config
        )
        try:
            data_rng = np.random.default_rng(seed + 1)
            for __ in range(5):
                network.add_peer(data_rng.random((20, 16)))
            network.publish_all()
            query_rng = np.random.default_rng(seed + 2)
            out = []
            for __ in range(n_queries):
                result = network.range_query(
                    query_rng.random(16), 0.6, max_peers=3
                )
                out.append(
                    (sorted(result.item_ids), dict(result.peer_scores))
                )
            return out
        finally:
            network.close()

    def test_sharded_range_query_matches_serial(self):
        serial = self._run(EngineConfig(engine="serial"))
        sharded = self._run(EngineConfig(engine="sharded", workers=2))
        for (serial_items, serial_scores), (shard_items, shard_scores) in zip(
            serial, sharded
        ):
            # Theorem 4.1 surface: identical retrieved item sets.
            assert serial_items == shard_items
            assert set(serial_scores) == set(shard_scores)
            for peer, score in serial_scores.items():
                assert shard_scores[peer] == pytest.approx(score, abs=1e-9)
