"""Smoke + shape tests for every figure's experiment runner.

Each test runs the runner at miniature scale and asserts the *shape* the
paper reports — who wins, which direction curves move — not absolute
numbers.
"""

import numpy as np
import pytest

from repro.evaluation.dissemination import (
    run_fig8a,
    run_fig8b,
    run_fig8c,
    run_fig9,
)
from repro.evaluation.effectiveness import (
    run_c_knob,
    run_fig10a,
    run_fig10b,
    run_fig10c,
)
from repro.evaluation.quality import normalized_ratios, run_fig11


@pytest.mark.slow
class TestFig8a:
    def test_replication_falls_with_finer_clustering(self):
        rows = run_fig8a(
            n_peers=10, items_per_peer=60, cluster_counts=(2, 10), rng=0
        )
        coarse, fine = rows
        assert fine.replica_hops_per_sphere < coarse.replica_hops_per_sphere
        assert fine.mean_sphere_radius < coarse.mean_sphere_radius
        # Total approaches routing-only cost as clusters shrink.
        assert fine.hops_per_sphere < coarse.hops_per_sphere


@pytest.mark.slow
class TestFig8b:
    def test_hyperm_amortises_with_volume(self):
        rows = run_fig8b(
            n_peers=12, items_per_peer_sweep=(40, 160), rng=1
        )
        assert rows[1].hyperm_hops_per_item < rows[0].hyperm_hops_per_item
        # CAN baselines stay roughly flat.
        assert np.isclose(
            rows[0].can_hops_per_item, rows[1].can_hops_per_item, rtol=0.5
        )

    def test_hyperm_beats_can_at_volume(self):
        rows = run_fig8b(
            n_peers=12, items_per_peer_sweep=(300,), rng=2
        )
        assert rows[0].hyperm_hops_per_item < rows[0].can_hops_per_item


@pytest.mark.slow
class TestFig8c:
    def test_cost_grows_with_levels(self):
        rows, baselines = run_fig8c(
            n_peers=10, items_per_peer=200, levels_sweep=(1, 4), rng=3
        )
        assert rows[0].hyperm_hops_per_item < rows[1].hyperm_hops_per_item
        # Even 4 levels beat per-item CAN at this volume.
        assert rows[1].hyperm_hops_per_item < baselines.can_hops_per_item


@pytest.mark.slow
class TestFig9:
    def test_wavelets_spread_skewed_data(self):
        rows = run_fig9(
            n_peers=12, n_source_items=600, skew_clusters_sweep=(3,),
            levels_sweep=(1, 4), rng=4,
        )
        by_config = {row.configuration: row for row in rows}
        assert by_config["L=4"].gini < by_config["original"].gini
        assert (
            by_config["L=4"].participation
            >= by_config["original"].participation
        )


@pytest.mark.slow
class TestFig10a:
    def test_recall_rises_with_contacts(self):
        out = run_fig10a(
            n_peers=10, n_objects=50, views_per_object=8,
            cluster_counts=(5,), peers_contacted_sweep=(1, 5, 10),
            n_queries=6, rng=5,
        )
        series = out[5]
        assert series[-1].mean >= series[0].mean
        assert series[-1].mean > 0.8  # contacting everyone ≈ full recall


@pytest.mark.slow
class TestFig10b:
    def test_balanced_precision_recall(self):
        rows = run_fig10b(
            n_peers=10, n_objects=50, views_per_object=8,
            cluster_counts=(10,), k_values=(5,), n_queries=6, rng=6,
        )
        row = rows[0]
        assert row.precision_mean > 0.25
        assert row.recall_mean > 0.4


@pytest.mark.slow
class TestCKnob:
    def test_c_trades_precision_for_recall(self):
        rows = run_c_knob(
            n_peers=10, n_objects=50, views_per_object=8,
            c_values=(1.0, 2.0), n_queries=8, rng=7,
        )
        assert rows[1].recall >= rows[0].recall - 0.02
        assert rows[1].precision <= rows[0].precision + 0.02


@pytest.mark.slow
class TestFig10c:
    def test_recall_degrades_with_new_items(self):
        rows = run_fig10c(
            n_peers=12, n_objects=40, views_per_object=15,
            new_fraction_steps=(0.0, 0.45), n_queries=10, max_peers=4,
            rng=8,
        )
        assert rows[1].mean <= rows[0].mean + 0.05


@pytest.mark.slow
class TestWaveletFamilyAblation:
    def test_families_all_show_coarse_advantage(self):
        from repro.evaluation.quality import run_wavelet_family_ablation

        rows = run_wavelet_family_ablation(
            wavelets=("haar", "db2"), n_objects=50, views_per_object=6,
            n_bins=32, n_clusters=6, coarse_levels=3, rng=11,
        )
        baseline = next(r.ratio for r in rows if r.space == "original")
        for family in ("haar", "db2"):
            best = min(r.ratio for r in rows if r.wavelet == family)
            assert best < baseline


@pytest.mark.slow
class TestConstructionComparison:
    def test_hyperm_faster_on_both_schedules(self):
        from repro.evaluation.construction import run_construction_comparison

        comparison = run_construction_comparison(
            n_peers=8, items_per_peer=200, dimensionality=32, rng=12
        )
        assert comparison.parallel_speedup > 1.0
        assert comparison.shared_channel_speedup > 1.0


@pytest.mark.slow
class TestFig11:
    def test_coarse_wavelet_spaces_cluster_better(self):
        rows = run_fig11(
            n_objects=60, views_per_object=8, n_clusters=8, rng=9
        )
        ratios = normalized_ratios(rows)
        # The paper: the first wavelet spaces beat the original space.
        assert min(ratios["A"], ratios["D0"], ratios["D1"]) < 1.0

    def test_row_per_space(self):
        rows = run_fig11(
            n_objects=30, views_per_object=6, n_bins=32, n_clusters=5,
            max_levels=3, rng=10,
        )
        spaces = [row.space for row in rows]
        assert spaces[0] == "original"
        assert "A" in spaces
