"""Tests for the tonal-feature (music) dataset generator."""

import numpy as np
import pytest

from repro.datasets.audio import generate_audio_features
from repro.exceptions import ValidationError


class TestAudioFeatures:
    def test_shape_and_labels(self):
        ds = generate_audio_features(6, 10, 32, rng=0)
        assert ds.data.shape == (60, 32)
        assert ds.n_genres == 6
        assert np.all(np.bincount(ds.labels) == 10)

    def test_unit_cube(self):
        ds = generate_audio_features(4, 8, 64, rng=1)
        assert ds.data.min() >= 0.0
        assert np.isclose(ds.data.max(), 1.0)

    def test_genre_structure(self):
        """Tracks of one genre must be closer than across genres."""
        ds = generate_audio_features(10, 12, 64, rng=2)
        rng = np.random.default_rng(3)
        intra, inter = [], []
        for __ in range(400):
            i, j = rng.integers(0, ds.n_items, size=2)
            if i == j:
                continue
            dist = np.linalg.norm(ds.data[i] - ds.data[j])
            (intra if ds.labels[i] == ds.labels[j] else inter).append(dist)
        assert np.mean(intra) < 0.75 * np.mean(inter)

    def test_reproducible(self):
        a = generate_audio_features(3, 4, 32, rng=7)
        b = generate_audio_features(3, 4, 32, rng=7)
        assert np.array_equal(a.data, b.data)

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            generate_audio_features(0, 5)
        with pytest.raises(Exception):
            generate_audio_features(3, 5, 48)  # not a power of two

    def test_retrieval_pipeline_compatibility(self, rng):
        """Audio features flow through the full Hyper-M pipeline."""
        from repro.core import CentralizedIndex, HyperMConfig, HyperMNetwork
        from repro.datasets.partition import partition_among_peers

        ds = generate_audio_features(20, 10, 32, rng=4)
        parts = partition_among_peers(
            ds.data, 8, clusters_per_peer=4,
            item_ids=np.arange(ds.n_items), rng=5,
        )
        net = HyperMNetwork(
            32, HyperMConfig(levels_used=3, n_clusters=4), rng=6
        )
        for data, ids in parts:
            net.add_peer(data, ids)
        net.publish_all()
        query = ds.data[15]
        truth = CentralizedIndex.from_network(net).range_search(query, 0.1)
        result = net.range_query(query, 0.1)
        assert truth <= result.item_ids
