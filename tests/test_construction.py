"""Tests for the parallel construction-time simulator."""

import numpy as np
import pytest

from repro.core.network import HyperMConfig
from repro.evaluation.construction import (
    ConstructionTimeline,
    RadioModel,
    _simulate_schedules,
    hyperm_construction,
    naive_can_construction,
    run_construction_comparison,
)
from repro.exceptions import ValidationError


class TestRadioModel:
    def test_hop_time(self):
        radio = RadioModel(bandwidth=1000.0, per_hop_latency=0.1)
        assert radio.hop_time(500) == pytest.approx(0.6)

    def test_zero_bytes(self):
        radio = RadioModel(per_hop_latency=0.01)
        assert radio.hop_time(0) == 0.01

    def test_invalid(self):
        with pytest.raises(ValidationError):
            RadioModel(bandwidth=0)


class TestScheduleSimulation:
    def test_parallel_is_slowest_peer(self):
        costs = {0: [1.0, 1.0], 1: [5.0], 2: [0.5, 0.5, 0.5]}
        per_peer, parallel, shared = _simulate_schedules(costs)
        assert parallel == pytest.approx(5.0)
        assert per_peer[0] == pytest.approx(2.0)
        assert per_peer[2] == pytest.approx(1.5)

    def test_shared_channel_is_total_airtime(self):
        costs = {0: [1.0, 1.0], 1: [5.0], 2: [0.5, 0.5, 0.5]}
        __, __p, shared = _simulate_schedules(costs)
        assert shared == pytest.approx(8.5)

    def test_empty(self):
        per_peer, parallel, shared = _simulate_schedules({})
        assert parallel == 0.0
        assert shared == 0.0

    def test_parallel_never_exceeds_shared(self):
        rng = np.random.default_rng(0)
        costs = {
            p: rng.uniform(0.1, 1.0, size=rng.integers(1, 6)).tolist()
            for p in range(5)
        }
        __, parallel, shared = _simulate_schedules(costs)
        assert parallel <= shared + 1e-12


class TestConstructionRuns:
    def test_hyperm_timeline(self):
        timeline = hyperm_construction(
            n_peers=6, items_per_peer=50, dimensionality=16,
            config=HyperMConfig(levels_used=2, n_clusters=3), rng=0,
        )
        assert timeline.items == 300
        assert timeline.parallel_makespan > 0
        assert timeline.parallel_makespan <= timeline.shared_channel_makespan
        assert len(timeline.per_peer_seconds) == 6

    def test_can_timeline_extrapolates(self):
        timeline = naive_can_construction(
            n_peers=6, items_per_peer=50, dimensionality=16,
            sample_per_peer=10, rng=1,
        )
        assert timeline.items == 300
        # Every item carries at least its own airtime on its peer.
        assert timeline.shared_channel_makespan > 0

    def test_comparison_speedups(self):
        comparison = run_construction_comparison(
            n_peers=8, items_per_peer=150, dimensionality=32,
            config=HyperMConfig(levels_used=3, n_clusters=5), rng=2,
        )
        # At 150 items per peer vs 15 spheres, Hyper-M must win on both
        # schedules (the paper's headline claim).
        assert comparison.parallel_speedup > 1.0
        assert comparison.shared_channel_speedup > 1.0
        # Bandwidth effect: bytes per item are far lower for Hyper-M.
        assert (
            comparison.hyperm.bytes_per_item
            < 0.3 * comparison.can.bytes_per_item
        )

    def test_timeline_properties(self):
        timeline = ConstructionTimeline(
            method="x", items=10, total_hops=20, total_bytes=400
        )
        assert timeline.hops_per_item == 2.0
        assert timeline.bytes_per_item == 40.0
