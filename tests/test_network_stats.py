"""Tests for the network diagnostics API."""

import json

import numpy as np

from repro.core.network import HyperMConfig, HyperMNetwork


class TestStats:
    def _network(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=3), rng=0)
        for p in range(4):
            net.add_peer(rng.random((15, 16)), np.arange(p * 15, (p + 1) * 15))
        net.publish_all()
        return net

    def test_structure(self, rng):
        stats = self._network(rng).stats()
        assert stats["peers"] == 4
        assert stats["online_peers"] == 4
        assert stats["total_items"] == 60
        assert set(stats["levels"]) == {"A", "D0", "D1"}
        for level_stats in stats["levels"].values():
            assert level_stats["nodes"] == 4
            assert level_stats["distinct_spheres"] >= 4
            assert level_stats["replication_factor"] >= 1.0
        assert stats["fabric"]["hops"] > 0
        assert stats["fabric"]["energy"] > 0

    def test_json_safe(self, rng):
        json.dumps(self._network(rng).stats())

    def test_reflects_churn(self, rng):
        net = self._network(rng)
        net.remove_peer(2)
        stats = net.stats()
        assert stats["online_peers"] == 3
        assert stats["peers"] == 4

    def test_store_health(self, rng):
        stats = self._network(rng).stats()
        for level_stats in stats["levels"].values():
            store = level_stats["store"]
            assert store["live_rows"] == level_stats["distinct_spheres"]
            assert store["tombstones"] == 0
            assert store["compactions"] == 0
            # Every insert bumps the generation at least once.
            assert store["generation"] >= store["live_rows"]
            assert store["next_entry_id"] >= store["live_rows"]

    def test_withdraw_reflected_in_store_health(self, rng):
        net = self._network(rng)
        before = net.stats()
        net.withdraw_summaries(2)
        after = net.stats()
        for level, level_stats in after["levels"].items():
            store = level_stats["store"]
            prior = before["levels"][level]["store"]
            assert store["live_rows"] < prior["live_rows"]
            # Withdrawn rows become tombstones unless a compaction
            # already swept them.
            assert store["tombstones"] > 0 or store["compactions"] > 0
            assert store["generation"] > prior["generation"]

    def test_replication_factor_counts_memberships(self, rng):
        net = self._network(rng)
        stats = net.stats()
        for level, overlay in net.overlays.items():
            level_stats = stats["levels"][str(level)]
            memberships = sum(overlay.loads().values())
            distinct = overlay.level_store.n_live
            assert level_stats["stored_entries"] == memberships
            assert level_stats["distinct_spheres"] == distinct
            assert level_stats["replication_factor"] == (
                memberships / distinct
            )

    def test_unpublished_network(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        net.add_peer(rng.random((5, 16)))
        stats = net.stats()
        for level_stats in stats["levels"].values():
            assert level_stats["stored_entries"] == 0
            assert level_stats["replication_factor"] == 0.0
