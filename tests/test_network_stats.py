"""Tests for the network diagnostics API."""

import json

import numpy as np

from repro.core.network import HyperMConfig, HyperMNetwork


class TestStats:
    def _network(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=3), rng=0)
        for p in range(4):
            net.add_peer(rng.random((15, 16)), np.arange(p * 15, (p + 1) * 15))
        net.publish_all()
        return net

    def test_structure(self, rng):
        stats = self._network(rng).stats()
        assert stats["peers"] == 4
        assert stats["online_peers"] == 4
        assert stats["total_items"] == 60
        assert set(stats["levels"]) == {"A", "D0", "D1"}
        for level_stats in stats["levels"].values():
            assert level_stats["nodes"] == 4
            assert level_stats["distinct_spheres"] >= 4
            assert level_stats["replication_factor"] >= 1.0
        assert stats["fabric"]["hops"] > 0
        assert stats["fabric"]["energy"] > 0

    def test_json_safe(self, rng):
        json.dumps(self._network(rng).stats())

    def test_reflects_churn(self, rng):
        net = self._network(rng)
        net.remove_peer(2)
        stats = net.stats()
        assert stats["online_peers"] == 3
        assert stats["peers"] == 4

    def test_unpublished_network(self, rng):
        net = HyperMNetwork(16, HyperMConfig(levels_used=2, n_clusters=2), rng=0)
        net.add_peer(rng.random((5, 16)))
        stats = net.stats()
        for level_stats in stats["levels"].values():
            assert level_stats["stored_entries"] == 0
            assert level_stats["replication_factor"] == 0.0
