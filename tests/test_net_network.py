"""Tests for messages, energy, metrics, and the network fabric."""

import pytest

from repro.exceptions import ValidationError
from repro.net.energy import EnergyLedger, EnergyModel
from repro.net.messages import (
    BYTES_PER_COORD,
    HEADER_BYTES,
    MessageKind,
    vector_message_size,
)
from repro.net.metrics import NetworkMetrics
from repro.net.network import Network
from repro.net.node import SimNode


class TestMessageSizes:
    def test_vector_size(self):
        assert vector_message_size(4) == HEADER_BYTES + 4 * BYTES_PER_COORD

    def test_with_scalars(self):
        assert vector_message_size(4, scalars=2) == (
            HEADER_BYTES + 4 * BYTES_PER_COORD + 16
        )

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            vector_message_size(-1)


class TestEnergyModel:
    def test_hop_cost_is_tx_plus_rx(self):
        model = EnergyModel()
        assert model.hop_cost(100) == model.tx_cost(100) + model.rx_cost(100)

    def test_costs_scale_with_bytes(self):
        model = EnergyModel(tx_per_byte=1.0, tx_fixed=10.0)
        assert model.tx_cost(0) == 10.0
        assert model.tx_cost(5) == 15.0

    def test_ledger_accumulates(self):
        ledger = EnergyLedger(model=EnergyModel(
            tx_per_byte=1, rx_per_byte=1, tx_fixed=0, rx_fixed=0))
        ledger.charge_hop(1, 2, 100)
        ledger.charge_hop(2, 3, 50)
        assert ledger.node_energy(1) == 100
        assert ledger.node_energy(2) == 100 + 50
        assert ledger.node_energy(3) == 50
        assert ledger.total == 300

    def test_negative_cost_rejected(self):
        with pytest.raises(ValidationError):
            EnergyModel(tx_per_byte=-1.0)


class TestNetworkMetrics:
    def test_transmit_counting(self):
        metrics = NetworkMetrics()
        metrics.record_transmit(MessageKind.INSERT, 100)
        metrics.record_transmit(MessageKind.INSERT, 50)
        metrics.record_transmit(MessageKind.LOOKUP, 10)
        assert metrics.total_messages == 3
        assert metrics.total_hops == 3
        assert metrics.total_bytes == 160
        assert metrics.kind(MessageKind.INSERT).bytes == 150

    def test_per_operation_stats(self):
        metrics = NetworkMetrics()
        metrics.finish_operation(MessageKind.INSERT, 3)
        metrics.finish_operation(MessageKind.INSERT, 5)
        assert metrics.kind(MessageKind.INSERT).per_op_hops.mean == 4.0

    def test_snapshot(self):
        metrics = NetworkMetrics()
        metrics.record_transmit(MessageKind.JOIN, 10)
        snap = metrics.snapshot()
        assert snap["join"]["messages"] == 1


class TestNetworkFabric:
    def test_register_and_transmit(self):
        net = Network()
        net.register(SimNode(1))
        net.register(SimNode(2))
        msg = net.transmit(1, 2, MessageKind.DATA, 64)
        assert msg.hops == 1
        assert net.metrics.total_bytes == 64
        assert net.energy.total > 0

    def test_duplicate_registration_rejected(self):
        net = Network()
        net.register(SimNode(1))
        with pytest.raises(ValidationError):
            net.register(SimNode(1))

    def test_unknown_nodes_rejected(self):
        net = Network()
        net.register(SimNode(1))
        with pytest.raises(ValidationError):
            net.transmit(1, 99, MessageKind.DATA, 10)
        with pytest.raises(ValidationError):
            net.transmit(99, 1, MessageKind.DATA, 10)

    def test_scheduled_delivery(self):
        net = Network(hop_latency=0.5)
        net.register(SimNode(1))
        net.register(SimNode(2))
        delivered = []
        net.transmit(1, 2, MessageKind.DATA, 8, deliver=delivered.append)
        assert delivered == []
        net.scheduler.run()
        assert len(delivered) == 1
        assert net.scheduler.now == 0.5

    def test_energy_split_between_endpoints(self):
        net = Network()
        net.register(SimNode(1))
        net.register(SimNode(2))
        net.transmit(1, 2, MessageKind.DATA, 100)
        tx = net.energy.model.tx_cost(100)
        rx = net.energy.model.rx_cost(100)
        assert net.energy.node_energy(1) == tx
        assert net.energy.node_energy(2) == rx

    def test_negative_size_rejected(self):
        net = Network()
        net.register(SimNode(1))
        net.register(SimNode(2))
        with pytest.raises(ValidationError):
            net.transmit(1, 2, MessageKind.DATA, -5)
