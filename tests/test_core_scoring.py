"""Tests for Eq. 1 peer scoring and cross-level aggregation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import ClusterRecord
from repro.core.scoring import (
    aggregate_scores,
    level_scores,
    level_scores_scalar,
    rank_peers,
)
from repro.exceptions import ValidationError
from repro.geometry.intersection import INTERSECTION_SLACK
from repro.overlay.base import StoredEntry


def entry(peer_id, key, radius, items):
    return StoredEntry(
        key=np.asarray(key, dtype=float),
        radius=radius,
        value=ClusterRecord(peer_id=peer_id, items=items, level_name="A"),
    )


class TestLevelScores:
    def test_full_containment_counts_all_items(self):
        entries = [entry(1, [0.5, 0.5], 0.1, 40)]
        scores = level_scores(entries, np.array([0.5, 0.5]), 0.5)
        assert np.isclose(scores[1], 40.0)

    def test_disjoint_contributes_nothing(self):
        entries = [entry(1, [0.1, 0.1], 0.05, 40)]
        scores = level_scores(entries, np.array([0.9, 0.9]), 0.05)
        assert 1 not in scores

    def test_partial_overlap_scales_items(self):
        entries = [entry(1, [0.5, 0.5], 0.2, 100)]
        scores = level_scores(entries, np.array([0.6, 0.5]), 0.2)
        assert 0 < scores[1] < 100

    def test_multiple_clusters_same_peer_sum(self):
        entries = [
            entry(2, [0.5, 0.5], 0.1, 10),
            entry(2, [0.52, 0.5], 0.1, 20),
        ]
        scores = level_scores(entries, np.array([0.5, 0.5]), 0.5)
        assert np.isclose(scores[2], 30.0)

    def test_tangential_touch_gets_floor_not_zero(self):
        """A touching cluster must keep a non-zero score, or min-aggregation
        would violate the no-false-dismissal guarantee."""
        entries = [entry(3, [0.5, 0.5], 0.1, 10)]
        # Tangent: distance = radius + query radius exactly.
        scores = level_scores(entries, np.array([0.7, 0.5]), 0.1)
        assert scores.get(3, 0.0) > 0.0


def _random_entries(rng, n, d, n_peers):
    return [
        entry(
            int(rng.integers(n_peers)),
            rng.uniform(0.0, 1.0, d),
            float(rng.uniform(0.0, 0.4)),
            int(rng.integers(1, 50)),
        )
        for _ in range(n)
    ]


class TestBatchScalarParity:
    """The batched level_scores must reproduce the scalar oracle exactly:
    same peers, scores to 1e-9 relative, identical filter accounting."""

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31 - 1),
        eps=st.floats(min_value=0.0, max_value=1.0),
        d=st.sampled_from([1, 2, 4, 8, 16]),
    )
    def test_random_workloads(self, seed, eps, d):
        rng = np.random.default_rng(seed)
        entries = _random_entries(rng, 40, d, n_peers=6)
        center = rng.uniform(0.0, 1.0, d)
        batch_stats: dict = {}
        scalar_stats: dict = {}
        batch = level_scores(entries, center, eps, stats=batch_stats)
        scalar = level_scores_scalar(entries, center, eps, stats=scalar_stats)
        assert batch_stats == scalar_stats
        assert set(batch) == set(scalar)
        for peer, score in scalar.items():
            assert batch[peer] == pytest.approx(score, rel=1e-9, abs=1e-300)

    def test_high_dimensional_parity(self):
        rng = np.random.default_rng(3)
        d = 512
        entries = _random_entries(rng, 60, d, n_peers=8)
        center = rng.uniform(0.0, 1.0, d)
        batch_stats: dict = {}
        scalar_stats: dict = {}
        batch = level_scores(entries, center, 2.0, stats=batch_stats)
        scalar = level_scores_scalar(entries, center, 2.0, stats=scalar_stats)
        assert batch_stats == scalar_stats
        assert set(batch) == set(scalar)
        for peer, score in scalar.items():
            assert batch[peer] == pytest.approx(score, rel=1e-9, abs=1e-300)

    def test_empty_entries(self):
        batch_stats: dict = {}
        scalar_stats: dict = {}
        assert level_scores([], np.zeros(2), 0.5, stats=batch_stats) == {}
        assert level_scores_scalar([], np.zeros(2), 0.5, stats=scalar_stats) == {}
        assert batch_stats == scalar_stats == {
            "candidates": 0, "pruned": 0, "surviving": 0
        }

    def test_all_pruned_stats(self):
        entries = [entry(1, [0.9, 0.9], 0.01, 5), entry(2, [0.8, 0.8], 0.01, 5)]
        center = np.array([0.1, 0.1])
        batch_stats: dict = {}
        scalar_stats: dict = {}
        assert level_scores(entries, center, 0.05, stats=batch_stats) == {}
        assert level_scores_scalar(entries, center, 0.05, stats=scalar_stats) == {}
        assert batch_stats == scalar_stats
        assert batch_stats["pruned"] == 2
        assert batch_stats["surviving"] == 0

    def test_boundary_band_agreement(self):
        """Entries placed just inside and just outside the shared slack
        band must be classified identically by both paths: inside the band
        survives (floored score), outside is pruned."""
        r, eps = 0.1, 0.2
        inside_b = r + eps + 0.4 * INTERSECTION_SLACK
        outside_b = r + eps + 2.0 * INTERSECTION_SLACK
        center = np.zeros(2)
        for b, survives in ((inside_b, True), (outside_b, False)):
            entries = [entry(7, [b, 0.0], r, 10)]
            batch_stats: dict = {}
            scalar_stats: dict = {}
            batch = level_scores(entries, center, eps, stats=batch_stats)
            scalar = level_scores_scalar(entries, center, eps, stats=scalar_stats)
            assert batch_stats == scalar_stats
            assert (7 in batch) is survives
            assert (7 in scalar) is survives
            if survives:
                assert batch[7] > 0.0
                assert batch[7] == pytest.approx(scalar[7], rel=1e-9)


class TestAggregation:
    def test_min_policy(self):
        per_level = {"A": {1: 5.0, 2: 9.0}, "D0": {1: 3.0, 2: 12.0}}
        out = aggregate_scores(per_level, policy="min")
        assert out == {1: 3.0, 2: 9.0}

    def test_min_prunes_missing_peers(self):
        per_level = {"A": {1: 5.0, 2: 9.0}, "D0": {2: 1.0}}
        out = aggregate_scores(per_level, policy="min")
        assert 1 not in out

    def test_sum_policy(self):
        per_level = {"A": {1: 5.0}, "D0": {1: 3.0}}
        assert aggregate_scores(per_level, policy="sum") == {1: 8.0}

    def test_product_policy(self):
        per_level = {"A": {1: 5.0}, "D0": {1: 3.0}}
        assert aggregate_scores(per_level, policy="product") == {1: 15.0}

    def test_empty(self):
        assert aggregate_scores({}) == {}

    def test_unknown_policy(self):
        with pytest.raises(ValidationError):
            aggregate_scores({"A": {1: 1.0}}, policy="median")


class TestRankPeers:
    def test_descending(self):
        ranked = rank_peers({1: 2.0, 2: 9.0, 3: 5.0})
        assert [p for p, __ in ranked] == [2, 3, 1]

    def test_deterministic_ties(self):
        ranked = rank_peers({5: 1.0, 2: 1.0, 9: 1.0})
        assert [p for p, __ in ranked] == [2, 5, 9]
