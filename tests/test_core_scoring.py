"""Tests for Eq. 1 peer scoring and cross-level aggregation."""

import numpy as np
import pytest

from repro.core.results import ClusterRecord
from repro.core.scoring import aggregate_scores, level_scores, rank_peers
from repro.exceptions import ValidationError
from repro.overlay.base import StoredEntry


def entry(peer_id, key, radius, items):
    return StoredEntry(
        key=np.asarray(key, dtype=float),
        radius=radius,
        value=ClusterRecord(peer_id=peer_id, items=items, level_name="A"),
    )


class TestLevelScores:
    def test_full_containment_counts_all_items(self):
        entries = [entry(1, [0.5, 0.5], 0.1, 40)]
        scores = level_scores(entries, np.array([0.5, 0.5]), 0.5)
        assert np.isclose(scores[1], 40.0)

    def test_disjoint_contributes_nothing(self):
        entries = [entry(1, [0.1, 0.1], 0.05, 40)]
        scores = level_scores(entries, np.array([0.9, 0.9]), 0.05)
        assert 1 not in scores

    def test_partial_overlap_scales_items(self):
        entries = [entry(1, [0.5, 0.5], 0.2, 100)]
        scores = level_scores(entries, np.array([0.6, 0.5]), 0.2)
        assert 0 < scores[1] < 100

    def test_multiple_clusters_same_peer_sum(self):
        entries = [
            entry(2, [0.5, 0.5], 0.1, 10),
            entry(2, [0.52, 0.5], 0.1, 20),
        ]
        scores = level_scores(entries, np.array([0.5, 0.5]), 0.5)
        assert np.isclose(scores[2], 30.0)

    def test_tangential_touch_gets_floor_not_zero(self):
        """A touching cluster must keep a non-zero score, or min-aggregation
        would violate the no-false-dismissal guarantee."""
        entries = [entry(3, [0.5, 0.5], 0.1, 10)]
        # Tangent: distance = radius + query radius exactly.
        scores = level_scores(entries, np.array([0.7, 0.5]), 0.1)
        assert scores.get(3, 0.0) > 0.0


class TestAggregation:
    def test_min_policy(self):
        per_level = {"A": {1: 5.0, 2: 9.0}, "D0": {1: 3.0, 2: 12.0}}
        out = aggregate_scores(per_level, policy="min")
        assert out == {1: 3.0, 2: 9.0}

    def test_min_prunes_missing_peers(self):
        per_level = {"A": {1: 5.0, 2: 9.0}, "D0": {2: 1.0}}
        out = aggregate_scores(per_level, policy="min")
        assert 1 not in out

    def test_sum_policy(self):
        per_level = {"A": {1: 5.0}, "D0": {1: 3.0}}
        assert aggregate_scores(per_level, policy="sum") == {1: 8.0}

    def test_product_policy(self):
        per_level = {"A": {1: 5.0}, "D0": {1: 3.0}}
        assert aggregate_scores(per_level, policy="product") == {1: 15.0}

    def test_empty(self):
        assert aggregate_scores({}) == {}

    def test_unknown_policy(self):
        with pytest.raises(ValidationError):
            aggregate_scores({"A": {1: 1.0}}, policy="median")


class TestRankPeers:
    def test_descending(self):
        ranked = rank_peers({1: 2.0, 2: 9.0, 3: 5.0})
        assert [p for p, __ in ranked] == [2, 3, 1]

    def test_deterministic_ties(self):
        ranked = rank_peers({5: 1.0, 2: 1.0, 9: 1.0})
        assert [p for p, __ in ranked] == [2, 5, 9]
