"""Tests for the observability metrics registry."""

import pytest

from repro.exceptions import ValidationError
from repro.net.events import Scheduler
from repro.obs.registry import (
    MetricsRegistry,
    metrics,
    metrics_scope,
    set_metrics,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        reg = MetricsRegistry()
        counter = reg.counter("publish.items")
        assert counter.value == 0
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises((ValueError, ValidationError)):
            counter.inc(-1)

    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a") is not reg.counter("b")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7


class TestHistogram:
    def test_observes_summary_stats(self):
        hist = MetricsRegistry().histogram("hops")
        for v in (1.0, 2.0, 3.0):
            hist.observe(v)
        assert hist.stats.count == 3
        assert hist.total == pytest.approx(6.0)

    def test_snapshot_has_mean_min_max(self):
        reg = MetricsRegistry()
        hist = reg.histogram("hops")
        for v in (2.0, 4.0):
            hist.observe(v)
        stats = reg.snapshot()["histograms"]["hops"]
        assert stats["count"] == 2
        assert stats["mean"] == pytest.approx(3.0)
        assert stats["min"] == pytest.approx(2.0)
        assert stats["max"] == pytest.approx(4.0)


class TestLabelsAndSnapshot:
    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("hops", level="A").inc(1)
        reg.counter("hops", level="D0").inc(2)
        counters = reg.snapshot()["counters"]
        assert counters["hops{level=A}"] == 1
        assert counters["hops{level=D0}"] == 2

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        assert reg.counter("x", b=2, a=1) is reg.counter("x", a=1, b=2)

    def test_snapshot_keys_sorted(self):
        reg = MetricsRegistry()
        for name in ("zeta", "alpha", "mid"):
            reg.counter(name).inc()
        assert list(reg.snapshot()["counters"]) == ["alpha", "mid", "zeta"]

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.histogram("h").observe(1.0)
        reg.reset()
        snap = reg.snapshot()
        assert snap["counters"] == {}
        assert snap["histograms"] == {}


class TestTimer:
    def test_timer_uses_injected_simulated_clock(self):
        """A registry clocked by the discrete-event Scheduler measures
        virtual seconds, not wall time."""
        sched = Scheduler()
        reg = MetricsRegistry(clock=lambda: sched.now)
        sched.schedule_after(3.5, lambda: None)
        with reg.timer("run"):
            sched.run()
        stats = reg.snapshot()["histograms"]["run"]
        assert stats["count"] == 1
        assert stats["total"] == pytest.approx(3.5)

    def test_timer_survives_exceptions(self):
        reg = MetricsRegistry(clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with reg.timer("boom"):
                raise RuntimeError("boom")
        assert reg.snapshot()["histograms"]["boom"]["count"] == 1


class TestActiveRegistry:
    def test_metrics_scope_swaps_and_restores(self):
        outer = metrics()
        with metrics_scope() as scoped:
            assert metrics() is scoped
            assert scoped is not outer
            metrics().counter("inner").inc()
        assert metrics() is outer
        assert "inner" not in outer.snapshot()["counters"]

    def test_set_metrics_returns_previous(self):
        outer = metrics()
        replacement = MetricsRegistry()
        previous = set_metrics(replacement)
        try:
            assert previous is outer
            assert metrics() is replacement
        finally:
            set_metrics(outer)
