"""Tests for the epoch-based delta publish pipeline."""

import numpy as np
import pytest

from repro.clustering import EpochClusterState
from repro.clustering.summaries import summarize_peer_data
from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import ValidationError


def _peer_entry_ids(net, peer_id):
    """``{level: frozenset(entry ids)}`` currently published by a peer."""
    out = {}
    for level, overlay in net.overlays.items():
        store = overlay.level_store
        rows = store.rows_for_peer(peer_id)
        out[level] = frozenset(store.entry_id_of(int(r)) for r in rows)
    return out


@pytest.fixture
def published_network(rng):
    net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=4), rng=0)
    for p in range(6):
        net.add_peer(rng.random((30, 16)), np.arange(p * 30, (p + 1) * 30))
    net.publish_all()
    return net


class TestIdempotentRepublish:
    def test_second_republish_is_free(self, published_network, rng):
        net = published_network
        net.peers[2].add_items(rng.random((3, 16)), np.arange(900, 903))
        net.republish_peer(2)
        # No mutations since: the delta round must cost nothing at all.
        bytes_before = net.fabric.metrics.total_bytes
        hops_before = net.fabric.metrics.total_hops
        report = net.republish_peer(2)
        assert report.items_published == 0
        assert report.spheres_inserted == 0
        assert report.spheres_updated == 0
        assert report.spheres_removed == 0
        assert report.bytes_sent == 0
        assert net.fabric.metrics.total_bytes == bytes_before
        assert net.fabric.metrics.total_hops == hops_before

    def test_clean_peer_republish_is_free(self, published_network):
        report = published_network.republish_peer(0)
        assert report.items_published == 0
        assert report.bytes_sent == 0


class TestAddItemsCollisions:
    def test_duplicate_ids_within_batch_rejected(self, published_network, rng):
        peer = published_network.peers[1]
        with pytest.raises(ValidationError, match="duplicate"):
            peer.add_items(
                rng.random((2, 16)), np.asarray([700, 700], dtype=np.int64)
            )

    def test_collision_with_held_ids_rejected(self, published_network, rng):
        peer = published_network.peers[1]
        held = int(peer.item_ids[0])
        with pytest.raises(ValidationError, match=str(held)):
            peer.add_items(
                rng.random((1, 16)), np.asarray([held], dtype=np.int64)
            )

    def test_collision_leaves_peer_unchanged(self, published_network, rng):
        peer = published_network.peers[1]
        n_before = peer.n_items
        with pytest.raises(ValidationError):
            peer.add_items(
                rng.random((1, 16)),
                np.asarray([int(peer.item_ids[0])], dtype=np.int64),
            )
        assert peer.n_items == n_before


class TestDeltaEntryIds:
    def test_small_add_patches_in_place(self, published_network, rng):
        net = published_network
        ids_before = _peer_entry_ids(net, 3)
        net.peers[3].add_items(rng.random((2, 16)), np.arange(910, 912))
        report = net.republish_peer(3)
        ids_after = _peer_entry_ids(net, 3)
        # A 2-item add is far below the drift threshold: updated spheres
        # keep their entry ids, so the published id set can only grow.
        for level in net.levels:
            assert ids_before[level] <= ids_after[level]
        assert report.spheres_updated + report.spheres_inserted > 0
        assert report.items_published == 2

    def test_drift_triggers_full_fallback(self, published_network, rng):
        net = published_network
        ids_before = _peer_entry_ids(net, 3)
        # 30 new over 30 published is 100% churn: past the 50% threshold.
        net.peers[3].add_items(rng.random((30, 16)), np.arange(920, 950))
        report = net.republish_peer(3)
        ids_after = _peer_entry_ids(net, 3)
        for level in net.levels:
            assert not (ids_before[level] & ids_after[level])
        assert report.items_published == 60

    def test_force_full_rebuilds(self, published_network):
        net = published_network
        ids_before = _peer_entry_ids(net, 4)
        report = net.publish_delta(4, force_full=True)
        ids_after = _peer_entry_ids(net, 4)
        for level in net.levels:
            assert not (ids_before[level] & ids_after[level])
        assert report.items_published == 30

    def test_summary_counts_stay_consistent(self, published_network, rng):
        net = published_network
        net.peers[3].add_items(rng.random((4, 16)), np.arange(960, 964))
        net.republish_peer(3)
        for level in net.levels:
            assert net.peers[3].summary.items_summarised(level) == 34


class TestRemovals:
    def test_remove_then_delta_updates_counts(self, published_network):
        net = published_network
        peer = net.peers[2]
        victims = peer.item_ids[:5].copy()
        assert peer.remove_items(victims) == 5
        report = net.republish_peer(2)
        assert report.items_published == 5
        for level in net.levels:
            assert peer.summary.items_summarised(level) == 25

    def test_remove_unknown_id_raises(self, published_network):
        with pytest.raises(ValidationError):
            published_network.peers[2].remove_items([987654])

    def test_mass_removal_falls_back_to_full(self, published_network):
        net = published_network
        peer = net.peers[2]
        peer.remove_items(peer.item_ids[:29].copy())
        report = net.republish_peer(2)
        # 29 of 30 removed is way past the drift threshold: the round
        # degenerates to a full rebuild over the lone survivor.
        assert report.items_published == 1
        assert report.spheres_removed > 0
        for level in net.levels:
            assert peer.summary.items_summarised(level) == 1

    def test_removed_items_stop_matching(self, published_network):
        net = published_network
        peer = net.peers[2]
        target = peer.data[0].copy()
        victim = int(peer.item_ids[0])
        peer.remove_items([victim])
        net.republish_peer(2)
        result = net.range_query(target, 0.5, max_peers=None)
        assert victim not in set(result.item_ids)


class TestRevival:
    def test_delta_republish_after_withdrawal(self, published_network, rng):
        net = published_network
        net.withdraw_summaries(5)
        assert all(
            not ids for ids in _peer_entry_ids(net, 5).values()
        )
        net.peers[5].add_items(rng.random((2, 16)), np.arange(970, 972))
        net.republish_peer(5)
        ids_after = _peer_entry_ids(net, 5)
        # Withdrawn entries were revived with fresh ids: coverage is back.
        for level in net.levels:
            assert ids_after[level]
        truth = CentralizedIndex.from_network(net)
        query = net.peers[5].data[3]
        expected = truth.range_search(query, 0.4)
        got = net.range_query(query, 0.4, max_peers=None)
        assert set(got.item_ids) == set(expected)


class TestDeltaMetrics:
    def test_publish_delta_counters(self, published_network, rng):
        from repro.obs import registry as obs_registry

        metrics = obs_registry.metrics()
        ops_before = metrics.counter("publish.delta.operations").value
        net = published_network
        net.peers[1].add_items(rng.random((2, 16)), np.arange(980, 982))
        report = net.republish_peer(1)
        assert (
            metrics.counter("publish.delta.operations").value
            == ops_before + 1
        )
        assert report.bytes_sent > 0


class TestEpochStateUnit:
    def _state(self, rng, n=40, d=16, k=4, levels=3):
        data = rng.random((n, d))
        summary = summarize_peer_data(
            data, n_clusters=k, levels_used=levels, rng=rng
        )
        return data, EpochClusterState(summary)

    def test_roundtrip_matches_summary(self, rng):
        data, state = self._state(rng)
        snap = state.to_summary()
        for level in state.levels:
            assert len(snap.spheres[level]) == len(state.spheres[level])
            assert snap.items_summarised(level) == 40

    def test_new_from_mismatch_rejected(self, rng):
        data, state = self._state(rng)
        with pytest.raises(ValidationError):
            state.build_delta(data, 10, n_clusters=4, rng=rng)

    def test_empty_delta_for_no_mutations(self, rng):
        data, state = self._state(rng)
        delta = state.build_delta(data, 40, n_clusters=4, rng=rng)
        assert delta.is_empty
        assert not delta.full

    def test_sid_start_offsets_identities(self, rng):
        data = rng.random((40, 16))
        summary = summarize_peer_data(
            data, n_clusters=4, levels_used=3, rng=rng
        )
        state = EpochClusterState(summary, sid_start=100)
        for level in state.levels:
            assert min(state.spheres[level]) >= 100
        assert state.sid_high >= 100

    def test_items_always_inside_spheres(self, rng):
        """Theorem 3.1 invariant: every item lies inside its sphere."""
        from repro.wavelets.multiresolution import decompose_dataset

        data, state = self._state(rng)
        extra = rng.random((6, 16))
        grown = np.vstack([data, extra])
        state.build_delta(grown, 40, n_clusters=4, rng=rng)
        decomposition = decompose_dataset(grown)
        for level in state.levels:
            coeffs = decomposition[level]
            labels = state.labels[level]
            for pos in range(grown.shape[0]):
                sphere = state.spheres[level][int(labels[pos])]
                dist = float(
                    np.linalg.norm(coeffs[pos] - sphere.centroid)
                )
                assert dist <= sphere.radius + 1e-9


class TestLevelStorePatch:
    def _insert_one(self, can):
        store = can.level_store
        entry_id = store.next_entry_id
        can.insert(can.node_ids[0], np.full(2, 0.5), "original", radius=0.1)
        return store, entry_id

    def test_update_entry_patches_columns(self, small_can):
        store, entry_id = self._insert_one(small_can)
        assert store.has_entry(entry_id)
        row = store.update_entry(entry_id, radius=0.25, value="patched")
        view = store.view(row)
        assert view.radius == 0.25
        assert view.value == "patched"

    def test_update_entry_validations(self, small_can):
        store, entry_id = self._insert_one(small_can)
        with pytest.raises(ValidationError):
            store.update_entry(entry_id, radius=-1.0)
        with pytest.raises(ValidationError):
            store.update_entry(999999, radius=0.2)
        with pytest.raises(ValidationError):
            store.update_entry(entry_id, key=np.zeros(3))

    def test_update_bumps_generation(self, small_can):
        store, entry_id = self._insert_one(small_can)
        gen = store.generation
        store.update_entry(entry_id, radius=0.3)
        assert store.generation == gen + 1
