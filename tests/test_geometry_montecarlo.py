"""Tests for the Monte-Carlo sampler used to cross-check Eq. 5–7."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.geometry.montecarlo import (
    monte_carlo_intersection_fraction,
    sample_in_ball,
)


class TestSampleInBall:
    def test_all_inside(self, rng):
        center = np.array([1.0, -2.0, 0.5])
        points = sample_in_ball(5000, center, 2.0, rng)
        assert np.all(np.linalg.norm(points - center, axis=1) <= 2.0 + 1e-12)

    def test_uniformity_radial_moment(self, rng):
        # For uniform sampling in a d-ball, E[(r/R)^d] relates to CDF:
        # P(r <= t R) = t^d, so the median radius is R * (1/2)^(1/d).
        d = 3
        points = sample_in_ball(20000, np.zeros(d), 1.0, rng)
        radii = np.linalg.norm(points, axis=1)
        assert abs(np.median(radii) - 0.5 ** (1 / d)) < 0.02

    def test_zero_radius(self, rng):
        points = sample_in_ball(10, np.ones(2), 0.0, rng)
        assert np.allclose(points, 1.0)

    def test_bad_count(self, rng):
        with pytest.raises(ValidationError):
            monte_carlo_intersection_fraction(
                np.zeros(2), 1.0, np.zeros(2), 1.0, n_samples=0, rng=rng
            )


class TestMonteCarloFraction:
    def test_identical_spheres(self, rng):
        f = monte_carlo_intersection_fraction(
            np.zeros(3), 1.0, np.zeros(3), 1.0, n_samples=2000, rng=rng
        )
        assert f == 1.0

    def test_disjoint(self, rng):
        f = monte_carlo_intersection_fraction(
            np.zeros(2), 0.5, np.array([5.0, 0.0]), 0.5, n_samples=2000, rng=rng
        )
        assert f == 0.0

    def test_point_data_sphere(self, rng):
        assert monte_carlo_intersection_fraction(
            np.zeros(2), 0.0, np.array([0.3, 0.0]), 0.5, rng=rng
        ) == 1.0
        assert monte_carlo_intersection_fraction(
            np.zeros(2), 0.0, np.array([0.9, 0.0]), 0.5, rng=rng
        ) == 0.0

    def test_dimension_mismatch(self, rng):
        with pytest.raises(Exception):
            monte_carlo_intersection_fraction(
                np.zeros(2), 1.0, np.zeros(3), 1.0, rng=rng
            )
