"""The scale benchmark runner: smoke, parity, and CLI surface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.evaluation.scale import run_scale_bench
from repro.exceptions import ValidationError


def _small(**overrides):
    cfg = {
        "n_peers": 64,
        "spheres_per_peer": 2,
        "n_queries": 4,
        "baseline_peers": 16,
        "seed": 0,
    }
    cfg.update(overrides)
    return run_scale_bench(**cfg)


class TestRunner:
    def test_serial_smoke(self):
        report = _small()
        assert report["benchmark"] == "scale"
        assert report["engine"] == "serial"
        assert report["spheres_published"] == 64 * 2 * report["levels_used"]
        assert report["peers_per_s"] > 0
        assert report["queries_per_s"] > 0
        assert report["bulk_speedup"] > 0
        assert report["resources"]["peak_rss_bytes"] > 0
        assert report["fabric"]["messages"] > 0
        # Serial runs skip the parity arm: there is nothing to diverge.
        assert report["parity"] == {"checked": 0, "max_abs_delta": 0.0}

    def test_sharded_matches_serial_scores(self):
        serial = _small()
        sharded = _small(engine="sharded", workers=2)
        # The runner itself enforces 1e-9 parity pre-timing; a run that
        # completed proves it held.
        assert sharded["parity"]["checked"] == 4
        assert sharded["parity"]["max_abs_delta"] <= 1e-9
        assert sharded["mean_peers_ranked"] == serial["mean_peers_ranked"]
        assert sharded["engine_snapshot"]["epochs"] > 0

    def test_region_sharding_smoke(self):
        report = _small(engine="sharded", workers=2, shard_by="region")
        assert report["parity"]["max_abs_delta"] <= 1e-9

    def test_grid_recorded_per_level(self):
        report = _small()
        assert len(report["grid"]) == report["levels_used"]
        for counts in report["grid"].values():
            n_cells = 1
            for c in counts:
                n_cells *= c
            assert n_cells >= 64

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_peers": 0},
            {"spheres_per_peer": 0},
            {"n_queries": 0},
            {"baseline_peers": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            _small(**kwargs)


class TestCli:
    def test_scale_bench_writes_json(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        code = cli_main([
            "scale-bench", "--peers", "64", "--queries", "4",
            "--baseline-peers", "16", "--engine", "sharded",
            "--workers", "2", "--out", str(out),
        ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["engine"] == "sharded"
        assert report["n_peers"] == 64
        assert report["parity"]["max_abs_delta"] <= 1e-9
        assert "scale-bench" in capsys.readouterr().out

    def test_scale_bench_json_flag(self, capsys):
        code = cli_main([
            "scale-bench", "--peers", "32", "--queries", "2",
            "--baseline-peers", "8", "--json",
        ])
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["benchmark"] == "scale"
        assert report["engine"] == "serial"
