"""Tests for CAN zones: geometry, splitting, neighbour relation."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ValidationError
from repro.overlay.can.zone import Zone


def make_zone(lows, highs):
    return Zone(np.asarray(lows, dtype=float), np.asarray(highs, dtype=float))


class TestZoneBasics:
    def test_full(self):
        z = Zone.full(3)
        assert z.volume == 1.0
        assert z.contains(np.array([0.5, 0.5, 0.5]))

    def test_invalid_bounds(self):
        with pytest.raises(ValidationError):
            make_zone([0.5, 0.0], [0.4, 1.0])
        with pytest.raises(ValidationError):
            make_zone([-0.1, 0.0], [0.5, 1.0])
        with pytest.raises(ValidationError):
            Zone.full(0)

    def test_contains_half_open(self):
        z = make_zone([0.0, 0.0], [0.5, 0.5])
        assert z.contains(np.array([0.0, 0.0]))
        assert not z.contains(np.array([0.5, 0.0]))

    def test_contains_closed_at_outer_face(self):
        z = make_zone([0.5, 0.5], [1.0, 1.0])
        assert z.contains(np.array([1.0, 1.0]))

    def test_center_and_extent(self):
        z = make_zone([0.0, 0.5], [0.5, 1.0])
        assert np.allclose(z.center, [0.25, 0.75])
        assert np.allclose(z.extent(), [0.5, 0.5])


class TestZoneSplit:
    def test_split_longest_side(self):
        z = make_zone([0.0, 0.0], [1.0, 0.5])
        lower, upper = z.split()
        assert np.allclose(lower.highs, [0.5, 0.5])
        assert np.allclose(upper.lows, [0.5, 0.0])

    def test_split_explicit_dim(self):
        z = Zone.full(2)
        lower, upper = z.split(1)
        assert np.allclose(lower.highs, [1.0, 0.5])

    def test_split_preserves_volume(self):
        z = Zone.full(3)
        lower, upper = z.split()
        assert np.isclose(lower.volume + upper.volume, z.volume)

    def test_split_halves_are_disjoint_and_cover(self, rng):
        z = make_zone([0.2, 0.3], [0.8, 0.9])
        lower, upper = z.split()
        for __ in range(100):
            p = rng.uniform([0.2, 0.3], [0.8, 0.9])
            assert lower.contains(p) != upper.contains(p) or (
                not z.contains(p)
            )

    def test_bad_dim(self):
        with pytest.raises(ValidationError):
            Zone.full(2).split(5)


class TestZoneDistances:
    def test_euclidean_inside_is_zero(self):
        z = make_zone([0.0, 0.0], [0.5, 0.5])
        assert z.euclidean_distance_to(np.array([0.25, 0.25])) == 0.0

    def test_euclidean_outside(self):
        z = make_zone([0.0, 0.0], [0.5, 0.5])
        assert np.isclose(
            z.euclidean_distance_to(np.array([1.0, 0.25])), 0.5
        )

    def test_torus_wraps(self):
        z = make_zone([0.0, 0.0], [0.1, 1.0])
        # Point at x=0.95: direct gap 0.85, wrapped gap 0.05.
        assert np.isclose(
            z.torus_distance_to(np.array([0.95, 0.5])), 0.05
        )

    def test_torus_never_exceeds_euclidean(self, rng):
        z = make_zone([0.3, 0.1], [0.6, 0.4])
        for __ in range(50):
            p = rng.random(2)
            assert z.torus_distance_to(p) <= z.euclidean_distance_to(p) + 1e-12

    def test_intersects_sphere(self):
        z = make_zone([0.0, 0.0], [0.5, 0.5])
        assert z.intersects_sphere(np.array([0.7, 0.25]), 0.3)
        assert not z.intersects_sphere(np.array([0.9, 0.9]), 0.3)


class TestNeighborRelation:
    def test_abutting_zones_are_neighbors(self):
        a = make_zone([0.0, 0.0], [0.5, 1.0])
        b = make_zone([0.5, 0.0], [1.0, 1.0])
        assert a.is_neighbor(b)
        assert b.is_neighbor(a)

    def test_corner_touch_is_not_neighbor(self):
        a = make_zone([0.0, 0.0], [0.5, 0.5])
        b = make_zone([0.5, 0.5], [1.0, 1.0])
        assert not a.is_neighbor(b)

    def test_disjoint_not_neighbors(self):
        # Separated in dim 0 and away from the torus seam on both sides.
        a = make_zone([0.1, 0.0], [0.3, 1.0])
        b = make_zone([0.5, 0.0], [0.9, 1.0])
        assert not a.is_neighbor(b)

    def test_wraparound_neighbors(self):
        a = make_zone([0.0, 0.0], [0.25, 1.0])
        b = make_zone([0.75, 0.0], [1.0, 1.0])
        assert a.is_neighbor(b)

    def test_partial_overlap_abut(self):
        a = make_zone([0.0, 0.0], [0.5, 0.5])
        b = make_zone([0.5, 0.25], [1.0, 0.75])
        assert a.is_neighbor(b)

    def test_one_dimensional(self):
        a = make_zone([0.0], [0.5])
        b = make_zone([0.5], [1.0])
        assert a.is_neighbor(b)

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            Zone.full(2).is_neighbor(Zone.full(3))

    @given(seed=st.integers(0, 2**31 - 1))
    def test_split_children_are_neighbors(self, seed):
        rng = np.random.default_rng(seed)
        lows = rng.random(2) * 0.4
        highs = lows + 0.1 + rng.random(2) * 0.4
        highs = np.minimum(highs, 1.0)
        z = Zone(lows, highs)
        lower, upper = z.split()
        assert lower.is_neighbor(upper)
