"""Unit tests for repro.utils.tables."""

import pytest

from repro.utils.tables import format_table


class TestFormatTable:
    def test_basic_render(self):
        out = format_table(["a", "bb"], [[1, 2.5], [10, 0.125]])
        lines = out.splitlines()
        assert lines[1].count("|") == 3
        assert "2.500" in out
        assert "0.125" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_precision(self):
        out = format_table(["x"], [[1.23456]], precision=1)
        assert "1.2" in out
        assert "1.23" not in out

    def test_column_mismatch_raises(self):
        with pytest.raises(ValueError, match="columns"):
            format_table(["a", "b"], [[1]])

    def test_bool_and_str_cells(self):
        out = format_table(["a", "b"], [[True, "hi"]])
        assert "True" in out and "hi" in out

    def test_alignment_consistent(self):
        out = format_table(["col"], [[1], [100]])
        lines = [l for l in out.splitlines() if l.startswith("|")]
        widths = {len(l) for l in lines}
        assert len(widths) == 1
