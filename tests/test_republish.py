"""Tests for summary republishing (staleness recovery)."""

import numpy as np
import pytest

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.evaluation.metrics import precision_recall


@pytest.fixture
def stale_network(rng):
    config = HyperMConfig(levels_used=3, n_clusters=4)
    net = HyperMNetwork(16, config, rng=0)
    for p in range(6):
        net.add_peer(
            rng.random((30, 16)), np.arange(p * 30, (p + 1) * 30)
        )
    net.publish_all()
    # Peer 2 accumulates unpublished items.
    net.peers[2].add_items(rng.random((30, 16)), np.arange(500, 530))
    return net


class TestRepublish:
    def test_republish_covers_new_items(self, stale_network):
        net = stale_network
        assert net.peers[2].unpublished_from == 30
        net.republish_peer(2)
        assert net.peers[2].unpublished_from == 60
        for level in net.levels:
            assert net.peers[2].summary.items_summarised(level) == 60

    def test_old_summaries_withdrawn(self, stale_network):
        net = stale_network
        counts_before = self._peer_entry_count(net, 2)
        net.republish_peer(2)
        counts_after = self._peer_entry_count(net, 2)
        # Entries exist and summarise 60 items; no duplicated generations.
        assert counts_after > 0
        for level, overlay in net.overlays.items():
            total_items = 0
            seen = set()
            for node_id in overlay.node_ids:
                for entry in overlay.node(node_id).store:
                    # Replicas of one row share a stable entry id, so the
                    # dedup no longer leans on CPython object identity.
                    if entry.value.peer_id == 2 and entry.entry_id not in seen:
                        seen.add(entry.entry_id)
                        total_items += entry.value.items
            assert total_items == 60, str(level)

    @staticmethod
    def _peer_entry_count(net, peer_id):
        count = 0
        for overlay in net.overlays.values():
            for node_id in overlay.node_ids:
                count += sum(
                    1
                    for e in overlay.node(node_id).store
                    if e.value.peer_id == peer_id
                )
        return count

    def test_republish_restores_recall(self, stale_network, rng):
        net = stale_network
        # Query for one of the unpublished items from another peer: the
        # stale index cannot score peer 2 highly for it.
        target = net.peers[2].data[35]  # an unpublished item
        truth = CentralizedIndex.from_network(net).range_search(target, 0.6)
        stale = net.range_query(target, 0.6, max_peers=2, origin_peer=0)
        net.republish_peer(2)
        fresh = net.range_query(target, 0.6, max_peers=2, origin_peer=0)
        stale_recall = precision_recall(stale.item_ids, truth).recall
        fresh_recall = precision_recall(fresh.item_ids, truth).recall
        assert fresh_recall >= stale_recall
        # The exact unpublished item must now be findable.
        assert any(item.distance <= 1e-9 for item in fresh.items)

    def test_republish_costs_dissemination(self, stale_network):
        report = stale_network.republish_peer(2)
        assert report.items_published == 60
        assert report.spheres_inserted > 0
