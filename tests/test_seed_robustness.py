"""Shape robustness across seeds.

The benchmarks assert the paper's shapes at fixed seeds; these tests
verify the two headline shapes are not seed artefacts by sweeping seeds
at small scale.
"""

import pytest

from repro.evaluation.dissemination import run_fig8b
from repro.evaluation.effectiveness import run_fig10a


@pytest.mark.slow
class TestShapeRobustness:
    @pytest.mark.parametrize("seed", [11, 22, 33])
    def test_fig8b_amortisation_shape(self, seed):
        rows = run_fig8b(
            n_peers=10,
            items_per_peer_sweep=(40, 160, 400),
            baseline_sample=40,
            rng=seed,
        )
        hyperm = [r.hyperm_hops_per_item for r in rows]
        # Monotone amortisation at every seed…
        assert hyperm == sorted(hyperm, reverse=True)
        # …and Hyper-M beats CAN at the largest volume.
        assert rows[-1].hyperm_hops_per_item < rows[-1].can_hops_per_item

    @pytest.mark.parametrize("seed", [5, 15])
    def test_fig10a_recall_monotone_in_budget(self, seed):
        out = run_fig10a(
            n_peers=10,
            n_objects=50,
            views_per_object=8,
            cluster_counts=(10,),
            peers_contacted_sweep=(1, 4, 10),
            n_queries=8,
            rng=seed,
        )
        series = out[10]
        means = [p.mean for p in series]
        assert means == sorted(means)
        assert means[-1] > 0.8
