"""Tests for the resilience evaluation scenario (recall under faults)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation.resilience import FaultRecallRow, run_fault_recall

_SMALL = dict(
    n_peers=10,
    n_objects=24,
    views_per_object=8,
    n_bins=16,
    n_clusters=4,
    levels_used=3,
    radii=(0.14, 0.18),
    n_queries=5,
    max_peers=None,
)


class TestFaultRecall:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_fault_recall(
            loss_rates=(0.0, 0.05, 0.10),
            rng=np.random.default_rng(5),
            **_SMALL,
        )

    def test_row_shape(self, rows):
        assert len(rows) == 3
        assert all(isinstance(row, FaultRecallRow) for row in rows)
        assert [row.loss for row in rows] == [0.0, 0.05, 0.10]
        assert all(row.queries > 0 for row in rows)

    def test_clean_row_is_faultless(self, rows):
        clean = rows[0]
        assert clean.drops == 0
        assert clean.retries == 0
        assert clean.degraded_queries == 0
        assert clean.confidence_mean == 1.0

    def test_recall_gate_under_ten_percent_loss(self, rows):
        """The CI acceptance gate: retries keep recall >= 0.95."""
        for row in rows:
            if row.loss <= 0.10:
                assert row.recall_mean >= 0.95, (
                    f"recall {row.recall_mean:.3f} at loss {row.loss}"
                )

    def test_lossy_rows_actually_injected(self, rows):
        assert rows[1].drops + rows[2].drops > 0
        assert rows[2].retries >= rows[1].retries >= 0

    def test_reproducible_from_seed(self):
        kwargs = dict(loss_rates=(0.0, 0.10), fault_seed=3, **_SMALL)
        a = run_fault_recall(rng=np.random.default_rng(7), **kwargs)
        b = run_fault_recall(rng=np.random.default_rng(7), **kwargs)
        assert a == b

    def test_crashes_reduce_raw_recall_only(self):
        rows = run_fault_recall(
            loss_rates=(0.0,),
            crash_fraction=0.3,
            rng=np.random.default_rng(5),
            **_SMALL,
        )
        row = rows[0]
        assert row.peers_crashed == 3
        # Crashed peers' items are unreachable by definition; recall vs
        # the *reachable* truth stays high while raw recall pays the
        # price of the lost data.
        assert row.raw_recall_mean <= row.recall_mean
        assert row.tombstoned_entries >= 0
