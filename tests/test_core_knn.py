"""Tests for the Figure 5 k-NN heuristic."""

import numpy as np
import pytest

from repro.evaluation.metrics import precision_recall
from repro.exceptions import QueryError


class TestKnnQueries:
    def test_returns_items(self, tiny_histogram_workload, rng):
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[int(rng.integers(wl.ground_truth.n_items))]
        result = wl.network.knn_query(query, 5)
        assert result.requested_k == 5
        assert len(result.items) >= 1

    def test_reasonable_recall(self, tiny_histogram_workload, rng):
        wl = tiny_histogram_workload
        recalls = []
        for __ in range(6):
            query = wl.ground_truth.data[
                int(rng.integers(wl.ground_truth.n_items))
            ]
            truth = wl.ground_truth.knn(query, 5)
            result = wl.network.knn_query(query, 5)
            recalls.append(precision_recall(result.item_ids, truth).recall)
        assert np.mean(recalls) > 0.4  # paper balances ~0.5+; small net is noisy

    def test_self_is_always_found(self, tiny_histogram_workload):
        """The query item itself is its own nearest neighbour; the index
        must lead back to its holder."""
        wl = tiny_histogram_workload
        peer = wl.network.peers[1]
        query = peer.data[3]
        result = wl.network.knn_query(query, 3)
        assert any(item.distance <= 1e-9 for item in result.items)

    def test_items_sorted(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.knn_query(wl.ground_truth.data[0], 5)
        dists = [item.distance for item in result.items]
        assert dists == sorted(dists)

    def test_top_k_ids_size(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.knn_query(wl.ground_truth.data[0], 4)
        assert len(result.top_k_ids()) <= 4

    def test_c_increases_retrieved_volume(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[10]
        small = wl.network.knn_query(query, 8, c=1.0)
        large = wl.network.knn_query(query, 8, c=2.0)
        assert len(large.items) >= len(small.items)

    def test_top_p_limits_contacts(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.knn_query(wl.ground_truth.data[0], 5, top_p=2)
        assert len(result.peers_contacted) <= 2

    def test_epsilon_estimates_recorded(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.knn_query(wl.ground_truth.data[0], 5)
        assert set(result.epsilon_per_level) == set(wl.network.levels)
        assert all(e >= 0 for e in result.epsilon_per_level.values())

    def test_invalid_k(self, tiny_histogram_workload):
        with pytest.raises(QueryError):
            tiny_histogram_workload.network.knn_query(
                tiny_histogram_workload.ground_truth.data[0], 0
            )

    def test_invalid_c(self, tiny_histogram_workload):
        with pytest.raises(QueryError):
            tiny_histogram_workload.network.knn_query(
                tiny_histogram_workload.ground_truth.data[0], 5, c=0.0
            )

    def test_index_hops_charged(self, tiny_histogram_workload):
        wl = tiny_histogram_workload
        result = wl.network.knn_query(wl.ground_truth.data[0], 5)
        assert result.index_hops >= 0
