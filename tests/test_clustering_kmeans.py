"""Unit and property tests for the from-scratch k-means."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.clustering.kmeans import kmeans
from repro.exceptions import ClusteringError


def blobs(rng, n_per=20, centers=((0, 0), (5, 5), (10, 0)), spread=0.3):
    """Three well-separated Gaussian blobs."""
    points = []
    for cx, cy in centers:
        points.append(rng.normal((cx, cy), spread, size=(n_per, 2)))
    return np.vstack(points)


class TestKMeansBasics:
    def test_labels_shape_and_range(self, rng):
        data = blobs(rng)
        result = kmeans(data, 3, rng=0)
        assert result.labels.shape == (60,)
        assert set(result.labels) <= {0, 1, 2}

    def test_recovers_separated_blobs(self, rng):
        data = blobs(rng)
        result = kmeans(data, 3, rng=0, n_init=3)
        # Each blob's 20 points should share a label.
        for i in range(3):
            block = result.labels[i * 20 : (i + 1) * 20]
            assert len(set(block)) == 1
        assert result.inertia < 60 * 0.3**2 * 4

    def test_centroids_near_truth(self, rng):
        data = blobs(rng)
        result = kmeans(data, 3, rng=0, n_init=3)
        truth = np.array([[0, 0], [5, 5], [10, 0]], dtype=float)
        for t in truth:
            assert min(np.linalg.norm(result.centroids - t, axis=1)) < 0.5

    def test_k_equals_n(self, rng):
        data = rng.random((5, 3))
        result = kmeans(data, 5, rng=0)
        assert result.inertia < 1e-12
        assert sorted(result.labels.tolist()) == [0, 1, 2, 3, 4]

    def test_k_one(self, rng):
        data = rng.random((20, 4))
        result = kmeans(data, 1, rng=0)
        assert np.allclose(result.centroids[0], data.mean(axis=0))

    def test_reproducible_with_seed(self, rng):
        data = rng.random((30, 4))
        a = kmeans(data, 4, rng=42)
        b = kmeans(data, 4, rng=42)
        assert np.array_equal(a.labels, b.labels)
        assert np.allclose(a.centroids, b.centroids)

    def test_cluster_sizes_sum_to_n(self, rng):
        data = rng.random((25, 3))
        result = kmeans(data, 4, rng=1)
        assert result.cluster_sizes().sum() == 25


class TestKMeansValidation:
    def test_k_zero_rejected(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.random((5, 2)), 0)

    def test_k_exceeds_n_rejected(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.random((3, 2)), 4)

    def test_bad_n_init_rejected(self, rng):
        with pytest.raises(ClusteringError):
            kmeans(rng.random((5, 2)), 2, n_init=0)


class TestKMeansProperties:
    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(5, 30), st.integers(1, 6)),
            elements=st.floats(min_value=0.0, max_value=1.0, width=64),
        ),
        k=st.integers(1, 5),
    )
    def test_invariants(self, data, k):
        k = min(k, data.shape[0])
        result = kmeans(data, k, rng=0)
        # Every label valid, inertia non-negative and consistent.
        assert result.labels.min() >= 0
        assert result.labels.max() < k
        assigned = result.centroids[result.labels]
        inertia = float(((data - assigned) ** 2).sum())
        assert np.isclose(result.inertia, inertia, rtol=1e-9, atol=1e-9)

    @given(
        data=arrays(
            np.float64,
            st.tuples(st.integers(6, 20), st.integers(1, 4)),
            elements=st.floats(min_value=0.0, max_value=1.0, width=64),
        )
    )
    def test_each_point_assigned_to_nearest_centroid(self, data):
        result = kmeans(data, 3, rng=0)
        d2 = ((data[:, None, :] - result.centroids[None, :, :]) ** 2).sum(axis=2)
        best = d2.min(axis=1)
        chosen = d2[np.arange(data.shape[0]), result.labels]
        assert np.allclose(chosen, best, atol=1e-12)

    def test_duplicate_points_handled(self):
        data = np.ones((10, 3))
        result = kmeans(data, 3, rng=0)
        assert result.inertia == 0.0

    def test_translation_invariance(self, rng):
        """The paper picks k-means for its invariance to translations."""
        data = rng.random((40, 3))
        base = kmeans(data, 4, rng=5)
        shifted = kmeans(data + 100.0, 4, rng=5)
        assert np.array_equal(base.labels, shifted.labels)
        assert np.allclose(base.centroids + 100.0, shifted.centroids)

    def test_more_clusters_never_worse(self, rng):
        data = rng.random((50, 4))
        inertia = [
            kmeans(data, k, rng=3, n_init=5).inertia for k in (1, 2, 4, 8)
        ]
        # With multiple restarts, inertia should be non-increasing in k.
        for a, b in zip(inertia, inertia[1:]):
            assert b <= a * 1.05  # small slack: restarts are heuristic


class TestEmptyClusterRepair:
    """Regression: the post-loop final assignment (`labels = d2.argmin(...)`)
    used to undo the in-loop empty-cluster repair — argmin tie-breaks to the
    lowest index, so a point a repaired centroid was re-seeded on snapped
    back to a duplicate centroid, returning a result with empty clusters."""

    def test_identical_points_fill_every_cluster(self):
        # All-zero data makes every centroid a duplicate: the exact shape
        # that triggered the snap-back. Previously sizes were [n, 0, 0].
        result = kmeans(np.zeros((6, 2)), 3, rng=0)
        sizes = result.cluster_sizes()
        assert sizes.shape == (3,)
        assert sizes.min() >= 1
        assert sizes.sum() == 6
        assert result.inertia == 0.0

    def test_few_distinct_values_fill_every_cluster(self):
        data = np.repeat([[0.0, 0.0], [1.0, 1.0]], 5, axis=0)
        result = kmeans(data, 5, rng=0)
        assert result.cluster_sizes().min() >= 1

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_no_empty_clusters(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(5, 40))
        d = int(rng.integers(1, 6))
        data = rng.random((n, d))
        # Heavy duplication raises the chance of coincident centroids.
        if n >= 10:
            data[: n // 2] = data[0]
        k = int(rng.integers(1, min(n, 6) + 1))
        result = kmeans(data, k, rng=int(seed))
        sizes = result.cluster_sizes()
        assert sizes.min() >= 1, sizes
        assert sizes.sum() == n

    def test_repair_keeps_inertia_consistent(self):
        # The reported inertia must describe the *returned* labels, repair
        # included.
        data = np.repeat([[0.0, 0.0], [3.0, 3.0]], 4, axis=0)
        result = kmeans(data, 4, rng=1)
        assigned = result.centroids[result.labels]
        assert np.isclose(
            result.inertia, float(((data - assigned) ** 2).sum()), atol=1e-9
        )
