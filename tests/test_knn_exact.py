"""Tests for the exact k-NN refinement (extension beyond the paper)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork


def build(seed=0, n_peers=6, items=25, dims=16):
    rng = np.random.default_rng(seed)
    config = HyperMConfig(levels_used=3, n_clusters=4)
    network = HyperMNetwork(dims, config, rng=seed)
    for p in range(n_peers):
        network.add_peer(
            rng.random((items, dims)), np.arange(p * items, (p + 1) * items)
        )
    network.publish_all()
    return network, rng


class TestExactKnn:
    def test_matches_ground_truth(self):
        network, rng = build(seed=1)
        truth_index = CentralizedIndex.from_network(network)
        for __ in range(5):
            query = rng.random(16)
            k = int(rng.integers(1, 12))
            result = network.knn_query(query, k, exact=True)
            truth = truth_index.knn(query, k)
            assert result.item_ids == truth, (k,)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 5_000), k=st.integers(1, 20))
    def test_property_exactness(self, seed, k):
        network, rng = build(seed=seed % 17)  # reuse few networks via cache?
        truth_index = CentralizedIndex.from_network(network)
        query = network.peers[0].data[int(rng.integers(25))]
        result = network.knn_query(query, k, exact=True)
        assert result.item_ids == truth_index.knn(query, k)

    def test_exact_returns_exactly_k(self):
        network, rng = build(seed=2)
        result = network.knn_query(rng.random(16), 7, exact=True)
        assert len(result.items) == 7

    def test_exact_costs_more_than_heuristic(self):
        network, rng = build(seed=3)
        query = rng.random(16)
        heuristic = network.knn_query(query, 8)
        exact = network.knn_query(query, 8, exact=True)
        assert exact.index_hops >= heuristic.index_hops

    def test_exact_under_churn_is_best_effort(self):
        network, rng = build(seed=4)
        network.remove_peer(2)
        query = rng.random(16)
        result = network.knn_query(query, 10, exact=True)
        # All retrieved items come from online peers; no crash, k items
        # still available from survivors.
        online = {
            p for p, peer in network.peers.items() if peer.online
        }
        assert {item.peer_id for item in result.items} <= online
        assert len(result.items) == 10

    def test_k_larger_than_network(self):
        network, rng = build(seed=5, n_peers=2, items=5)
        result = network.knn_query(rng.random(16), 50, exact=True)
        assert len(result.items) == 10  # everything there is
