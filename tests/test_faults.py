"""Fault plan, injector, and resilience-primitive tests."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import ValidationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    PartitionWindow,
    RetryPolicy,
    crash_peer,
    parse_fault_plan,
    plan_scope,
    reliable_send,
    tombstone_peer,
)
from repro.faults.injector import REACTIVE_KINDS
from repro.net.messages import MessageKind
from repro.net.network import Network


class TestFaultPlan:
    def test_defaults_are_null(self):
        plan = FaultPlan()
        assert plan.is_null
        assert plan.loss == 0.0 and plan.crash_fraction == 0.0

    def test_any_fault_knob_clears_null(self):
        assert not FaultPlan(loss=0.1).is_null
        assert not FaultPlan(delay_jitter=0.01).is_null
        assert not FaultPlan(duplication=0.05).is_null
        assert not FaultPlan(
            partitions=(PartitionWindow(0.0, 1.0, frozenset({1})),)
        ).is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"loss": -0.1},
            {"loss": 1.5},
            {"duplication": -0.2},
            {"crash_fraction": 2.0},
            {"delay_jitter": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValidationError):
            FaultPlan(**kwargs)

    def test_retry_policy_backoff_caps(self):
        policy = RetryPolicy(
            max_attempts=6, base_timeout=0.1, backoff=2.0, max_timeout=0.3
        )
        waits = [policy.wait_before_attempt(a) for a in range(1, 7)]
        assert waits[0] == 0.0  # first attempt is immediate
        assert waits[1] == pytest.approx(0.1)
        assert waits[2] == pytest.approx(0.2)
        assert waits[3] == pytest.approx(0.3)  # capped
        assert waits[4] == pytest.approx(0.3)
        assert waits[5] == pytest.approx(0.3)

    def test_partition_window_severs_across_boundary(self):
        window = PartitionWindow(1.0, 2.0, frozenset({1, 2}))
        assert window.severs(1, 9, 1.5)  # one endpoint inside
        assert not window.severs(1, 2, 1.5)  # both inside: same side
        assert not window.severs(8, 9, 1.5)  # both outside
        assert not window.severs(1, 9, 2.5)  # window over

    def test_parse_round_trip(self):
        plan = parse_fault_plan(
            "loss=0.1,delay=0.005,dup=0.01,crash=0.25,seed=3,retries=5"
        )
        assert plan.loss == pytest.approx(0.1)
        assert plan.delay_jitter == pytest.approx(0.005)
        assert plan.duplication == pytest.approx(0.01)
        assert plan.crash_fraction == pytest.approx(0.25)
        assert plan.seed == 3
        assert plan.retry.max_attempts == 5

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            parse_fault_plan("loss=0.1,warp=9")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValidationError):
            parse_fault_plan("loss")


class TestInjectorDeterminism:
    def _trace(self, plan, n=200):
        injector = FaultInjector(plan)
        out = []
        for i in range(n):
            kind = (
                MessageKind.RETRIEVE if i % 2 else MessageKind.INSERT
            )
            verdict = injector.on_transmit(kind, i % 7, (i + 1) % 7, 0.0)
            out.append(
                (verdict.delivered, verdict.copies, verdict.retransmits,
                 round(verdict.extra_delay, 12))
            )
        return out

    @given(
        seed=st.integers(0, 2**31),
        loss=st.floats(0.0, 0.9),
        dup=st.floats(0.0, 0.5),
    )
    def test_same_plan_same_stream(self, seed, loss, dup):
        plan = FaultPlan(loss=loss, duplication=dup, seed=seed)
        assert self._trace(plan) == self._trace(plan)

    def test_different_seeds_differ(self):
        a = self._trace(FaultPlan(loss=0.5, seed=1))
        b = self._trace(FaultPlan(loss=0.5, seed=2))
        assert a != b

    def test_null_plan_is_passthrough(self):
        injector = FaultInjector(FaultPlan())
        assert injector.passthrough
        verdict = injector.on_transmit(MessageKind.RETRIEVE, 0, 1, 0.0)
        assert verdict.delivered and verdict.copies == 1
        assert verdict.retransmits == 0 and verdict.extra_delay == 0.0

    def test_overlay_plane_always_delivers(self):
        injector = FaultInjector(FaultPlan(loss=0.9, seed=0))
        for __ in range(100):
            verdict = injector.on_transmit(MessageKind.INSERT, 0, 1, 0.0)
            assert verdict.delivered  # charged retransmits, never dropped
        assert injector.counters.get("link_retransmits", 0) > 0

    def test_reactive_plane_drops(self):
        injector = FaultInjector(FaultPlan(loss=0.9, seed=0))
        outcomes = [
            injector.on_transmit(MessageKind.RETRIEVE, 0, 1, 0.0).delivered
            for __ in range(100)
        ]
        assert not all(outcomes)

    def test_reactive_kinds_cover_query_plane(self):
        assert MessageKind.RETRIEVE in REACTIVE_KINDS
        assert MessageKind.DATA in REACTIVE_KINDS
        assert MessageKind.INSERT not in REACTIVE_KINDS

    def test_crash_drops_all_traffic_to_node(self):
        injector = FaultInjector(FaultPlan(loss=0.0, seed=0))
        injector.crash(3, [42])
        assert not injector.passthrough
        verdict = injector.on_transmit(MessageKind.INSERT, 0, 42, 0.0)
        assert not verdict.delivered

    def test_failure_detector_threshold(self):
        injector = FaultInjector(FaultPlan(loss=0.5, seed=0))
        assert not injector.note_contact_failure(7)
        assert not injector.note_contact_failure(7)
        assert injector.note_contact_failure(7)  # third strike
        assert injector.drain_suspects() == [7]
        assert injector.drain_suspects() == []  # drained once

    def test_success_resets_failure_streak(self):
        injector = FaultInjector(FaultPlan(loss=0.5, seed=0))
        injector.note_contact_failure(7)
        injector.note_contact_failure(7)
        injector.note_contact_success(7)
        assert not injector.note_contact_failure(7)


class TestPartitionHealing:
    def test_partition_drops_then_heals(self):
        window = PartitionWindow(0.0, 1.0, frozenset({1}))
        injector = FaultInjector(FaultPlan(partitions=(window,)))
        during = injector.on_transmit(MessageKind.RETRIEVE, 1, 2, 0.5)
        after = injector.on_transmit(MessageKind.RETRIEVE, 1, 2, 1.5)
        assert not during.delivered
        assert after.delivered


class TestReliableSend:
    def _fabric(self, plan=None):
        from repro.net.node import SimNode

        fabric = Network(fault_plan=plan)
        fabric.register(SimNode(0))
        fabric.register(SimNode(1))
        return fabric

    def test_clean_fabric_single_attempt(self):
        fabric = self._fabric()
        outcome = reliable_send(
            fabric, 0, 1, MessageKind.RETRIEVE, 100
        )
        assert outcome.delivered
        assert outcome.attempts == 1 and outcome.timeouts == 0
        snapshot = fabric.metrics.snapshot()
        assert snapshot[MessageKind.RETRIEVE.value]["messages"] == 1

    def test_retries_advance_virtual_clock(self):
        fabric = self._fabric(FaultPlan(loss=0.95, seed=1))
        start = fabric.scheduler.now
        outcome = reliable_send(
            fabric, 0, 1, MessageKind.RETRIEVE, 100
        )
        assert outcome.attempts >= 2
        assert fabric.scheduler.now > start  # backoff waited

    def test_attempts_bounded_by_budget(self):
        # A partition wider than the whole retry budget: every attempt
        # fails deterministically, so the budget is the only bound.
        plan = FaultPlan(
            partitions=(PartitionWindow(0.0, 1e9, frozenset({0})),),
            retry=RetryPolicy(max_attempts=3),
        )
        fabric = self._fabric(plan)
        outcome = reliable_send(
            fabric, 0, 1, MessageKind.RETRIEVE, 100
        )
        assert not outcome.delivered
        assert outcome.attempts == 3 and outcome.timeouts == 3

    def test_retry_outlives_partition(self):
        # The window closes at t=0.06; the default policy's second
        # attempt waits 0.05 and the third another 0.1, carrying the
        # send past the heal point.
        plan = FaultPlan(
            partitions=(PartitionWindow(0.0, 0.06, frozenset({0})),),
        )
        fabric = self._fabric(plan)
        outcome = reliable_send(
            fabric, 0, 1, MessageKind.RETRIEVE, 100
        )
        assert outcome.delivered
        assert outcome.attempts >= 2


class TestCrashAndTombstone:
    @pytest.fixture
    def network(self, rng):
        config = HyperMConfig(levels_used=3, n_clusters=3)
        net = HyperMNetwork(16, config, rng=0)
        for __ in range(6):
            net.add_peer(rng.random((25, 16)))
        net.publish_all()
        return net

    def test_crash_requires_injector(self, network):
        with pytest.raises(ValidationError):
            crash_peer(network, 2)

    def test_crash_leaves_overlay_uncleaned(self, network):
        network.fabric.install_faults(FaultPlan(loss=0.0))
        nodes_before = {
            level: len(overlay.node_ids)
            for level, overlay in network.overlays.items()
        }
        crash_peer(network, 2)
        assert not network.peers[2].online
        # Abrupt: no overlay leave happened, zones still held.
        for level, overlay in network.overlays.items():
            assert len(overlay.node_ids) == nodes_before[level]

    def test_depart_is_clean_crash_is_not(self, network):
        network.fabric.install_faults(FaultPlan(loss=0.0))
        n0 = len(network.overlays[network.levels[0]].node_ids)
        network.depart(1)
        assert len(
            network.overlays[network.levels[0]].node_ids
        ) == n0 - 1
        crash_peer(network, 2)
        assert len(
            network.overlays[network.levels[0]].node_ids
        ) == n0 - 1  # unchanged by the crash

    def test_tombstone_feeds_level_store(self, network):
        network.fabric.install_faults(FaultPlan(loss=0.0))
        crash_peer(network, 3)
        removed = tombstone_peer(network, 3)
        assert removed > 0
        for level, overlay in network.overlays.items():
            rows = overlay.level_store.rows_for_peer(3)
            assert len(rows) == 0

    def test_tombstoned_spheres_never_scored(self, network, rng):
        network.fabric.install_faults(FaultPlan(loss=0.0))
        crash_peer(network, 3)
        tombstone_peer(network, 3)
        result = network.range_query(rng.random(16), 0.8, origin_peer=0)
        assert 3 not in result.peer_scores


class TestPlanScope:
    def test_network_picks_up_ambient_plan(self):
        with plan_scope(FaultPlan(loss=0.25, seed=9)):
            fabric = Network()
        assert fabric.faults is not None
        assert fabric.faults.plan.loss == pytest.approx(0.25)

    def test_no_ambient_plan_outside_scope(self):
        fabric = Network()
        assert fabric.faults is None

    def test_scope_restores_previous(self):
        with plan_scope(FaultPlan(loss=0.1)):
            with plan_scope(FaultPlan(loss=0.2)):
                assert Network().faults.plan.loss == pytest.approx(0.2)
            assert Network().faults.plan.loss == pytest.approx(0.1)
        assert Network().faults is None


def test_explicit_plan_beats_ambient():
    with plan_scope(FaultPlan(loss=0.1)):
        fabric = Network(fault_plan=FaultPlan(loss=0.4))
    assert fabric.faults.plan.loss == pytest.approx(0.4)


def test_install_none_uninstalls():
    fabric = Network(fault_plan=FaultPlan(loss=0.3))
    assert fabric.faults is not None
    fabric.install_faults(None)
    assert fabric.faults is None
    assert "faults" not in fabric.snapshot()
