"""Tests for cohesion/separation quality metrics (Figure 11 machinery)."""

import numpy as np
import pytest

from repro.clustering.kmeans import kmeans
from repro.clustering.quality import cluster_quality, cohesion, separation
from repro.exceptions import ClusteringError


class TestCohesion:
    def test_zero_for_points_on_centroids(self):
        data = np.array([[0.0, 0.0], [10.0, 10.0]])
        result = kmeans(data, 2, rng=0)
        assert cohesion(data, result) == 0.0

    def test_positive_for_spread(self, rng):
        data = rng.normal(size=(40, 3))
        result = kmeans(data, 2, rng=0)
        assert cohesion(data, result) > 0

    def test_shape_mismatch(self, rng):
        data = rng.random((10, 2))
        result = kmeans(data, 2, rng=0)
        with pytest.raises(ClusteringError):
            cohesion(rng.random((5, 2)), result)


class TestSeparation:
    def test_single_cluster_zero(self, rng):
        result = kmeans(rng.random((10, 2)), 1, rng=0)
        assert separation(result) == 0.0

    def test_two_clusters_known_distance(self):
        data = np.vstack([np.zeros((5, 2)), np.full((5, 2), 3.0)])
        result = kmeans(data, 2, rng=0)
        assert np.isclose(separation(result), 3.0 * np.sqrt(2))


class TestClusterQuality:
    def test_tight_separated_is_small(self, rng):
        data = np.vstack(
            [
                rng.normal(0.0, 0.01, size=(20, 2)),
                rng.normal(10.0, 0.01, size=(20, 2)),
            ]
        )
        result = kmeans(data, 2, rng=0, n_init=3)
        assert cluster_quality(data, result) < 0.01

    def test_overlapping_is_larger(self, rng):
        tight = np.vstack(
            [
                rng.normal(0.0, 0.01, size=(20, 2)),
                rng.normal(10.0, 0.01, size=(20, 2)),
            ]
        )
        loose = rng.normal(0.0, 1.0, size=(40, 2))
        q_tight = cluster_quality(tight, kmeans(tight, 2, rng=0, n_init=3))
        q_loose = cluster_quality(loose, kmeans(loose, 2, rng=0, n_init=3))
        assert q_tight < q_loose

    def test_degenerate_all_same_point(self):
        data = np.ones((10, 2))
        result = kmeans(data, 2, rng=0)
        assert cluster_quality(data, result) == 0.0

    def test_single_cluster_spread_is_inf(self, rng):
        data = rng.random((10, 2))
        result = kmeans(data, 1, rng=0)
        assert cluster_quality(data, result) == float("inf")
