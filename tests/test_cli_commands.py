"""Smoke tests for the remaining CLI commands (tiny scales)."""

import pytest

from repro.cli import main


@pytest.mark.slow
class TestCliCommands:
    def test_fig9(self, capsys):
        assert main(["fig9", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "original" in out

    def test_cknob(self, capsys):
        assert main(["cknob", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "C-knob" in out

    def test_stats(self, capsys):
        assert main(["stats", "--peers", "4", "--churn", "1"]) == 0
        out = capsys.readouterr().out
        assert "per-level store health" in out
        assert "tombstones" in out

    def test_stats_json(self, capsys):
        import json

        assert main(["stats", "--peers", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["levels"]
        for level_stats in payload["stats"]["levels"].values():
            assert "store" in level_stats

    def test_fig8c(self, capsys):
        assert main(["fig8c", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8c" in out
        assert "CAN (full dim)" in out

    def test_construction(self, capsys):
        assert main(["construction", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_fig8b_with_plot(self, capsys):
        assert main(["fig8b", "--peers", "6", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "hops/item vs total items" in out
        assert "o=Hyper-M" in out

    def test_fig10c_with_plot(self, capsys):
        assert main(["fig10c", "--peers", "8", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "recall vs new-document fraction" in out
