"""Smoke tests for the remaining CLI commands (tiny scales)."""

import pytest

from repro.cli import main


@pytest.mark.slow
class TestCliCommands:
    def test_fig9(self, capsys):
        assert main(["fig9", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "original" in out

    def test_cknob(self, capsys):
        assert main(["cknob", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "C-knob" in out

    def test_stats(self, capsys):
        assert main(["stats", "--peers", "4", "--churn", "1"]) == 0
        out = capsys.readouterr().out
        assert "per-level store health" in out
        assert "tombstones" in out

    def test_stats_json(self, capsys):
        import json

        assert main(["stats", "--peers", "4", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["stats"]["levels"]
        for level_stats in payload["stats"]["levels"].values():
            assert "store" in level_stats

    def test_fig8c(self, capsys):
        assert main(["fig8c", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8c" in out
        assert "CAN (full dim)" in out

    def test_construction(self, capsys):
        assert main(["construction", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_fig8b_with_plot(self, capsys):
        assert main(["fig8b", "--peers", "6", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "hops/item vs total items" in out
        assert "o=Hyper-M" in out

    def test_fig10c_with_plot(self, capsys):
        assert main(["fig10c", "--peers", "8", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "recall vs new-document fraction" in out


@pytest.mark.slow
class TestCliFaults:
    def test_faults_sweep(self, capsys):
        assert main([
            "faults", "--peers", "8", "--loss", "0", "0.1", "--seed", "4",
        ]) == 0
        out = capsys.readouterr().out
        assert "Resilience" in out
        assert "recall_mean" in out

    def test_faults_json(self, capsys):
        import json

        assert main([
            "faults", "--peers", "8", "--loss", "0.1", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "faults"
        assert payload["records"][0]["loss"] == 0.1
        assert 0.0 <= payload["records"][0]["recall_mean"] <= 1.0

    def test_fault_plan_flag(self, capsys):
        """--fault-plan makes any experiment run on a lossy fabric."""
        assert main([
            "fig10c", "--peers", "6",
            "--fault-plan", "loss=0.1,seed=3",
        ]) == 0
        out = capsys.readouterr().out
        assert "Figure 10c" in out

    def test_fault_plan_rejects_bad_spec(self):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            main(["fig9", "--peers", "6", "--fault-plan", "warp=9"])


@pytest.mark.slow
class TestCliServeBench:
    _ARGS = [
        "serve-bench", "--peers", "6", "--queries", "16",
        "--distinct", "6", "--repeats", "1",
    ]

    def test_serve_bench_table(self, capsys):
        assert main(self._ARGS) == 0
        out = capsys.readouterr().out
        assert "serve-bench" in out
        assert "hot speedup" in out
        assert "open-loop p99" in out

    def test_serve_bench_json_and_out(self, capsys, tmp_path):
        import json

        out_path = tmp_path / "serve.json"
        assert main(self._ARGS + ["--json", "--out", str(out_path)]) == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout[stdout.index("{"):])
        assert payload["benchmark"] == "query_serve"
        assert payload["speedup"] > 0
        assert payload["load"]["requests"] == 16
        saved = json.loads(out_path.read_text())
        assert saved["benchmark"] == "query_serve"
