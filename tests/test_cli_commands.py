"""Smoke tests for the remaining CLI commands (tiny scales)."""

import pytest

from repro.cli import main


@pytest.mark.slow
class TestCliCommands:
    def test_fig9(self, capsys):
        assert main(["fig9", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 9" in out
        assert "original" in out

    def test_cknob(self, capsys):
        assert main(["cknob", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "C-knob" in out

    def test_fig8c(self, capsys):
        assert main(["fig8c", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "Figure 8c" in out
        assert "CAN (full dim)" in out

    def test_construction(self, capsys):
        assert main(["construction", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "makespan" in out

    def test_fig8b_with_plot(self, capsys):
        assert main(["fig8b", "--peers", "6", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "hops/item vs total items" in out
        assert "o=Hyper-M" in out

    def test_fig10c_with_plot(self, capsys):
        assert main(["fig10c", "--peers", "8", "--plot"]) == 0
        out = capsys.readouterr().out
        assert "recall vs new-document fraction" in out
