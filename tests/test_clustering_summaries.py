"""Tests for per-peer multiresolution summaries."""

import numpy as np
import pytest

from repro.clustering.summaries import summarize_peer_data
from repro.exceptions import ClusteringError


class TestSummarizePeerData:
    def test_level_structure(self, rng):
        data = rng.random((40, 16))
        summary = summarize_peer_data(data, n_clusters=4, levels_used=3, rng=0)
        assert [str(l) for l in summary.levels] == ["A", "D0", "D1"]
        assert summary.dimensionality == 16

    def test_spheres_per_level_at_most_k(self, rng):
        data = rng.random((40, 16))
        summary = summarize_peer_data(data, n_clusters=4, levels_used=3, rng=0)
        for level in summary.levels:
            assert 1 <= len(summary.spheres[level]) <= 4

    def test_item_counts_per_level(self, rng):
        data = rng.random((25, 8))
        summary = summarize_peer_data(data, n_clusters=5, levels_used=2, rng=0)
        for level in summary.levels:
            assert summary.items_summarised(level) == 25

    def test_sphere_dimensionality_matches_level(self, rng):
        data = rng.random((20, 16))
        summary = summarize_peer_data(data, n_clusters=3, levels_used=4, rng=0)
        for level in summary.levels:
            for sphere in summary.spheres[level]:
                assert sphere.dimensionality == level.dimensionality

    def test_labels_cover_all_items(self, rng):
        data = rng.random((30, 8))
        summary = summarize_peer_data(data, n_clusters=4, levels_used=2, rng=0)
        for level in summary.levels:
            assert summary.labels[level].shape == (30,)

    def test_fewer_items_than_clusters(self, rng):
        data = rng.random((3, 8))
        summary = summarize_peer_data(data, n_clusters=10, levels_used=2, rng=0)
        for level in summary.levels:
            assert len(summary.spheres[level]) <= 3

    def test_deterministic_with_seed(self, rng):
        data = rng.random((20, 8))
        a = summarize_peer_data(data, n_clusters=3, levels_used=2, rng=11)
        b = summarize_peer_data(data, n_clusters=3, levels_used=2, rng=11)
        for level in a.levels:
            assert np.array_equal(a.labels[level], b.labels[level])

    def test_invalid_clusters(self, rng):
        with pytest.raises(ClusteringError):
            summarize_peer_data(rng.random((5, 8)), n_clusters=0, levels_used=2)

    def test_total_spheres(self, rng):
        data = rng.random((50, 16))
        summary = summarize_peer_data(data, n_clusters=5, levels_used=4, rng=0)
        assert summary.total_spheres == sum(
            len(summary.spheres[l]) for l in summary.levels
        )

    def test_every_item_inside_its_sphere_every_level(self, rng):
        """The premise behind the no-false-dismissal guarantee."""
        from repro.wavelets.multiresolution import decompose_dataset

        data = rng.random((30, 16))
        summary = summarize_peer_data(data, n_clusters=4, levels_used=4, rng=0)
        decomposition = decompose_dataset(data)
        for level in summary.levels:
            coeffs = decomposition[level]
            labels = summary.labels[level]
            spheres = summary.spheres[level]
            # Map sphere centroid -> sphere for coverage checking.
            for i in range(30):
                covered = any(s.contains(coeffs[i]) for s in spheres)
                assert covered, f"item {i} uncovered at level {level}"
