"""Tests for zone/peer load accounting and the generation-tagged loadmap."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.obs.loadmap import LoadLedger, NodeLoad, build_loadmap
from repro.utils.stats import gini


class TestGini:
    def test_empty_and_all_zero(self):
        assert gini([]) == 0.0
        assert gini([0.0, 0.0, 0.0]) == 0.0

    def test_uniform_is_zero(self):
        assert gini([5.0, 5.0, 5.0, 5.0]) == pytest.approx(0.0)

    def test_full_concentration(self):
        # One node carries everything: gini -> (n - 1) / n.
        assert gini([0.0, 0.0, 0.0, 1.0]) == pytest.approx(0.75)

    def test_known_value(self):
        assert gini([1.0, 2.0, 3.0, 4.0]) == pytest.approx(0.25)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gini([1.0, -1.0])


class TestLoadLedger:
    def test_clean_charge(self):
        ledger = LoadLedger()
        ledger.charge(1, 2, 100)
        src, dst = ledger.node_load(1), ledger.node_load(2)
        assert (src.msgs_out, src.bytes_out) == (1, 100)
        assert (dst.msgs_in, dst.bytes_in) == (1, 100)
        assert (src.msgs_in, dst.msgs_out) == (0, 0)
        assert src.drops == dst.drops == 0

    def test_retransmits_and_duplicates_burn_both_radios(self):
        ledger = LoadLedger()
        ledger.charge(1, 2, 10, retransmits=2, duplicates=1)
        src, dst = ledger.node_load(1), ledger.node_load(2)
        # 1 primary + 2 retransmits + 1 duplicate = 4 frames on the air.
        assert (src.msgs_out, src.bytes_out) == (4, 40)
        assert (dst.msgs_in, dst.bytes_in) == (4, 40)
        assert src.retransmits == dst.retransmits == 2
        assert src.duplicates == dst.duplicates == 1

    def test_dropped_frame_costs_sender_only(self):
        ledger = LoadLedger()
        ledger.charge(1, 2, 100, dropped=True)
        src, dst = ledger.node_load(1), ledger.node_load(2)
        assert (src.msgs_out, src.bytes_out) == (1, 100)
        assert (dst.msgs_in, dst.bytes_in) == (0, 0)
        assert src.drops == dst.drops == 1

    def test_query_hits(self):
        ledger = LoadLedger()
        ledger.note_query_hit(7)
        ledger.note_query_hit(7, 2)
        assert ledger.node_load(7).query_hits == 3

    def test_untouched_node_is_zeroed(self):
        load = LoadLedger().node_load(99)
        assert isinstance(load, NodeLoad)
        assert load.bytes_total == 0
        assert load.to_record() == {
            "msgs_in": 0, "msgs_out": 0, "bytes_in": 0, "bytes_out": 0,
            "retransmits": 0, "duplicates": 0, "drops": 0, "query_hits": 0,
        }

    def test_snapshot_totals(self):
        ledger = LoadLedger()
        ledger.charge(1, 2, 10)
        ledger.charge(2, 3, 20, retransmits=1)
        ledger.charge(3, 1, 30, dropped=True)
        ledger.note_query_hit(2)
        assert ledger.snapshot() == {
            "nodes": 3,
            "msgs": 1 + 2 + 1,
            "bytes": 10 + 40 + 30,
            "retransmits": 2,  # both endpoints of the lossy link
            "duplicates": 0,
            "drops": 2,
            "query_hits": 1,
        }


def _build(seed=0, n_peers=4, dim=16):
    config = HyperMConfig(levels_used=3, n_clusters=3)
    net = HyperMNetwork(dim, config, rng=seed)
    data_rng = np.random.default_rng(seed + 1)
    for __ in range(n_peers):
        net.add_peer(data_rng.random((10, dim)))
    net.publish_all()
    rng = np.random.default_rng(seed)
    for __ in range(3):
        net.range_query(rng.random(dim), 0.6, max_peers=2)
    return net


class TestBuildLoadmap:
    @pytest.fixture(scope="class")
    def network(self):
        return _build(seed=6)

    @pytest.fixture(scope="class")
    def loadmap(self, network):
        return build_loadmap(network, top_k=5)

    def test_sections(self, loadmap):
        assert set(loadmap) == {
            "generations", "zones", "peers", "sphere_heat", "hotspots",
            "skew",
        }

    def test_generations_match_level_stores(self, network, loadmap):
        assert loadmap["generations"] == {
            str(level): overlay.level_store.generation
            for level, overlay in network.overlays.items()
        }

    def test_zone_rows_cover_every_overlay_node(self, network, loadmap):
        expected = sum(
            len(overlay.node_ids) for overlay in network.overlays.values()
        )
        assert len(loadmap["zones"]) == expected
        # Sorted per level, each node attributed to a live peer.
        for row in loadmap["zones"]:
            assert row["peer"] in network.peers
            assert row["zones"] >= 1

    def test_traffic_conservation(self, network, loadmap):
        # On a clean fabric every charged frame is a primary transmit, so
        # the zone rows must re-add to exactly the fabric-wide totals.
        metrics = network.fabric.metrics
        assert sum(r["msgs_out"] for r in loadmap["zones"]) == (
            metrics.total_messages
        )
        assert sum(r["bytes_out"] for r in loadmap["zones"]) == (
            metrics.total_bytes
        )
        assert sum(r["bytes_in"] for r in loadmap["zones"]) == (
            metrics.total_bytes
        )

    def test_peer_rows_aggregate_zone_rows(self, network, loadmap):
        assert [r["peer"] for r in loadmap["peers"]] == sorted(network.peers)
        for field in ("msgs_in", "bytes_out", "store_rows", "query_hits"):
            assert sum(r[field] for r in loadmap["peers"]) == (
                sum(r[field] for r in loadmap["zones"])
            )
        for row in loadmap["peers"]:
            assert row["online"] is True
            assert row["nodes"] == len(network.overlays)

    def test_energy_attribution(self, network, loadmap):
        total = sum(r["energy"] for r in loadmap["zones"])
        assert total == pytest.approx(network.fabric.energy.total)

    def test_hotspots_ranked_by_bytes(self, loadmap):
        zones = loadmap["hotspots"]["zones"]
        assert 0 < len(zones) <= 5
        ranks = [row["bytes"] for row in zones]
        assert ranks == sorted(ranks, reverse=True)
        peers = loadmap["hotspots"]["peers"]
        assert [r["bytes"] for r in peers] == sorted(
            (r["bytes"] for r in peers), reverse=True
        )

    def test_skew_blocks(self, loadmap):
        for block in loadmap["skew"].values():
            assert 0.0 <= block["gini"] < 1.0
            assert block["max"] >= block["mean"] >= 0.0
            if block["mean"] > 0:
                assert block["max_over_mean"] == pytest.approx(
                    block["max"] / block["mean"]
                )

    def test_snapshots_of_same_state_are_identical(self, network, loadmap):
        assert build_loadmap(network, top_k=5) == loadmap
