"""Direct tests for the shared Morton-overlay machinery."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.overlay.morton import (
    MortonNode,
    bits_per_dim,
    covering_intervals,
    morton_key,
)


class TestBitsPerDim:
    def test_one_dim_gets_max(self):
        assert bits_per_dim(1) == 16

    def test_high_dim_floors_at_three(self):
        assert bits_per_dim(64) == 3
        assert bits_per_dim(512) == 3

    def test_total_bits_bounded(self):
        for dim in (1, 2, 4, 8):
            assert dim * bits_per_dim(dim) <= 32


class TestMortonKey:
    @given(
        x=st.floats(min_value=0.0, max_value=1.0),
        y=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_in_unit_interval(self, x, y):
        key = morton_key(np.array([x, y]), 8)
        assert 0.0 <= key < 1.0

    def test_monotone_in_one_dim(self):
        keys = [morton_key(np.array([v]), 10) for v in np.linspace(0, 1, 50)]
        assert keys == sorted(keys)

    def test_first_dim_most_significant(self):
        low = morton_key(np.array([0.1, 0.9]), 8)
        high = morton_key(np.array([0.9, 0.1]), 8)
        assert high > low


class TestCoveringIntervals:
    def test_small_box_few_intervals(self):
        intervals = covering_intervals(
            np.array([0.4, 0.4]), np.array([0.45, 0.45]), 8
        )
        assert 1 <= len(intervals) <= 64

    def test_total_measure_at_least_box(self):
        lows = np.array([0.2, 0.3])
        highs = np.array([0.5, 0.6])
        intervals = covering_intervals(lows, highs, 8)
        measure = sum(hi - lo for lo, hi in intervals)
        box_volume = float(np.prod(highs - lows))
        assert measure >= box_volume - 1e-9  # a cover, never an undercount

    def test_degenerate_point_box(self):
        p = np.array([0.5, 0.5])
        intervals = covering_intervals(p, p, 8)
        key = morton_key(p, 8)
        assert any(lo <= key < hi + 1e-12 for lo, hi in intervals)

    @given(seed=st.integers(0, 300))
    @settings(max_examples=15)
    def test_max_cells_budget_respected(self, seed):
        rng = np.random.default_rng(seed)
        lows = rng.random(2) * 0.6
        highs = np.minimum(lows + rng.random(2) * 0.4, 1.0)
        intervals = covering_intervals(lows, highs, 8, max_cells=16)
        # Merged intervals never exceed the cell budget.
        assert len(intervals) <= 16 * 4


class TestMortonNode:
    def test_absorb_dedupes_shared_rows(self):
        from repro.index import LevelStore

        store = LevelStore(1)
        node = MortonNode(1)
        node.attach_store(store)
        row = store.add(np.array([0.5]), 0.0, "x")
        node.add_row(row)
        assert node.absorb_rows([row, row]) == 0  # already held: no dupes
        assert node.load == 1

    def test_replicated_row_held_once_per_node(self):
        from repro.index import LevelStore

        store = LevelStore(1)
        a, b = MortonNode(1), MortonNode(2)
        a.attach_store(store)
        b.attach_store(store)
        row = store.add(np.array([0.5]), 0.1, "x")
        a.add_row(row)
        b.add_row(row)
        assert a.load == b.load == 1
        assert store.n_live == 1  # one row, two memberships — no copies
        assert a.store[0].entry_id == b.store[0].entry_id

    def test_drop_entries(self):
        from repro.overlay.base import StoredEntry

        node = MortonNode(1)
        for v in range(5):
            node.add_entry(
                StoredEntry(key=np.array([v / 10]), radius=0.0, value=v)
            )
        removed = node.drop_entries(lambda e: e.value % 2 == 0)
        assert removed == 3
        assert node.load == 2
