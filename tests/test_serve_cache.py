"""Unit tests for the serving caches and the query-log miner."""

import numpy as np
import pytest

from repro.core.results import ClusterRecord
from repro.exceptions import ValidationError
from repro.index import LevelStore
from repro.serve import CandidateCache, QueryLogMiner, candidate_key
from repro.serve.cache import TranslationCache


def _store_with_rows(n: int, d: int = 3, seed: int = 0):
    rng = np.random.default_rng(seed)
    store = LevelStore(d)
    rows = [
        store.add(
            rng.random(d), 0.2,
            ClusterRecord(peer_id=i % 4, items=5, level_name="A"),
        )
        for i in range(n)
    ]
    return store, rows


def _snapshot(store, rows):
    return store.candidate_set(np.asarray(rows, dtype=np.int64))


class TestCandidateCache:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValidationError):
            CandidateCache(0)

    def test_lookup_accounting(self):
        store, rows = _store_with_rows(4)
        cache = CandidateCache(8)
        ck = candidate_key(0, store._keys[rows[0]], 0.5)
        assert cache.lookup(ck) is None
        cache.store(ck, _snapshot(store, rows))
        assert cache.lookup(ck) is not None
        assert cache.snapshot() == {
            "size": 1, "capacity": 8, "hits": 1, "misses": 1,
            "stale": 0, "evictions": 0,
        }

    def test_stale_entry_dropped_not_served(self):
        store, rows = _store_with_rows(4)
        cache = CandidateCache(8)
        ck = candidate_key(0, store._keys[rows[0]], 0.5)
        cache.store(ck, _snapshot(store, rows))
        store.add(  # generation bump stales the snapshot
            np.zeros(3), 0.1,
            ClusterRecord(peer_id=0, items=1, level_name="A"),
        )
        assert cache.lookup(ck) is None
        stats = cache.snapshot()
        assert stats["stale"] == 1
        assert stats["size"] == 0

    def test_peek_skips_hit_miss_accounting(self):
        store, rows = _store_with_rows(3)
        cache = CandidateCache(4)
        ck = candidate_key(0, store._keys[rows[0]], 0.5)
        assert cache.peek(ck) is None
        cache.store(ck, _snapshot(store, rows))
        assert cache.peek(ck) is not None
        stats = cache.snapshot()
        assert stats["hits"] == 0 and stats["misses"] == 0

    def test_lru_eviction_past_capacity(self):
        store, rows = _store_with_rows(6)
        cache = CandidateCache(2)
        cs = _snapshot(store, rows)
        for i in range(4):
            cache.store(candidate_key(i, store._keys[rows[0]], 0.1), cs)
        assert len(cache) == 2
        assert cache.evictions == 2
        # The two most recent keys survive.
        assert cache.peek(
            candidate_key(3, store._keys[rows[0]], 0.1)
        ) is not None
        assert cache.peek(
            candidate_key(0, store._keys[rows[0]], 0.1)
        ) is None

    def test_drop_stale_sweeps_everything_stale(self):
        store, rows = _store_with_rows(4)
        cache = CandidateCache(8)
        cs = _snapshot(store, rows)
        for i in range(3):
            cache.store(candidate_key(i, store._keys[rows[0]], 0.1), cs)
        store.add(
            np.zeros(3), 0.1,
            ClusterRecord(peer_id=0, items=1, level_name="A"),
        )
        assert cache.drop_stale() == 3
        assert len(cache) == 0


class TestTranslationCache:
    def test_hits_on_repeat_queries(self, tiny_histogram_workload):
        network = tiny_histogram_workload.network
        cache = TranslationCache(8)
        query = tiny_histogram_workload.data[0]
        first = cache.translate(network, query)
        second = cache.translate(network, query)
        assert first is second
        assert cache.snapshot()["hits"] == 1
        for level in network.levels:
            assert level in first

    def test_bounded(self, tiny_histogram_workload):
        network = tiny_histogram_workload.network
        cache = TranslationCache(2)
        for row in tiny_histogram_workload.data[:5]:
            cache.translate(network, row)
        assert len(cache) == 2


class TestQueryLogMiner:
    def test_ranks_hot_keys_by_frequency(self):
        miner = QueryLogMiner(grid=4)
        hot = np.full(3, 0.5)
        cold = np.full(3, 0.1)
        for __ in range(5):
            miner.observe("A", 0, hot, 0.2)
        miner.observe("A", 0, cold, 0.2)
        ranked = miner.hot_keys(2)
        assert ranked[0] == candidate_key(0, hot, 0.2)
        assert len(ranked) == 2
        assert miner.hot_keys(0) == []

    def test_hot_regions_decay(self):
        miner = QueryLogMiner(grid=4, decay_every=8)
        old = np.full(2, 0.9)
        for __ in range(4):
            miner.observe("D0", 0, old, 0.1)
        fresh = np.full(2, 0.1)
        for __ in range(4):  # observation 8 triggers the halving
            miner.observe("D0", 0, fresh, 0.1)
        regions = {tuple(r["cell"]): r["count"] for r in miner.hot_regions(4)}
        assert regions[(3, 3)] == 2.0  # 4 halved once
        assert regions[(0, 0)] == 2.0

    def test_key_table_is_bounded(self):
        miner = QueryLogMiner(grid=4, capacity=3)
        rng = np.random.default_rng(0)
        for __ in range(10):
            miner.observe("A", 0, rng.random(2), 0.1)
        assert miner.snapshot()["distinct_keys"] == 3

    def test_rejects_bad_knobs(self):
        with pytest.raises(ValidationError):
            QueryLogMiner(grid=0)
        with pytest.raises(ValidationError):
            QueryLogMiner(capacity=0)
