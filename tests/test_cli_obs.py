"""Tests for the CLI observability surface: --json, trace, profile,
and the kwargs-filtering contract between commands and runners."""

import json
import warnings

import pytest

from repro import cli
from repro.cli import (
    _COMMANDS,
    _SIGNATURE_CACHE,
    _common,
    _filter_kwargs,
    build_parser,
    main,
)

RUNNERS = [
    cli.run_fig8a, cli.run_fig8b, cli.run_fig8c, cli.run_fig9,
    cli.run_fig10a, cli.run_fig10b, cli.run_fig10c, cli.run_c_knob,
    cli.run_fig11,
]


class TestFilterKwargs:
    @pytest.mark.parametrize("func", RUNNERS, ids=lambda f: f.__name__)
    def test_every_runner_accepts_the_common_param_dict(self, func):
        """Every registered experiment must digest the common scale/seed
        dict without warnings — silently dropping a *common* knob is fine,
        but nothing in the common dict may be flagged as unexpected."""
        args = build_parser().parse_args(["fig8a"])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            kwargs = _filter_kwargs(func, _common(args))
        assert "rng" in kwargs

    def test_warns_on_misspelled_override(self):
        args = build_parser().parse_args(["fig8a"])
        params = _common(args, n_peersss=3)
        with pytest.warns(UserWarning, match="n_peersss"):
            kwargs = _filter_kwargs(cli.run_fig8a, params)
        assert "n_peersss" not in kwargs

    def test_signatures_are_cached(self):
        _filter_kwargs(cli.run_fig11, {})
        assert cli.run_fig11 in _SIGNATURE_CACHE
        cached = _SIGNATURE_CACHE[cli.run_fig11]
        _filter_kwargs(cli.run_fig11, {"rng": 0})
        assert _SIGNATURE_CACHE[cli.run_fig11] is cached


class TestJsonFlag:
    def test_experiment_json_payload(self, capsys):
        assert main(["fig11", "--peers", "5", "--seed", "1", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "fig11"
        assert payload["scale"] == "quick"
        assert payload["seed"] == 1
        assert payload["records"], "expected at least one record"
        assert {"counters", "gauges", "histograms"} <= set(payload["metrics"])
        spaces = {record["space"] for record in payload["records"]}
        assert "original" in spaces

    def test_json_metrics_capture_publish_counters(self, capsys):
        assert main(["fig8a", "--peers", "6", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        counters = payload["metrics"]["counters"]
        assert counters.get("publish.operations", 0) > 0
        assert counters.get("publish.spheres", 0) > 0


class TestProfileCommand:
    def test_profile_prints_phase_table(self, capsys):
        assert main(["profile", "fig8a", "--peers", "6"]) == 0
        out = capsys.readouterr().out
        assert "profile — fig8a" in out
        assert "phase" in out and "self_s" in out and "hops" in out
        assert "publish" in out
        assert "metrics snapshot" in out

    def test_profile_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["profile", "fig99"])


class TestTraceCommand:
    def test_trace_writes_jsonl(self, capsys, tmp_path):
        out_path = tmp_path / "trace.jsonl"
        assert main(
            ["trace", "fig8a", "--peers", "6", "--out", str(out_path)]
        ) == 0
        printed = capsys.readouterr().out
        assert "spans" in printed
        lines = out_path.read_text().splitlines()
        assert lines
        records = [json.loads(line) for line in lines]
        assert all("span" in record for record in records)
        # fig8a publishes peers: the full publish pipeline must be there.
        names = {record["span"] for record in records}
        assert "publish" in names
        assert "dwt" in names
        assert any(name.startswith("kmeans[") for name in names)
        assert any(name.startswith("can_insert[") for name in names)

    def test_tracing_is_disabled_again_after_trace_run(self):
        from repro.obs.trace import state

        assert state.recorder.enabled is False


class TestAllJson:
    def test_parser_accepts_json_on_all(self):
        args = build_parser().parse_args(["all", "--json"])
        assert args.json is True
