"""Integration and property tests for the CAN overlay.

The key invariants: zones always tile the key space exactly; greedy
routing reaches the owner from any start; sphere replication covers every
zone the sphere overlaps; range queries are complete.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import EmptyNetworkError, ValidationError
from repro.net.messages import MessageKind
from repro.overlay.can import CANNetwork
from repro.overlay.can.routing import route_to_owner


class TestMembership:
    def test_bootstrap_owns_everything(self):
        can = CANNetwork(2, rng=0)
        first = can.join()
        assert can.node(first).zone.volume == 1.0

    def test_zone_volumes_always_tile(self):
        can = CANNetwork(3, rng=1)
        for __ in range(40):
            can.join()
            assert np.isclose(can.total_zone_volume(), 1.0)

    @given(seed=st.integers(0, 1000), dim=st.integers(1, 4))
    @settings(max_examples=15)
    def test_every_point_has_unique_owner(self, seed, dim):
        can = CANNetwork(dim, rng=seed)
        can.grow(12)
        rng = np.random.default_rng(seed + 1)
        for __ in range(30):
            p = rng.random(dim)
            owners = [
                nid for nid, z in can.zones().items() if z.contains(p)
            ]
            assert len(owners) == 1

    def test_neighbor_symmetry(self):
        can = CANNetwork(2, rng=3)
        can.grow(25)
        for node_id in can.node_ids:
            node = can.node(node_id)
            for neighbor_id in node.neighbors:
                back = can.node(neighbor_id).neighbors
                assert node_id in back, (node_id, neighbor_id)

    def test_neighbor_zones_are_current(self):
        can = CANNetwork(2, rng=4)
        can.grow(20)
        for node_id in can.node_ids:
            node = can.node(node_id)
            for neighbor_id, snapshot in node.neighbors.items():
                actual = can.node(neighbor_id).zone
                assert len(snapshot) == 1
                assert np.array_equal(snapshot[0].lows, actual.lows)
                assert np.array_equal(snapshot[0].highs, actual.highs)

    def test_neighbor_relation_holds(self):
        can = CANNetwork(2, rng=5)
        can.grow(20)
        for node_id in can.node_ids:
            node = can.node(node_id)
            for neighbor_id, zones in node.neighbors.items():
                assert any(node.zone.is_neighbor(z) for z in zones)

    def test_join_at_explicit_point(self):
        can = CANNetwork(2, rng=6)
        can.join()
        new_id = can.join(np.array([0.9, 0.9]))
        assert can.node(new_id).zone.contains(np.array([0.9, 0.9]))

    def test_owner_of_empty_network(self):
        with pytest.raises(EmptyNetworkError):
            CANNetwork(2).owner_of(np.zeros(2))


class TestRouting:
    def test_reaches_owner_from_every_node(self, small_can):
        rng = np.random.default_rng(0)
        for __ in range(20):
            p = rng.random(2)
            expected = small_can.owner_of(p)
            for start in small_can.node_ids:
                owner, path = route_to_owner(small_can, start, p)
                assert owner == expected
                assert len(path) <= len(small_can.node_ids)

    def test_zero_hops_when_local(self, small_can):
        node_id = small_can.node_ids[3]
        center = small_can.node(node_id).zone.center
        owner, path = route_to_owner(small_can, node_id, center)
        assert owner == node_id
        assert path == []

    def test_high_dimensional_routing(self):
        can = CANNetwork(32, rng=7)
        can.grow(20)
        rng = np.random.default_rng(8)
        for __ in range(10):
            p = rng.random(32)
            owner, __path = route_to_owner(can, can.node_ids[0], p)
            assert can.node(owner).zone.contains(p)


class TestInsertLookup:
    def test_point_roundtrip(self, small_can):
        ids = small_can.node_ids
        small_can.insert(ids[0], [0.3, 0.7], "payload")
        receipt = small_can.lookup(ids[5], [0.3, 0.7])
        assert [e.value for e in receipt.entries] == ["payload"]

    def test_insert_stored_at_owner(self, small_can):
        key = np.array([0.42, 0.17])
        receipt = small_can.insert(small_can.node_ids[0], key, "x")
        assert receipt.owner == small_can.owner_of(key)
        assert any(
            e.value == "x" for e in small_can.node(receipt.owner).store
        )

    def test_point_insert_no_replicas(self, small_can):
        receipt = small_can.insert(small_can.node_ids[0], [0.5, 0.5], "x")
        assert receipt.replicas == 0
        assert receipt.total_hops == receipt.routing_hops

    def test_insert_outside_cube_rejected(self, small_can):
        with pytest.raises(ValidationError):
            small_can.insert(small_can.node_ids[0], [1.5, 0.5], "x")

    def test_metrics_charged(self):
        can = CANNetwork(2, rng=9)
        can.grow(10)
        before = can.fabric.metrics.kind(MessageKind.INSERT).hops
        receipt = can.insert(can.node_ids[0], [0.9, 0.1], "x")
        after = can.fabric.metrics.kind(MessageKind.INSERT).hops
        assert after - before == receipt.routing_hops


class TestSphereReplication:
    def test_replicated_to_every_overlapping_zone(self, small_can):
        center = np.array([0.5, 0.5])
        radius = 0.25
        small_can.insert(small_can.node_ids[0], center, "s", radius=radius)
        for node_id in small_can.node_ids:
            node = small_can.node(node_id)
            overlaps = node.zone.intersects_sphere(center, radius)
            holds = any(e.value == "s" for e in node.store)
            assert holds == overlaps, node_id

    def test_replica_count_in_receipt(self, small_can):
        receipt = small_can.insert(
            small_can.node_ids[0], [0.5, 0.5], "s", radius=0.3
        )
        holders = sum(
            1
            for nid in small_can.node_ids
            if any(e.value == "s" for e in small_can.node(nid).store)
        )
        assert holders == receipt.replicas + 1

    def test_tiny_sphere_single_holder(self, small_can):
        receipt = small_can.insert(
            small_can.node_ids[0], [0.31, 0.29], "tiny", radius=1e-6
        )
        # A tiny sphere still replicates if it touches a boundary, but
        # almost surely lands inside one zone.
        assert receipt.replicas <= 3


class TestRangeQuery:
    def test_completeness_against_brute_force(self, small_can, rng):
        points = rng.random((80, 2))
        for i, p in enumerate(points):
            small_can.insert(small_can.node_ids[i % 16], p, i)
        for __ in range(10):
            center = rng.random(2)
            radius = rng.uniform(0.05, 0.4)
            receipt = small_can.range_query(
                small_can.node_ids[0], center, radius
            )
            got = sorted(
                e.value for e in receipt.entries if isinstance(e.value, int)
            )
            want = sorted(
                i
                for i, p in enumerate(points)
                if np.linalg.norm(p - center) <= radius + 1e-12
            )
            assert got == want

    def test_finds_replicated_spheres_once(self, small_can):
        small_can.insert(small_can.node_ids[0], [0.5, 0.5], "s", radius=0.3)
        receipt = small_can.range_query(
            small_can.node_ids[1], np.array([0.4, 0.6]), 0.2
        )
        assert [e.value for e in receipt.entries].count("s") == 1

    def test_zero_radius_query(self, small_can):
        small_can.insert(small_can.node_ids[0], [0.5, 0.5], "pt")
        receipt = small_can.range_query(
            small_can.node_ids[0], np.array([0.5, 0.5]), 0.0
        )
        assert any(e.value == "pt" for e in receipt.entries)

    def test_visits_only_intersecting_zones_plus_start(self, small_can):
        center = np.array([0.2, 0.2])
        radius = 0.1
        receipt = small_can.range_query(
            small_can.node_ids[0], center, radius
        )
        for visited in receipt.nodes_visited[1:]:
            zone = small_can.node(visited).zone
            assert zone.intersects_sphere(center, radius)

    def test_hops_accounting(self, small_can):
        receipt = small_can.range_query(
            small_can.node_ids[0], np.array([0.5, 0.5]), 0.2
        )
        assert receipt.total_hops == receipt.routing_hops + receipt.flood_hops
        # Flood hops = nodes visited beyond the first.
        assert receipt.flood_hops == len(receipt.nodes_visited) - 1
