"""Tests for span tracing: nesting, scheduler interplay, JSONL round-trip."""

import json

import pytest

from repro.net.events import Scheduler
from repro.obs.profile import flame_summary, phase_rows, span_tree
from repro.obs.trace import (
    NULL_RECORDER,
    NULL_SPAN,
    NullRecorder,
    TraceRecorder,
    read_jsonl,
    set_recorder,
    state,
    tracing,
)


class TestSpanNesting:
    def test_parent_child_depth(self):
        rec = TraceRecorder(clock=lambda: 0.0)
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                pass
        assert outer.parent_id is None
        assert outer.depth == 0
        assert inner.parent_id == outer.span_id
        assert inner.depth == 1
        assert [s.name for s in rec.spans] == ["outer", "inner"]

    def test_annotate_targets_innermost(self):
        rec = TraceRecorder(clock=lambda: 0.0)
        with rec.span("outer") as outer:
            with rec.span("inner") as inner:
                rec.annotate(items=7)
        assert inner.attrs["items"] == 7
        assert "items" not in outer.attrs

    def test_add_accumulates_onto_all_open_spans(self):
        rec = TraceRecorder(clock=lambda: 0.0)
        with rec.span("outer") as outer:
            rec.add(hops=1)
            with rec.span("inner") as inner:
                rec.add(hops=2, bytes=10)
        assert outer.counts["hops"] == 3
        assert outer.counts["bytes"] == 10
        assert inner.counts["hops"] == 2

    def test_exception_closes_span_and_flags_error(self):
        rec = TraceRecorder(clock=lambda: 0.0)
        with pytest.raises(RuntimeError):
            with rec.span("boom"):
                raise RuntimeError("nope")
        assert rec.open_depth == 0
        assert rec.spans[0].attrs["error"] == "RuntimeError"


class TestSchedulerInterplay:
    def test_simultaneous_events_do_not_interleave_spans(self):
        """Two events at the same virtual time each open+close their own
        span inside their callback; the spans must come out as siblings
        (depth 0), never nested into each other."""
        sched = Scheduler()
        rec = TraceRecorder(clock=lambda: sched.now)

        def handler(name):
            def run():
                with rec.span(name):
                    pass
            return run

        sched.schedule_at(1.0, handler("event_a"))
        sched.schedule_at(1.0, handler("event_b"))
        sched.run()
        assert [s.name for s in rec.spans] == ["event_a", "event_b"]
        assert all(s.depth == 0 for s in rec.spans)
        assert all(s.parent_id is None for s in rec.spans)
        # Simulated timestamps coincide; ordering still follows FIFO seq.
        assert rec.spans[0].start == rec.spans[1].start == 1.0

    def test_span_timestamps_follow_virtual_clock(self):
        sched = Scheduler()
        rec = TraceRecorder(clock=lambda: sched.now)
        span_ctx = rec.span("window")
        span = span_ctx.__enter__()
        sched.schedule_after(4.0, lambda: None)
        sched.run()
        span_ctx.__exit__(None, None, None)
        assert span.start == 0.0
        assert span.end == 4.0
        assert span.duration == pytest.approx(4.0)


class TestNullRecorder:
    def test_disabled_and_records_nothing(self):
        rec = NullRecorder()
        assert rec.enabled is False
        with rec.span("anything", attr=1) as span:
            rec.annotate(x=1)
            rec.add(hops=5)
        assert span is NULL_SPAN
        assert list(rec.spans) == []

    def test_null_span_is_shared_and_inert(self):
        with NULL_RECORDER.span("a") as first:
            pass
        with NULL_RECORDER.span("b") as second:
            first.set(anything=1)
        assert first is second is NULL_SPAN

    def test_default_global_recorder_is_null(self):
        assert state.recorder.enabled is False

    def test_set_recorder_none_restores_null(self):
        rec = TraceRecorder()
        previous = set_recorder(rec)
        try:
            assert state.recorder is rec
        finally:
            set_recorder(previous)
        assert state.recorder.enabled is False


class TestTracingContext:
    def test_tracing_installs_and_restores(self):
        rec = TraceRecorder()
        assert state.recorder.enabled is False
        with tracing(rec) as active:
            assert active is rec
            assert state.recorder is rec
        assert state.recorder.enabled is False


class TestJsonlRoundTrip:
    def test_traced_range_query_round_trips(
        self, tiny_histogram_workload, tmp_path
    ):
        """Acceptance check: trace a real range query, write JSONL, read
        it back, and verify the span tree's per-level candidate/pruned
        counts are internally consistent with the result set."""
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[3]
        rec = TraceRecorder()
        with tracing(rec):
            result = wl.network.range_query(query, 0.15, max_peers=4)

        path = tmp_path / "trace.jsonl"
        written = rec.write_jsonl(path)
        assert written == len(rec.spans) > 0

        records = read_jsonl(path)
        assert [r["id"] for r in records] == [s.span_id for s in rec.spans]
        # Every line is standalone JSON with the same sorted-key shape.
        for line in path.read_text().splitlines():
            assert json.loads(line) in records

        roots = span_tree(records)
        assert len(roots) == 1
        query_span = roots[0]
        assert query_span["span"] == "query"
        assert query_span["attrs"]["type"] == "range"
        assert query_span["attrs"]["items"] == len(result.item_ids)

        filters = [
            r for r in records if r["span"].startswith("sphere_filter[")
        ]
        assert filters, "expected one sphere_filter span per level"
        for record in filters:
            attrs = record["attrs"]
            assert attrs["candidates"] == attrs["pruned"] + attrs["surviving"]
            assert record["parent"] == query_span["id"]
        # If the query returned anything, some sphere must have survived
        # filtering (no false dismissals at the trace level either).
        surviving_total = sum(r["attrs"]["surviving"] for r in filters)
        if result.item_ids:
            assert surviving_total > 0

    def test_profile_reductions_match_trace(self):
        clock_values = iter([0.0, 1.0, 3.0, 6.0])
        rec = TraceRecorder(clock=lambda: next(clock_values))
        with rec.span("outer"):
            rec.add(hops=1)
            with rec.span("inner"):
                rec.add(hops=2)
        rows = {row["phase"]: row for row in phase_rows(rec.spans)}
        assert rows["outer"]["total_s"] == pytest.approx(6.0)
        assert rows["outer"]["self_s"] == pytest.approx(4.0)
        assert rows["outer"]["hops"] == 3
        assert rows["outer"]["self_hops"] == 1
        assert rows["inner"]["hops"] == 2
        flame = flame_summary(rec.spans)
        assert "outer" in flame and "inner" in flame


class TestNoOpOverheadPath:
    def test_instrumented_code_runs_clean_with_tracing_off(
        self, tiny_histogram_workload
    ):
        """With the default NullRecorder installed the instrumented query
        path must behave identically and record nothing."""
        assert state.recorder.enabled is False
        wl = tiny_histogram_workload
        query = wl.ground_truth.data[0]
        result = wl.network.range_query(query, 0.12, max_peers=4)
        assert state.recorder.enabled is False
        assert result.item_ids is not None
