"""Tests for the baseline publishers and the centralized ground truth."""

import numpy as np
import pytest

from repro.core.baselines import (
    CentralizedIndex,
    NaiveCANPublisher,
    TwoDimCANPublisher,
)
from repro.exceptions import ValidationError


class TestNaiveCAN:
    def test_publish_and_exact_range(self, rng):
        publisher = NaiveCANPublisher(8, rng=0)
        for peer_id in range(5):
            publisher.add_peer(peer_id)
        data = rng.random((40, 8))
        ids = np.arange(40)
        for peer_id in range(5):
            block = slice(peer_id * 8, (peer_id + 1) * 8)
            publisher.publish_items(peer_id, data[block], ids[block])
        query = rng.random(8)
        got, hops = publisher.range_query(0, query, 0.6)
        want = {
            int(i)
            for i, row in enumerate(data)
            if np.linalg.norm(row - query) <= 0.6
        }
        assert got == want
        assert hops >= 0

    def test_hops_counted(self, rng):
        publisher = NaiveCANPublisher(4, rng=0)
        for peer_id in range(6):
            publisher.add_peer(peer_id)
        n, hops = publisher.publish_items(
            0, rng.random((20, 4)), np.arange(20)
        )
        assert n == 20
        assert hops > 0


class TestTwoDimCAN:
    def test_key_truncation_superset(self, rng):
        """2-d CAN range results are a superset on the first two coords."""
        publisher = TwoDimCANPublisher(8, rng=0)
        for peer_id in range(4):
            publisher.add_peer(peer_id)
        data = rng.random((30, 8))
        publisher.publish_items(0, data, np.arange(30))
        query = rng.random(8)
        got, __ = publisher.range_query(0, query, 0.3)
        true_2d = {
            int(i)
            for i, row in enumerate(data)
            if np.linalg.norm(row[:2] - query[:2]) <= 0.3
        }
        assert got == true_2d

    def test_requires_2d(self):
        with pytest.raises(ValidationError):
            TwoDimCANPublisher(1)


class TestCentralizedIndex:
    def test_range_search_exact(self, rng):
        data = rng.random((50, 4))
        index = CentralizedIndex(data, np.arange(50))
        query = rng.random(4)
        got = index.range_search(query, 0.5)
        want = {
            int(i)
            for i, row in enumerate(data)
            if np.linalg.norm(row - query) <= 0.5
        }
        assert got == want

    def test_knn_exact(self, rng):
        data = rng.random((50, 4))
        index = CentralizedIndex(data, np.arange(50))
        query = rng.random(4)
        got = index.knn(query, 5)
        dists = np.linalg.norm(data - query, axis=1)
        want = set(np.argsort(dists)[:5].tolist())
        assert got == want

    def test_knn_items_carry_owner(self, rng):
        data = rng.random((10, 4))
        owners = np.arange(10) % 3
        index = CentralizedIndex(data, np.arange(10), owners)
        items = index.knn_items(rng.random(4), 3)
        assert len(items) == 3
        assert all(0 <= item.peer_id <= 2 for item in items)

    def test_k_capped_at_n(self, rng):
        index = CentralizedIndex(rng.random((5, 3)), np.arange(5))
        assert len(index.knn(rng.random(3), 50)) == 5

    def test_duplicate_ids_rejected(self, rng):
        with pytest.raises(ValidationError):
            CentralizedIndex(rng.random((3, 2)), np.array([1, 1, 2]))

    def test_invalid_k(self, rng):
        index = CentralizedIndex(rng.random((5, 3)), np.arange(5))
        with pytest.raises(ValidationError):
            index.knn(rng.random(3), 0)
