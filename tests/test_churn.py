"""Churn tests: zone merge/handoff, ring departure, peer removal semantics."""

import numpy as np
import pytest

from repro.core.network import HyperMConfig, HyperMNetwork
from repro.exceptions import QueryError
from repro.overlay.can import CANNetwork
from repro.overlay.can.zone import Zone
from repro.overlay.ring import RingNetwork


def make_zone(lows, highs):
    return Zone(np.asarray(lows, dtype=float), np.asarray(highs, dtype=float))


class TestZoneMerge:
    def test_merge_halves(self):
        a = make_zone([0.0, 0.0], [0.5, 1.0])
        b = make_zone([0.5, 0.0], [1.0, 1.0])
        merged = a.merge_with(b)
        assert merged is not None
        assert merged.volume == pytest.approx(1.0)

    def test_merge_symmetric(self):
        a = make_zone([0.0, 0.0], [0.5, 0.5])
        b = make_zone([0.0, 0.5], [0.5, 1.0])
        assert a.merge_with(b) is not None
        assert b.merge_with(a) is not None

    def test_mismatched_spans_do_not_merge(self):
        a = make_zone([0.0, 0.0], [0.5, 0.5])
        b = make_zone([0.5, 0.0], [1.0, 1.0])
        assert a.merge_with(b) is None

    def test_no_merge_across_torus_seam(self):
        a = make_zone([0.0, 0.0], [0.25, 1.0])
        b = make_zone([0.75, 0.0], [1.0, 1.0])
        # They are torus neighbours but their union is not a box.
        assert a.is_neighbor(b)
        assert a.merge_with(b) is None

    def test_disjoint_do_not_merge(self):
        a = make_zone([0.0, 0.0], [0.25, 1.0])
        b = make_zone([0.5, 0.0], [1.0, 1.0])
        assert a.merge_with(b) is None

    def test_split_children_remerge(self):
        z = make_zone([0.25, 0.0], [0.75, 0.5])
        lower, upper = z.split()
        merged = lower.merge_with(upper)
        assert merged is not None
        assert np.allclose(merged.lows, z.lows)
        assert np.allclose(merged.highs, z.highs)


class TestCANLeave:
    def _populated_can(self, n=16, seed=0):
        can = CANNetwork(2, rng=seed)
        ids = can.grow(n)
        rng = np.random.default_rng(seed + 1)
        points = rng.random((50, 2))
        for i, p in enumerate(points):
            can.insert(ids[i % n], p, i)
        return can, points

    def test_zones_still_tile_after_leaves(self):
        can, __ = self._populated_can()
        rng = np.random.default_rng(5)
        while len(can) > 2:
            can.leave(int(rng.choice(can.node_ids)))
            assert np.isclose(can.total_zone_volume(), 1.0)
            # Every point still has exactly one owner.
            for __i in range(10):
                p = rng.random(2)
                owners = [
                    nid
                    for nid, zones in can.all_zones().items()
                    if any(z.contains(p) for z in zones)
                ]
                assert len(owners) == 1

    def test_entries_survive_leaves(self):
        can, points = self._populated_can()
        rng = np.random.default_rng(7)
        for __ in range(10):
            can.leave(int(rng.choice(can.node_ids)))
        held = set()
        for nid in can.node_ids:
            for entry in can.node(nid).store:
                if isinstance(entry.value, int):
                    held.add(entry.value)
        assert held == set(range(50))

    def test_range_queries_complete_after_leaves(self):
        can, points = self._populated_can()
        rng = np.random.default_rng(9)
        for __ in range(8):
            can.leave(int(rng.choice(can.node_ids)))
        for __ in range(5):
            center = rng.random(2)
            radius = rng.uniform(0.1, 0.3)
            receipt = can.range_query(can.node_ids[0], center, radius)
            got = sorted(
                e.value for e in receipt.entries if isinstance(e.value, int)
            )
            want = sorted(
                i
                for i, p in enumerate(points)
                if np.linalg.norm(p - center) <= radius + 1e-12
            )
            assert got == want

    def test_neighbor_tables_consistent_after_leave(self):
        can, __ = self._populated_can()
        can.leave(can.node_ids[3])
        for nid in can.node_ids:
            node = can.node(nid)
            for neighbor_id, zones in node.neighbors.items():
                assert neighbor_id in can.node_ids
                neighbor = can.node(neighbor_id)
                assert len(zones) == len(neighbor.zones)
                assert node.is_neighbor_of(neighbor)

    def test_routing_works_after_leaves(self):
        can, __ = self._populated_can()
        rng = np.random.default_rng(11)
        for __i in range(10):
            can.leave(int(rng.choice(can.node_ids)))
        from repro.overlay.can.routing import route_to_owner

        for __i in range(10):
            p = rng.random(2)
            owner, __path = route_to_owner(can, can.node_ids[0], p)
            assert can.node(owner).zone.contains(p)

    def test_leave_down_to_one_node(self):
        can = CANNetwork(2, rng=1)
        ids = can.grow(4)
        can.insert(ids[0], [0.3, 0.3], "x")
        for nid in list(can.node_ids)[:-1]:
            can.leave(nid)
        last = can.node_ids[0]
        assert np.isclose(can.node(last).zone.volume, 1.0)
        assert any(e.value == "x" for e in can.node(last).store)

    def test_leave_last_node_empties_overlay(self):
        can = CANNetwork(2, rng=2)
        nid = can.join()
        can.leave(nid)
        assert len(can) == 0


class TestRingLeave:
    def test_entries_survive(self):
        ring = RingNetwork(2, rng=0)
        ids = ring.grow(10)
        rng = np.random.default_rng(1)
        points = rng.random((30, 2))
        for i, p in enumerate(points):
            ring.insert(ids[i % 10], p, i)
        for nid in ids[:5]:
            ring.leave(nid)
        held = set()
        for nid in ring.node_ids:
            for entry in ring.node(nid).store:
                if isinstance(entry.value, int):
                    held.add(entry.value)
        assert held == set(range(30))

    def test_queries_complete_after_leaves(self):
        ring = RingNetwork(2, rng=2)
        ids = ring.grow(12)
        rng = np.random.default_rng(3)
        points = rng.random((40, 2))
        for i, p in enumerate(points):
            ring.insert(ids[i % 12], p, i)
        for nid in ids[:4]:
            ring.leave(nid)
        center = np.array([0.5, 0.5])
        receipt = ring.range_query(ring.node_ids[0], center, 0.25)
        got = sorted(e.value for e in receipt.entries if isinstance(e.value, int))
        want = sorted(
            i for i, p in enumerate(points)
            if np.linalg.norm(p - center) <= 0.25 + 1e-12
        )
        assert got == want


class TestPeerChurn:
    @pytest.fixture
    def network(self, rng):
        config = HyperMConfig(levels_used=3, n_clusters=3)
        net = HyperMNetwork(16, config, rng=0)
        for __ in range(6):
            net.add_peer(rng.random((25, 16)))
        net.publish_all()
        return net

    def test_offline_peer_returns_nothing(self, network, rng):
        query = network.peers[2].data[0]
        before = network.range_query(query, 0.8)
        assert any(i.peer_id == 2 for i in before.items)
        network.remove_peer(2)
        after = network.range_query(query, 0.8)
        assert not any(i.peer_id == 2 for i in after.items)

    def test_index_survives_departures(self, network, rng):
        network.remove_peer(1)
        network.remove_peer(4)
        query = rng.random(16)
        result = network.range_query(query, 0.8)
        assert result.index_hops >= 0  # index queries still route
        online = {p for p, peer in network.peers.items() if peer.online}
        assert set(result.peers_contacted) <= online

    def test_withdraw_summaries_cleans_index(self, network):
        network.remove_peer(3, withdraw_summaries=True)
        for level, overlay in network.overlays.items():
            for node_id in overlay.node_ids:
                for entry in overlay.node(node_id).store:
                    assert entry.value.peer_id != 3

    def test_abrupt_departure_leaves_dangling_summaries(self, network):
        network.remove_peer(3)
        dangling = 0
        for overlay in network.overlays.values():
            for node_id in overlay.node_ids:
                dangling += sum(
                    1
                    for entry in overlay.node(node_id).store
                    if entry.value.peer_id == 3
                )
        assert dangling > 0

    def test_query_from_departed_peer_rejected(self, network, rng):
        network.remove_peer(0)
        with pytest.raises(QueryError):
            network.range_query(rng.random(16), 0.5, origin_peer=0)

    def test_knn_skips_offline_peers(self, network, rng):
        network.remove_peer(2)
        result = network.knn_query(rng.random(16), 5)
        assert 2 not in result.peers_contacted

    def test_default_origin_skips_offline(self, network, rng):
        network.remove_peer(0)
        result = network.range_query(rng.random(16), 0.5)
        assert result is not None

    def test_remove_unknown_peer(self, network):
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            network.remove_peer(99)
