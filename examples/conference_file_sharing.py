"""Conference file sharing — the paper's motivating scenario.

Researchers at a conference session want to share their collections of
papers/slides (as feature vectors) over an ad-hoc network for a couple of
hours. Publishing every document individually into a structured overlay
is too slow and too energy-hungry; Hyper-M publishes cluster summaries
instead.

This example compares the deployment cost of Hyper-M against conventional
per-item CAN publication on the same collections, then runs a few
searches.

Run:  python examples/conference_file_sharing.py
"""

import numpy as np

from repro.core import HyperMConfig, HyperMNetwork, NaiveCANPublisher
from repro.datasets import generate_markov_vectors, partition_among_peers
from repro.utils.tables import format_table

N_ATTENDEES = 30
DOCS_PER_ATTENDEE = 400
DIMS = 128

rng = np.random.default_rng(7)
print(f"{N_ATTENDEES} attendees, ~{DOCS_PER_ATTENDEE} documents each, "
      f"{DIMS}-d feature vectors\n")

# Attendees' collections overlap by research interest: cluster a global
# corpus and spread each topic across 8-10 attendees (paper §5.1).
corpus = generate_markov_vectors(
    N_ATTENDEES * DOCS_PER_ATTENDEE, DIMS, rng=rng
)
collections = partition_among_peers(corpus, N_ATTENDEES, rng=rng)

# --- Hyper-M deployment ----------------------------------------------------
network = HyperMNetwork(
    DIMS, HyperMConfig(levels_used=4, n_clusters=10), rng=rng
)
for docs, ids in collections:
    network.add_peer(docs, ids)
report = network.publish_all()

# --- conventional CAN deployment (sampled; per-item cost is flat) ---------
publisher = NaiveCANPublisher(DIMS, rng=rng)
for attendee in range(N_ATTENDEES):
    publisher.add_peer(attendee)
sampled_items = sampled_hops = 0
bytes_before = publisher.fabric.metrics.total_bytes
for attendee, (docs, ids) in enumerate(collections):
    n, h = publisher.publish_items(attendee, docs[:40], ids[:40])
    sampled_items += n
    sampled_hops += h
can_hops = sampled_hops / sampled_items
can_bytes = (publisher.fabric.metrics.total_bytes - bytes_before) / sampled_items

hyperm_bytes = report.bytes_sent / report.items_published
print(format_table(
    ["metric", "Hyper-M", "per-item CAN"],
    [
        ["hops per document", report.hops_per_item, can_hops],
        ["bytes per document", hyperm_bytes, can_bytes],
        ["hop reduction", can_hops / report.hops_per_item, 1.0],
        ["bandwidth reduction", can_bytes / hyperm_bytes, 1.0],
    ],
    title="Deployment cost per shared document",
))

# --- searching the session --------------------------------------------------
print("\nSearching for documents similar to one of attendee 3's papers…")
seed_doc = network.peers[3].data[0]
# Calibrate the similarity radius to "about the 20 closest documents"
# using the exact index (in practice a user tunes this per feature space).
from repro.core import CentralizedIndex

truth_index = CentralizedIndex.from_network(network)
epsilon = max(
    item.distance for item in truth_index.knn_items(seed_doc, 20)
)
result = network.range_query(seed_doc, epsilon=epsilon, max_peers=8)
by_peer = {}
for item in result.items:
    by_peer.setdefault(item.peer_id, []).append(item)
print(f"found {len(result.items)} similar documents on "
      f"{len(by_peer)} attendees' devices "
      f"({result.index_hops} index hops, "
      f"{result.retrieval_messages} retrieval messages)")

knn = network.knn_query(seed_doc, k=5, c=1.5)
print("\n5 most similar documents in the room:")
for item in knn.items[:5]:
    print(f"  doc {item.item_id:6d} on attendee {item.peer_id:2d} "
          f"(distance {item.distance:.3f})")

energy = network.fabric.energy
heaviest = max(energy.per_node.items(), key=lambda kv: kv[1])
print(f"\ntotal radio energy spent: {energy.total / 1e6:.2f} units; "
      f"busiest device drained {heaviest[1] / energy.total:.1%} of it")
