"""Simulate a whole session and sketch its recall timeline.

One virtual hour of a 20-device session: Poisson query traffic, abrupt
departures, peers returning and republishing. Prints the timeline table
and an ASCII chart of recall and membership over time.

Run:  python examples/session_timeline.py
"""

from repro.core import HyperMConfig
from repro.evaluation.session import SessionConfig, SessionSimulator
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import format_table

simulator = SessionSimulator(
    SessionConfig(
        duration=3600.0,
        n_peers=20,
        query_rate=0.05,      # one query every ~20 virtual seconds
        departure_rate=0.004,  # a departure every ~4 minutes
        arrival_rate=0.004,
        query_radius=0.12,
        max_peers_contacted=8,
        sample_every=300.0,
    ),
    hyperm=HyperMConfig(levels_used=4, n_clusters=6),
    rng=2026,
)
outcome = simulator.run()

print(format_table(
    ["minute", "online", "queries", "mean recall", "hops", "energy (Mu)"],
    [
        [f"{s.time / 60:.0f}", s.online_peers, s.queries_so_far,
         s.mean_recall, s.total_hops, s.total_energy / 1e6]
        for s in outcome.samples
    ],
    title=(
        f"One-hour session: {outcome.queries_run} queries, "
        f"{outcome.departures} departures, {outcome.arrivals} returns"
    ),
))

print()
print(line_chart(
    {
        "recall": [s.mean_recall for s in outcome.samples],
        "online/20": [s.online_peers / 20 for s in outcome.samples],
    },
    x_labels=[f"{s.time / 60:.0f}m" for s in outcome.samples],
    title="session timeline (recall holds while membership churns)",
    height=10,
))
