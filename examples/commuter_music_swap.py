"""Music sharing on a commuter train — a short-lived, churn-prone MANET.

Passengers board a long-distance train and share music libraries (audio
feature vectors) for the ride. This example exercises the aspects of
Hyper-M the other examples don't:

* late boarders: items added *after* the overlay is built are never
  republished, so the index goes stale (paper Figure 10c);
* overlay independence: the same session runs over the CAN overlay and
  over the Chord-style Z-order ring;
* per-device energy: the dissemination phase's radio budget.

Run:  python examples/commuter_music_swap.py
"""

import numpy as np

from repro.core import CentralizedIndex, HyperMConfig, HyperMNetwork
from repro.datasets import generate_audio_features, partition_among_peers
from repro.evaluation.metrics import precision_recall
from repro.overlay import CANNetwork, RingNetwork
from repro.utils.tables import format_table

N_PASSENGERS = 20
TRACKS_EACH = 250
DIMS = 64

master_rng = np.random.default_rng(99)
# Tonal-feature vectors with genre structure: passengers' taste overlaps
# by genre, exactly the "limited set of interests" the paper models.
audio = generate_audio_features(
    40, N_PASSENGERS * TRACKS_EACH // 40, DIMS, rng=master_rng
)
library = audio.data
collections = partition_among_peers(library, N_PASSENGERS, rng=master_rng)

results = []
for overlay_name, factory in (("CAN", CANNetwork), ("Z-order ring", RingNetwork)):
    network = HyperMNetwork(
        DIMS, HyperMConfig(levels_used=4, n_clusters=10),
        rng=np.random.default_rng(1), overlay_factory=factory,
    )
    for tracks, ids in collections:
        network.add_peer(tracks, ids)
    report = network.publish_all()
    results.append([
        overlay_name,
        report.hops_per_item,
        report.bytes_sent / report.items_published,
        report.energy / 1e6,
    ])

print(format_table(
    ["overlay", "hops/track", "bytes/track", "energy (Mu)"],
    results,
    title="Publishing the same libraries over two different overlays "
    "(Hyper-M is overlay-independent)",
))

# --- continue the session on the CAN overlay ---------------------------------
network = HyperMNetwork(
    DIMS, HyperMConfig(levels_used=4, n_clusters=10),
    rng=np.random.default_rng(1),
)
for tracks, ids in collections:
    network.add_peer(tracks, ids)
network.publish_all()

seed_track = network.peers[0].data[10]
truth = CentralizedIndex.from_network(network)
# Calibrate the tonal radius to "about the 30 most similar tracks".
EPSILON = max(i.distance for i in truth.knn_items(seed_track, 30))
before = network.range_query(seed_track, EPSILON, max_peers=8)
pr_before = precision_recall(
    before.item_ids, truth.range_search(seed_track, EPSILON)
)

# Late boarders join at the next station with fresh libraries; their
# tracks are stored but never published (the ride is short).
print("\nNext station: late boarders add 30% more tracks, unpublished…")
late_rng = np.random.default_rng(2)
# Late boarders share the same tastes: their tracks are near-duplicates
# of tracks already on the train (same genres, different recordings).
n_new = int(0.3 * N_PASSENGERS * TRACKS_EACH)
base_idx = late_rng.integers(0, library.shape[0], size=n_new)
new_tracks = np.clip(
    library[base_idx] + late_rng.normal(0.0, 0.01, (n_new, DIMS)), 0.0, 1.0
)
next_id = N_PASSENGERS * TRACKS_EACH
for i, track in enumerate(new_tracks):
    passenger = network.peers[int(late_rng.integers(N_PASSENGERS))]
    passenger.add_items(track[None, :], np.array([next_id + i]))

after = network.range_query(seed_track, EPSILON, max_peers=8)
truth = CentralizedIndex.from_network(network)
pr_after = precision_recall(
    after.item_ids, truth.range_search(seed_track, EPSILON)
)
print(format_table(
    ["phase", "recall@8 peers", "precision"],
    [
        ["all published", pr_before.recall, pr_before.precision],
        ["after +30% unpublished", pr_after.recall, pr_after.precision],
    ],
    title="Stale summaries degrade recall gracefully (paper Figure 10c)",
))

drained = sorted(network.fabric.energy.per_node.values(), reverse=True)
print(f"\nenergy: total {sum(drained) / 1e6:.2f} Mu across "
      f"{len(drained)} radios; top device used "
      f"{drained[0] / sum(drained):.1%} — no hotspot, thanks to the "
      "wavelet subspaces' natural load spreading (paper Figure 9)")
