"""Distributed image retrieval over Hyper-M (the paper's §6 scenario).

An ALOI-style collection — objects photographed under many views and
illuminations, represented as colour histograms — is spread across a
50-node network. We search for views of an object given one of its
images, and measure precision/recall against an exact centralized index,
including the C-knob trade-off the paper quantifies.

Run:  python examples/image_retrieval.py
"""

import numpy as np

from repro.core import HyperMConfig
from repro.evaluation.metrics import precision_recall
from repro.evaluation.workloads import build_histogram_network, sample_queries
from repro.utils.tables import format_table

print("building a 25-node image-sharing network "
      "(150 objects x 12 views, 64-bin colour histograms)…\n")

workload = build_histogram_network(
    n_peers=25,
    n_objects=150,
    views_per_object=12,
    n_bins=64,
    config=HyperMConfig(levels_used=4, n_clusters=10),
    rng=2024,
)
network = workload.network
truth_index = workload.ground_truth

# --- range queries: find all images within a colour distance ----------------
rng = np.random.default_rng(5)
queries = sample_queries(truth_index.data, 10, rng=rng)
rows = []
for max_peers in (2, 5, 10, 15):
    precisions, recalls = [], []
    for query in queries:
        truth = truth_index.range_search(query, 0.12)
        if not truth:
            continue
        result = network.range_query(query, 0.12, max_peers=max_peers)
        pr = precision_recall(result.item_ids, truth)
        precisions.append(pr.precision)
        recalls.append(pr.recall)
    rows.append(
        [max_peers, float(np.mean(precisions)), float(np.mean(recalls))]
    )
print(format_table(
    ["peers contacted", "precision", "recall"],
    rows,
    title="Range queries (radius 0.12) — precision is always 100%; recall "
    "climbs with the contact budget (paper Figure 10a)",
))

# --- k-NN with the C knob ----------------------------------------------------
print()
rows = []
for c in (1.0, 1.5, 2.0):
    precisions, recalls = [], []
    for query in queries:
        truth = truth_index.knn(query, 10)
        result = network.knn_query(query, 10, c=c)
        pr = precision_recall(result.item_ids, truth)
        precisions.append(pr.precision)
        recalls.append(pr.recall)
    rows.append([c, float(np.mean(precisions)), float(np.mean(recalls))])
print(format_table(
    ["C", "precision", "recall"],
    rows,
    title="k-NN (k=10) — the C knob trades precision for recall "
    "(paper §6.1)",
))

# --- object-level view: does a query image find its sibling views? ----------
print("\nLooking up sibling views of one object…")
query_item = 42
query = workload.data[query_item]
label = workload.labels[query_item]
siblings = set(np.flatnonzero(workload.labels == label).tolist())
result = network.knn_query(query, k=12, c=1.5)
found_siblings = result.item_ids & siblings
print(f"object {label}: {len(found_siblings)} of {len(siblings)} views "
      f"found via k-NN from one example image")
