"""Quickstart: publish a small collection into Hyper-M and search it.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import CentralizedIndex, HyperMConfig, HyperMNetwork

rng = np.random.default_rng(0)

# 1. A Hyper-M network for 64-dimensional feature vectors, using the
#    paper's operating point: 4 wavelet levels, 10 clusters per peer.
network = HyperMNetwork(
    dimensionality=64,
    config=HyperMConfig(levels_used=4, n_clusters=10),
    rng=42,
)

# 2. Ten peers, each holding 100 random feature vectors (unit cube).
#    Item ids must be globally unique.
for peer_index in range(10):
    data = rng.random((100, 64))
    ids = np.arange(peer_index * 100, (peer_index + 1) * 100)
    network.add_peer(data, ids)

# 3. Publish: each peer decomposes its items with the wavelet transform,
#    clusters each subspace with k-means, and inserts only the cluster
#    spheres into one CAN overlay per subspace.
report = network.publish_all()
print(f"published {report.items_published} items "
      f"as {report.spheres_inserted} cluster spheres")
print(f"average hops per item: {report.hops_per_item:.3f} "
      "(conventional CAN pays several hops per item)")
print(f"bytes sent: {report.bytes_sent:,}  "
      f"radio energy: {report.energy / 1e6:.2f} J-equivalent units")

# 4. Similarity range query: find everything similar to one of peer 4's
#    items. (Uniform random 64-d points sit ~3 apart, so a radius of 2.6
#    captures a handful of true neighbours.) Precision is 100% by
#    construction; recall depends on how many peers we contact.
query = network.peers[4].data[7]
result = network.range_query(query, epsilon=2.6, max_peers=5)
print(f"\nrange query: {len(result.items)} items from "
      f"{len(result.peers_contacted)} peers, "
      f"{result.index_hops} index hops")

# Compare against exact ground truth (a centralized flat index).
truth = CentralizedIndex.from_network(network).range_search(query, 2.6)
found = result.item_ids & truth
print(f"ground truth has {len(truth)} items; retrieved {len(found)} "
      f"(recall {len(found) / max(len(truth), 1):.0%}, precision 100%)")

# 5. k-nearest-neighbour query (the Figure 5 heuristic).
knn = network.knn_query(query, k=10, c=1.5)
print(f"\nk-NN: retrieved {len(knn.items)} candidates for k=10 "
      f"from {len(knn.peers_contacted)} peers")
print("closest three:",
      [(item.item_id, round(item.distance, 3)) for item in knn.items[:3]])
