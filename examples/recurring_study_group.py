"""A recurring study group — persistence across sessions and index repair.

The same group meets every week. Building cluster summaries (DWT +
k-means) is the only heavy computation on a phone, so members persist
their summaries after the first meeting and publish *instantly* at the
next one. During a session, members also pull in new material; a quick
republish folds it into the index.

Run:  python examples/recurring_study_group.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import CentralizedIndex, HyperMConfig, HyperMNetwork
from repro.core.serialization import load_summary, save_summary
from repro.datasets import generate_histograms, partition_among_peers

MEMBERS = 12
config = HyperMConfig(levels_used=4, n_clusters=8)

dataset = generate_histograms(80, 10, 64, rng=0)
parts = partition_among_peers(
    dataset.data, MEMBERS, clusters_per_peer=8,
    item_ids=np.arange(dataset.n_items), rng=1,
)

workdir = Path(tempfile.mkdtemp(prefix="hyperm_group_"))

# --- Week 1: first meeting — summaries are built from scratch --------------
t0 = time.perf_counter()
week1 = HyperMNetwork(64, config, rng=2)
for data, ids in parts:
    week1.add_peer(data, ids)
week1.publish_all()
build_time = time.perf_counter() - t0
for peer_id, peer in week1.peers.items():
    save_summary(peer.summary, workdir / f"member{peer_id}.json")
print(f"week 1: built and published summaries in {build_time:.2f}s "
      f"(saved to {workdir})")

# --- Week 2: everyone returns — instant publication from saved summaries ---
t0 = time.perf_counter()
week2 = HyperMNetwork(64, config, rng=3)
for data, ids in parts:
    week2.add_peer(data, ids)
for peer_id in week2.peers:
    week2.publish_peer(
        peer_id, summary=load_summary(workdir / f"member{peer_id}.json")
    )
restore_time = time.perf_counter() - t0
print(f"week 2: restored + published in {restore_time:.2f}s "
      f"({build_time / max(restore_time, 1e-9):.1f}x faster — no "
      "clustering needed)")

query = dataset.data[30]
truth = CentralizedIndex.from_network(week2).range_search(query, 0.12)
result = week2.range_query(query, 0.12)
print(f"retrieval sanity: {len(result.item_ids & truth)}/{len(truth)} "
      "true matches found with restored summaries")

# --- Mid-session: a member adds new notes and repairs the index -----------
member = week2.peers[5]
rng = np.random.default_rng(4)
new_notes = np.clip(
    dataset.data[30:33] + rng.normal(0, 0.01, (3, 64)), 0, 1
)
member.add_items(new_notes, np.arange(7000, 7003))


def findable(count_network) -> int:
    found = 0
    for i, note in enumerate(new_notes):
        result = count_network.range_query(note, 0.05, max_peers=2,
                                           origin_peer=0)
        found += any(item.item_id == 7000 + i for item in result.items)
    return found


before = findable(week2)
report = week2.republish_peer(5)
after = findable(week2)
print("\nmember 5 added 3 new notes mid-session:")
print(f"  before republish: {before}/3 findable under a tight contact budget")
print(f"  after republish ({report.total_hops} hops): {after}/3 findable")
