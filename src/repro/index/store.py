"""Columnar, generation-versioned storage for one overlay level's entries.

The seed implementation kept a Python ``list[StoredEntry]`` per node:
every index-phase range query walked the visited nodes' lists calling
``entry.intersects`` once per entry, and the scoring layer re-stacked the
surviving list into arrays behind an ``id()``-keyed cache. This module
replaces that layout with one shared, versioned store per overlay level:

* **Columns** — keys ``(n, d)``, radii, item counts, peer ids, squared key
  norms, and stable monotonically-assigned entry ids live in contiguous
  NumPy arrays that grow geometrically. The columnar block *is* the store;
  scoring gathers the candidate rows directly instead of re-stacking
  Python objects.
* **Membership** — a node no longer owns entry objects. It owns a
  :class:`NodeMembership`: a set of row indices into the shared store.
  Replication is multi-membership of one row, and the store refcounts
  memberships per row, so an entry dies (is tombstoned) exactly when the
  last node holding it lets go — the behaviour per-node lists gave for
  free, without duplicating the data.
* **Tombstones + compaction** — deletion marks rows dead; when the dead
  fraction passes a threshold, :meth:`LevelStore.maybe_compact` rewrites
  the columns densely and remaps every registered membership in place.
* **Generations** — every mutation bumps :attr:`LevelStore.generation`.
  A :class:`CandidateSet` (store ref + row indices + generation) snapshot
  can therefore *detect* staleness instead of assuming liveness — the
  property the old ``id()``-keyed stack cache silently lacked.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import StaleCandidateError, ValidationError
from repro.geometry.batch import spheres_intersect_batch
from repro.geometry.intersection import spheres_intersect

#: Initial column capacity (rows) of an empty store.
_INITIAL_CAPACITY = 64

#: Width of the exact re-resolution band around sphere boundaries (see
#: :meth:`LevelStore.intersection_mask`); module-level so the extracted
#: :func:`intersection_mask_columns` kernel and the store share one value.
_BOUNDARY_BAND = 1e-5


@dataclass(frozen=True)
class ColumnBlock:
    """A raw ``(keys, radii, items, peer_ids, key_sq)`` scoring block.

    The process-boundary twin of :meth:`CandidateSet.columns`: engine
    workers gather these arrays straight out of the shared-memory
    columns and hand them to :func:`repro.core.scoring.level_scores`,
    which scores them exactly as it scores a candidate set — same
    arrays, same kernel, bit-identical floats.
    """

    keys: np.ndarray
    radii: np.ndarray
    items: np.ndarray
    peer_ids: np.ndarray
    key_sq: np.ndarray

    def __len__(self) -> int:
        return int(self.keys.shape[0])

    def columns(self):
        """``(keys, radii, items, peer_ids, key_sq)`` — scoring order."""
        return self.keys, self.radii, self.items, self.peer_ids, self.key_sq


def intersection_mask_columns(
    keys: np.ndarray,
    key_sq: np.ndarray,
    radii: np.ndarray,
    live: np.ndarray,
    center: np.ndarray,
    radius: float,
) -> np.ndarray:
    """Per-row intersection mask over raw column slices.

    The computational core of :meth:`LevelStore.intersection_mask`,
    extracted so engine workers can run it against shared-memory column
    views without holding a :class:`LevelStore`. The columns must
    already be sliced to the row range under test; the caller guarantees
    they come from one consistent generation.
    """
    center = np.asarray(center, dtype=np.float64)
    if keys.shape[0] == 0:
        return np.empty(0, dtype=bool)
    d2 = key_sq - 2.0 * (keys @ center)
    d2 += float(center @ center)
    np.maximum(d2, 0.0, out=d2)
    dist = np.sqrt(d2)
    boundary = radii + float(radius)
    near = np.abs(dist - boundary) <= _BOUNDARY_BAND
    if near.any():
        diff = keys[near] - center
        dist[near] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
    mask = spheres_intersect_batch(radii, float(radius), dist)
    mask &= live
    return mask

#: Compaction triggers when tombstones exceed this fraction of used rows…
_COMPACT_FRACTION = 0.25

#: …and at least this many rows are dead (tiny stores never bother).
_COMPACT_MIN_TOMBSTONES = 64


class StoredEntryView:
    """A lightweight read view of one live store row.

    Mirrors the attribute surface of the legacy
    :class:`repro.overlay.base.StoredEntry` (``key`` / ``radius`` /
    ``value`` / ``intersects``) so existing call sites and tests keep
    working, and adds the stable :attr:`entry_id` that replaces ``id()``
    identity everywhere.
    """

    __slots__ = ("_store", "_row")

    def __init__(self, store: "LevelStore", row: int):
        self._store = store
        self._row = int(row)

    @property
    def row(self) -> int:
        """Row index in the backing store (valid until the next compaction)."""
        return self._row

    @property
    def entry_id(self) -> int:
        """Stable id assigned at publication; survives compaction."""
        return int(self._store._entry_ids[self._row])

    @property
    def key(self) -> np.ndarray:
        """The entry's key point (a copy; the column stays immutable)."""
        return self._store._keys[self._row].copy()

    @property
    def radius(self) -> float:
        """Extent radius (0 for point entries)."""
        return float(self._store._radii[self._row])

    @property
    def value(self) -> object:
        """The opaque payload stored at publication."""
        return self._store._values[self._row]

    @property
    def peer_id(self) -> int:
        """Publishing peer id (−1 when the payload carries none)."""
        return int(self._store._peer_ids[self._row])

    @property
    def items(self) -> float:
        """Item count carried by the payload (0 when it carries none)."""
        return float(self._store._items[self._row])

    def intersects(self, center: np.ndarray, radius: float) -> bool:
        """Scalar sphere-intersection test (same boundary as the batch path)."""
        dist = float(
            np.linalg.norm(
                self._store._keys[self._row]
                - np.asarray(center, dtype=np.float64)
            )
        )
        return spheres_intersect(self.radius, radius, dist)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StoredEntryView(entry_id={self.entry_id}, "
            f"radius={self.radius:.4g}, value={self.value!r})"
        )


class NodeMembership:
    """The set of store rows one overlay node holds.

    Mutations keep the store's per-row reference counts in step: adding a
    row increments, discarding decrements, and the row is tombstoned by
    the store when its last membership lets go. Row arrays returned by
    :meth:`rows` are sorted ascending — row order is insertion order
    (compaction preserves it), so iteration is deterministic.
    """

    __slots__ = ("_store", "_rows", "_cache", "__weakref__")

    def __init__(self, store: "LevelStore"):
        self._store = store
        self._rows: set[int] = set()
        self._cache: np.ndarray | None = None
        store._register(self)

    @property
    def store(self) -> "LevelStore":
        """The backing level store."""
        return self._store

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: int) -> bool:
        return int(row) in self._rows

    def rows(self) -> np.ndarray:
        """Member rows as a sorted ``int64`` array (cached until mutated)."""
        if self._cache is None:
            self._cache = np.fromiter(
                sorted(self._rows), dtype=np.int64, count=len(self._rows)
            )
        return self._cache

    def add(self, row: int) -> bool:
        """Add one row; returns False (and does nothing) if already held."""
        row = int(row)
        if row in self._rows:
            return False
        self._rows.add(row)
        self._cache = None
        self._store._incref(row)
        return True

    def add_many(self, rows) -> int:
        """Add each row not yet held; returns how many were new."""
        added = 0
        for row in rows:
            if self.add(row):
                added += 1
        return added

    def add_rows_array(self, rows: np.ndarray) -> int:
        """Vectorized :meth:`add_many` for freshly bulk-appended rows.

        The rows must be live; duplicates against current holdings are
        filtered here, so callers can hand over raw
        :meth:`LevelStore.bulk_add` row batches. One ``np.add.at``
        refcount pass replaces per-row ``_incref`` calls.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return 0
        fresh = [int(row) for row in rows if int(row) not in self._rows]
        if not fresh:
            return 0
        self._rows.update(fresh)
        self._cache = None
        self._store._incref_bulk(np.asarray(fresh, dtype=np.int64))
        return len(fresh)

    def discard(self, row: int) -> bool:
        """Drop one row; returns False if it was not held."""
        row = int(row)
        if row not in self._rows:
            return False
        self._rows.discard(row)
        self._cache = None
        self._store._decref(row)
        return True

    def discard_many(self, rows) -> int:
        """Drop each held row in ``rows``; returns how many were held."""
        dropped = 0
        for row in rows:
            if self.discard(row):
                dropped += 1
        return dropped

    def clear(self) -> int:
        """Drop every member row (a departing node releasing its holdings)."""
        dropped = len(self._rows)
        for row in self._rows:
            self._store._decref(row)
        self._rows.clear()
        self._cache = None
        return dropped

    def drop_where(self, predicate) -> int:
        """Drop member rows whose :class:`StoredEntryView` matches; count."""
        doomed = [
            row
            for row in sorted(self._rows)
            if predicate(StoredEntryView(self._store, row))
        ]
        return self.discard_many(doomed)

    def intersecting_rows(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Member rows whose spheres intersect the query sphere (batched)."""
        return self._store.intersecting_rows(self.rows(), center, radius)

    def rows_matching(self, mask: np.ndarray) -> np.ndarray:
        """Member rows selected by a per-row boolean ``mask``.

        The fast path for range queries: the overlay computes one
        :meth:`LevelStore.intersection_mask` per query and every visited
        node reduces to this boolean gather.
        """
        rows = self.rows()
        if rows.size == 0:
            return rows
        return rows[mask[rows]]

    def entries(self) -> list[StoredEntryView]:
        """Member rows as entry views (back-compat iteration surface)."""
        store = self._store
        return [StoredEntryView(store, row) for row in self.rows()]

    def _remap(self, mapping: np.ndarray) -> None:
        """Rewrite member rows through a compaction ``old -> new`` map."""
        self._rows = {
            int(mapping[row]) for row in self._rows if mapping[row] >= 0
        }
        self._cache = None


class CandidateSet:
    """One range query's surviving rows: store ref + rows + generation.

    The lightweight result the overlays hand to scoring: no entry objects,
    just row indices into the shared columns plus the store generation at
    snapshot time. Iteration and indexing yield
    :class:`StoredEntryView` objects, so legacy consumers (tests, k-NN
    sphere building, baselines) keep working unchanged.
    """

    __slots__ = ("_store", "_rows", "_generation", "_columns")

    def __init__(self, store: "LevelStore", rows: np.ndarray):
        self._store = store
        self._rows = np.asarray(rows, dtype=np.int64)
        self._generation = store.generation
        self._columns = None

    @property
    def store(self) -> "LevelStore":
        """The backing level store."""
        return self._store

    @property
    def rows(self) -> np.ndarray:
        """Candidate row indices (ascending, deduplicated by construction)."""
        return self._rows

    @property
    def generation(self) -> int:
        """Store generation at snapshot time."""
        return self._generation

    @property
    def entry_ids(self) -> np.ndarray:
        """Stable entry ids of the candidate rows."""
        self.ensure_fresh()
        return self._store._entry_ids[self._rows]

    def is_stale(self) -> bool:
        """True when the store has mutated since this snapshot was taken."""
        return self._generation != self._store.generation

    def ensure_fresh(self) -> None:
        """Raise :class:`StaleCandidateError` when the snapshot is stale."""
        if self.is_stale():
            raise StaleCandidateError(
                f"candidate set was taken at store generation "
                f"{self._generation} but the store is now at generation "
                f"{self._store.generation}; re-run the range query"
            )

    def columns(self) -> tuple:
        """Gather ``(keys, radii, items, peer_ids, key_sq)`` for the rows.

        The gather is one vectorized fancy-index per column (no Python
        per-entry loop) and is memoized: scoring and k-NN sphere building
        share the same arrays. When the rows form a dense range — the
        common case for a wide query over a freshly-compacted store — the
        gather degenerates to zero-copy column slices.
        """
        self.ensure_fresh()
        if self._columns is None:
            store = self._store
            rows = self._rows
            if (
                rows.size
                and int(rows[-1]) - int(rows[0]) + 1 == rows.size
            ):
                # Rows are sorted and unique, so first/last spanning
                # exactly ``size`` positions means a contiguous range.
                rows = slice(int(rows[0]), int(rows[-1]) + 1)
            self._columns = (
                store._keys[rows],
                store._radii[rows],
                store._items[rows],
                store._peer_ids[rows],
                store._key_sq[rows],
            )
        return self._columns

    def __len__(self) -> int:
        return int(self._rows.size)

    def __iter__(self):
        self.ensure_fresh()
        store = self._store
        return (StoredEntryView(store, int(row)) for row in self._rows)

    def __getitem__(self, index: int) -> StoredEntryView:
        self.ensure_fresh()
        return StoredEntryView(self._store, int(self._rows[index]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CandidateSet(rows={self._rows.size}, "
            f"generation={self._generation})"
        )


class LevelStore:
    """All of one overlay level's published entries, in columnar arrays."""

    def __init__(self, dimensionality: int, *, compact_fraction: float = _COMPACT_FRACTION,
                 compact_min_tombstones: int = _COMPACT_MIN_TOMBSTONES):
        if dimensionality < 1:
            raise ValidationError(
                f"dimensionality must be >= 1, got {dimensionality}"
            )
        self._dim = int(dimensionality)
        self._compact_fraction = float(compact_fraction)
        self._compact_min_tombstones = int(compact_min_tombstones)
        self._capacity = 0
        self._size = 0  # rows used, live + tombstoned
        self._n_tombstones = 0
        self._next_entry_id = 0
        self.generation = 0
        self.compactions = 0
        self._keys = np.empty((0, self._dim), dtype=np.float64)
        self._key_sq = np.empty(0, dtype=np.float64)
        self._radii = np.empty(0, dtype=np.float64)
        self._items = np.empty(0, dtype=np.float64)
        self._peer_ids = np.empty(0, dtype=np.int64)
        self._entry_ids = np.empty(0, dtype=np.int64)
        self._refcounts = np.empty(0, dtype=np.int64)
        self._heat = np.empty(0, dtype=np.int64)
        self._live = np.empty(0, dtype=bool)
        self._values: list = []
        self._row_by_id: dict[int, int] = {}
        self._memberships: weakref.WeakSet[NodeMembership] = weakref.WeakSet()
        self._shared = False
        self._shm_blocks: dict[str, shared_memory.SharedMemory] = {}
        self._shm_orphans: list[shared_memory.SharedMemory] = []
        self._shm_epoch = 0

    # -- introspection -------------------------------------------------------

    @property
    def dimensionality(self) -> int:
        """Dimensionality of the stored keys."""
        return self._dim

    @property
    def capacity(self) -> int:
        """Allocated rows."""
        return self._capacity

    @property
    def n_live(self) -> int:
        """Live (non-tombstoned) rows."""
        return self._size - self._n_tombstones

    @property
    def n_rows(self) -> int:
        """Rows used (live + tombstoned) — the mask/column prefix length."""
        return self._size

    @property
    def n_tombstones(self) -> int:
        """Rows deleted but not yet compacted away."""
        return self._n_tombstones

    @property
    def next_entry_id(self) -> int:
        """The id the next :meth:`add` will assign."""
        return self._next_entry_id

    def __len__(self) -> int:
        return self.n_live

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"LevelStore(d={self._dim}, live={self.n_live}, "
            f"tombstones={self._n_tombstones}, gen={self.generation})"
        )

    def health(self) -> dict:
        """Store health snapshot (JSON-safe) for stats dashboards."""
        return {
            "live_rows": self.n_live,
            "tombstones": self._n_tombstones,
            "capacity": self._capacity,
            "generation": self.generation,
            "compactions": self.compactions,
            "next_entry_id": self._next_entry_id,
        }

    # -- membership registry -------------------------------------------------

    def _register(self, membership: NodeMembership) -> None:
        self._memberships.add(membership)

    def new_membership(self) -> NodeMembership:
        """Create (and register) a membership for one node."""
        return NodeMembership(self)

    # -- mutation ------------------------------------------------------------

    #: Columns engine workers read zero-copy; when the store is shared
    #: these (and only these) live in ``multiprocessing.shared_memory``.
    _SHM_COLUMNS = ("_keys", "_key_sq", "_radii", "_items", "_peer_ids",
                    "_live")

    #: Every growable column: ``name -> (dtype, zero_fill)``. ``_keys``
    #: is the one 2-D column; ``_live`` must zero-fill past the prefix.
    _COLUMN_SPECS = {
        "_keys": (np.float64, False),
        "_key_sq": (np.float64, False),
        "_radii": (np.float64, False),
        "_items": (np.float64, False),
        "_peer_ids": (np.int64, False),
        "_entry_ids": (np.int64, False),
        "_refcounts": (np.int64, False),
        "_heat": (np.int64, False),
        "_live": (bool, True),
    }

    def _alloc_array(self, name: str, shape, dtype):
        """Allocate one column: private ``np.empty`` or a shm block."""
        if not (self._shared and name in self._SHM_COLUMNS):
            return np.empty(shape, dtype=dtype), None
        nbytes = max(int(np.prod(shape)) * np.dtype(dtype).itemsize, 1)
        block = shared_memory.SharedMemory(create=True, size=nbytes)
        return np.ndarray(shape, dtype=dtype, buffer=block.buf), block

    def _release_blocks(self, blocks) -> None:
        """Unlink + close shm blocks; defer closes blocked by exports.

        A live zero-copy view (e.g. a :class:`CandidateSet` contiguous
        slice) keeps a buffer export open, making ``close`` raise
        ``BufferError``; such blocks park in an orphan list retried on
        the next release. Unlinking first is always safe on Linux — the
        segment persists until every mapping closes.
        """
        pending = [b for b in blocks if b is not None] + self._shm_orphans
        self._shm_orphans = []
        for block in pending:
            try:
                block.unlink()
            except FileNotFoundError:
                pass
            try:
                block.close()
            except BufferError:
                self._shm_orphans.append(block)

    def _grow_to(self, capacity: int) -> None:
        new_cap = max(self._capacity * 2, _INITIAL_CAPACITY)
        while new_cap < capacity:
            new_cap *= 2
        released = []
        for name, (dtype, zero_fill) in self._COLUMN_SPECS.items():
            shape = (new_cap, self._dim) if name == "_keys" else (new_cap,)
            col, block = self._alloc_array(name, shape, dtype)
            if zero_fill:
                col[:] = False
            col[: self._size] = getattr(self, name)[: self._size]
            setattr(self, name, col)
            if block is not None:
                released.append(self._shm_blocks.pop(name, None))
                self._shm_blocks[name] = block
        self._capacity = new_cap
        if self._shared:
            self._shm_epoch += 1
            self._release_blocks(released)

    # -- shared-memory backing ----------------------------------------------

    @property
    def is_shared(self) -> bool:
        """True when the worker-visible columns live in shared memory."""
        return self._shared

    @property
    def shm_epoch(self) -> int:
        """Bumped whenever the shm blocks are (re)allocated.

        Engine parents compare this against what each worker last
        attached and resend the manifest on mismatch — reallocation
        (growth) is the only event that invalidates an attachment;
        ordinary mutations are covered by :attr:`generation` alone.
        """
        return self._shm_epoch

    def share_columns(self) -> dict:
        """Migrate the worker-visible columns into shared memory.

        Idempotent; returns the current :meth:`shm_manifest`. After
        this, every growth reallocates into fresh shm blocks and bumps
        :attr:`shm_epoch`. The payload list (``_values``) never crosses
        the process boundary — workers score columns, not payloads.
        """
        if not self._shared:
            self._shared = True
            self._shm_epoch += 1
            for name in self._SHM_COLUMNS:
                old = getattr(self, name)
                col, block = self._alloc_array(name, old.shape, old.dtype)
                if block is None:  # zero-capacity store: nothing to map
                    continue
                col[:] = old
                setattr(self, name, col)
                self._shm_blocks[name] = block
        return self.shm_manifest()

    def shm_manifest(self) -> dict:
        """Name/shape/dtype of each shm column block, for worker attach."""
        if not self._shared:
            raise ValidationError("store is not shared; no shm manifest")
        return {
            "epoch": self._shm_epoch,
            "capacity": self._capacity,
            "dim": self._dim,
            "columns": {
                name: (
                    self._shm_blocks[name].name,
                    tuple(getattr(self, name).shape),
                    getattr(self, name).dtype.str,
                )
                for name in self._SHM_COLUMNS
                if name in self._shm_blocks
            },
        }

    def release_shared(self) -> None:
        """Copy columns back to private arrays and free the shm blocks."""
        if not self._shared:
            return
        for name in self._SHM_COLUMNS:
            setattr(self, name, np.array(getattr(self, name), copy=True))
        blocks = [self._shm_blocks.pop(name)
                  for name in list(self._shm_blocks)]
        self._shared = False
        self._shm_epoch += 1
        self._release_blocks(blocks)

    def __del__(self):  # pragma: no cover - interpreter-exit path
        try:
            self.release_shared()
        except Exception:
            pass

    def add(self, key: np.ndarray, radius: float, value: object) -> int:
        """Append one entry; returns its row index.

        ``value`` is opaque; when it carries ``peer_id`` / ``items``
        attributes (a :class:`repro.core.results.ClusterRecord`) they are
        mirrored into the scoring columns, otherwise the row scores as
        peer −1 with 0 items (non-record payloads are never scored).
        """
        return self._append(self._next_entry_id, key, radius, value)

    def restore(self, entry_id: int, key: np.ndarray, radius: float,
                value: object) -> int:
        """Append one entry with an explicit id (deserialization path)."""
        entry_id = int(entry_id)
        if entry_id in self._row_by_id:
            raise ValidationError(f"duplicate entry id {entry_id}")
        return self._append(entry_id, key, radius, value)

    def reserve_ids_through(self, floor: int) -> None:
        """Advance the id allocator so new ids start at ``floor`` or later.

        Deserialization uses this to resume past a snapshot's high-water
        mark — including ids that were tombstoned before the snapshot and
        therefore do not appear in it — so restored and future entries can
        never collide.
        """
        self._next_entry_id = max(self._next_entry_id, int(floor))

    def _append(self, entry_id: int, key: np.ndarray, radius: float,
                value: object) -> int:
        key = np.asarray(key, dtype=np.float64)
        if key.shape != (self._dim,):
            raise ValidationError(
                f"key shape {key.shape} does not match store "
                f"dimensionality {self._dim}"
            )
        radius = float(radius)
        if radius < 0.0:
            raise ValidationError(f"radius must be >= 0, got {radius}")
        if self._size == self._capacity:
            self._grow_to(self._size + 1)
        row = self._size
        self._keys[row] = key
        self._key_sq[row] = float(key @ key)
        self._radii[row] = radius
        self._items[row] = float(getattr(value, "items", 0.0) or 0.0)
        self._peer_ids[row] = int(getattr(value, "peer_id", -1))
        self._entry_ids[row] = entry_id
        self._refcounts[row] = 0
        self._heat[row] = 0
        self._live[row] = True
        self._values.append(value)
        self._row_by_id[entry_id] = row
        self._size += 1
        self._next_entry_id = max(self._next_entry_id, entry_id + 1)
        self.generation += 1
        return row

    def bulk_add(self, keys, radii, *, items=None, peer_ids=None,
                 values=None) -> np.ndarray:
        """Append ``n`` entries in one vectorized pass; returns their rows.

        The scale-harness fast path: one capacity check, one slice write
        per column, one generation bump for the whole batch — versus
        ``n`` :meth:`add` calls each paying Python-level column stores
        and a generation bump. ``items``/``peer_ids`` are passed as
        columns (there are no per-entry payload objects to mirror them
        from); ``values`` defaults to ``None`` payloads, which scoring
        never touches.
        """
        keys = np.asarray(keys, dtype=np.float64)
        if keys.ndim != 2 or keys.shape[1] != self._dim:
            raise ValidationError(
                f"keys shape {keys.shape} does not match store "
                f"dimensionality {self._dim}"
            )
        n = keys.shape[0]
        if n == 0:
            return np.empty(0, dtype=np.int64)
        radii = np.broadcast_to(
            np.asarray(radii, dtype=np.float64), (n,)
        )
        if np.any(radii < 0.0):
            raise ValidationError("radii must all be >= 0")
        items_col = (np.zeros(n, dtype=np.float64) if items is None
                     else np.broadcast_to(
                         np.asarray(items, dtype=np.float64), (n,)))
        peer_col = (np.full(n, -1, dtype=np.int64) if peer_ids is None
                    else np.broadcast_to(
                        np.asarray(peer_ids, dtype=np.int64), (n,)))
        if values is not None and len(values) != n:
            raise ValidationError(
                f"values length {len(values)} does not match {n} keys"
            )
        if self._size + n > self._capacity:
            self._grow_to(self._size + n)
        start = self._size
        stop = start + n
        rows = np.arange(start, stop, dtype=np.int64)
        ids = np.arange(
            self._next_entry_id, self._next_entry_id + n, dtype=np.int64
        )
        self._keys[start:stop] = keys
        self._key_sq[start:stop] = np.einsum("ij,ij->i", keys, keys)
        self._radii[start:stop] = radii
        self._items[start:stop] = items_col
        self._peer_ids[start:stop] = peer_col
        self._entry_ids[start:stop] = ids
        self._refcounts[start:stop] = 0
        self._heat[start:stop] = 0
        self._live[start:stop] = True
        self._values.extend([None] * n if values is None else values)
        self._row_by_id.update(zip(ids.tolist(), rows.tolist()))
        self._size = stop
        self._next_entry_id += n
        self.generation += 1
        return rows

    def column_block(self, rows: np.ndarray) -> ColumnBlock:
        """Gather a scoring :class:`ColumnBlock` for the given rows."""
        rows = np.asarray(rows, dtype=np.int64)
        return ColumnBlock(
            keys=self._keys[rows],
            radii=self._radii[rows],
            items=self._items[rows],
            peer_ids=self._peer_ids[rows],
            key_sq=self._key_sq[rows],
        )

    def _incref(self, row: int) -> None:
        if not self._live[row]:
            raise ValidationError(f"row {row} is tombstoned")
        self._refcounts[row] += 1

    def _incref_bulk(self, rows: np.ndarray) -> None:
        """Refcount a batch of live rows in one vectorized pass."""
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return
        if not np.all(self._live[rows]):
            raise ValidationError("cannot incref tombstoned rows")
        np.add.at(self._refcounts, rows, 1)

    def _decref(self, row: int) -> None:
        count = self._refcounts[row] - 1
        if count < 0:
            raise ValidationError(f"row {row} refcount underflow")
        self._refcounts[row] = count
        if count == 0 and self._live[row]:
            self._tombstone(row)

    def _tombstone(self, row: int) -> None:
        self._live[row] = False
        self._n_tombstones += 1
        self._row_by_id.pop(int(self._entry_ids[row]), None)
        self._values[row] = None  # release the payload immediately
        self.generation += 1

    def has_entry(self, entry_id: int) -> bool:
        """True when ``entry_id`` names a live row."""
        return int(entry_id) in self._row_by_id

    def update_entry(
        self,
        entry_id: int,
        *,
        key: np.ndarray | None = None,
        radius: float | None = None,
        value: object | None = None,
    ) -> int:
        """Mutate a live entry in place; returns its row index.

        The delta publish path patches a sphere's radius, item count, or
        (rarely) key on its *existing* entry id instead of tombstoning and
        re-inserting, so every replica holding the row sees the update for
        free — replication is multi-membership of one row. The generation
        counter bumps only when a scored field actually changes: a no-op
        patch (every argument ``None`` or equal to the stored state) must
        not invalidate outstanding :class:`CandidateSet` snapshots — the
        adaptation loop re-patches hot entries every epoch and a spurious
        bump turns each epoch into a ``StaleCandidateError`` storm.
        """
        row = self.row_of(entry_id)
        changed = False
        if key is not None:
            key = np.asarray(key, dtype=np.float64)
            if key.shape != (self._dim,):
                raise ValidationError(
                    f"key shape {key.shape} does not match store "
                    f"dimensionality {self._dim}"
                )
            if not np.array_equal(key, self._keys[row]):
                self._keys[row] = key
                self._key_sq[row] = float(key @ key)
                changed = True
        if radius is not None:
            radius = float(radius)
            if radius < 0.0:
                raise ValidationError(f"radius must be >= 0, got {radius}")
            if radius != float(self._radii[row]):
                self._radii[row] = radius
                changed = True
        if value is not None:
            items = float(getattr(value, "items", 0.0) or 0.0)
            peer_id = int(getattr(value, "peer_id", -1))
            if not (
                self._values_equal(value, self._values[row])
                and items == float(self._items[row])
                and peer_id == int(self._peer_ids[row])
            ):
                changed = True
            # Always keep the latest payload object (cheap, no snapshot
            # consequences when it compares equal to the stored one).
            self._values[row] = value
            self._items[row] = items
            self._peer_ids[row] = peer_id
        if changed:
            self.generation += 1
        return row

    @staticmethod
    def _values_equal(a: object, b: object) -> bool:
        """Payload equality that never raises (arrays compare ambiguous)."""
        if a is b:
            return True
        try:
            return bool(a == b)
        except Exception:
            return False

    def remove_entry(self, entry_id: int) -> bool:
        """Drop one entry everywhere: every membership forgets its row.

        Returns False when the id is unknown (already dead). The row is
        tombstoned by the final membership release.
        """
        row = self._row_by_id.get(int(entry_id))
        if row is None:
            return False
        for membership in list(self._memberships):
            membership.discard(row)
        if self._live[row]:  # held by no membership at all
            self._tombstone(row)
        return True

    def remove_peer_entries(self, peer_id: int) -> int:
        """Tombstone every live entry published by ``peer_id``.

        One vectorized peer-id column scan finds the doomed rows, then a
        *single* sweep over the registered memberships drops every doomed
        row each holds — not one full membership scan per entry, which
        made reaping a large crashed peer quadratic in its sphere count.
        Rows still live afterwards (held by no membership) are tombstoned
        directly, and the store compacts if past threshold. The resilience
        layer uses this to reap the dangling spheres of a crashed peer
        (:func:`repro.faults.resilience.tombstone_peer`); returns the
        number of entries removed.
        """
        rows = self.rows_for_peer(peer_id)
        if rows.size == 0:
            return 0
        doomed = {int(row) for row in rows}
        for membership in list(self._memberships):
            held = doomed & membership._rows
            if held:
                # Sorted for deterministic decref/tombstone order.
                membership.discard_many(sorted(held))
        for row in rows:
            if self._live[row]:  # held by no membership at all
                self._tombstone(int(row))
        self.maybe_compact()
        return int(rows.size)

    # -- compaction ----------------------------------------------------------

    def needs_compaction(self) -> bool:
        """True when tombstones pass the compaction threshold."""
        if self._n_tombstones < self._compact_min_tombstones:
            return False
        return self._n_tombstones > self._compact_fraction * self._size

    def maybe_compact(self) -> bool:
        """Compact when past threshold; returns True when compaction ran.

        Call at the *end* of a mutation batch (withdrawal, departure):
        compaction remaps row indices, so running it mid-batch would
        invalidate row handles the batch still holds.
        """
        if not self.needs_compaction():
            return False
        self.compact()
        return True

    def compact(self) -> None:
        """Rewrite the columns densely and remap every membership."""
        if self._n_tombstones == 0:
            return
        size = self._size
        if len(self._values) != size:
            # _values is the only per-row Python-list column; every append
            # path must keep it exactly _size-aligned (capacity growth
            # touches the numpy columns only). The zip(strict=True) below
            # would also catch this, but with an opaque message.
            raise ValidationError(
                f"store corrupt: {len(self._values)} payloads for "
                f"{size} rows"
            )
        live = self._live[:size]
        mapping = np.full(size, -1, dtype=np.int64)
        mapping[live] = np.arange(int(live.sum()), dtype=np.int64)
        new_size = int(live.sum())
        self._keys[:new_size] = self._keys[:size][live]
        self._key_sq[:new_size] = self._key_sq[:size][live]
        self._radii[:new_size] = self._radii[:size][live]
        self._items[:new_size] = self._items[:size][live]
        self._peer_ids[:new_size] = self._peer_ids[:size][live]
        self._entry_ids[:new_size] = self._entry_ids[:size][live]
        self._refcounts[:new_size] = self._refcounts[:size][live]
        self._heat[:new_size] = self._heat[:size][live]
        self._values = [
            v for v, keep in zip(self._values, live, strict=True) if keep
        ]
        self._live[:new_size] = True
        self._live[new_size:] = False
        self._size = new_size
        self._n_tombstones = 0
        self._row_by_id = {
            int(self._entry_ids[row]): row for row in range(new_size)
        }
        for membership in list(self._memberships):
            membership._remap(mapping)
        self.compactions += 1
        self.generation += 1

    # -- lookups -------------------------------------------------------------

    def row_of(self, entry_id: int) -> int:
        """Row index of a live entry id."""
        try:
            return self._row_by_id[int(entry_id)]
        except KeyError:
            raise ValidationError(f"unknown entry id {entry_id}") from None

    def entry_id_of(self, row: int) -> int:
        """Stable entry id of a row."""
        return int(self._entry_ids[int(row)])

    def view(self, row: int) -> StoredEntryView:
        """Entry view of one row."""
        return StoredEntryView(self, int(row))

    def key_of(self, row: int) -> np.ndarray:
        """Key of one row (read view; do not mutate)."""
        return self._keys[int(row)]

    def radius_of(self, row: int) -> float:
        """Radius of one row."""
        return float(self._radii[int(row)])

    def value_of(self, row: int) -> object:
        """Payload of one row."""
        return self._values[int(row)]

    def items_of(self, rows: np.ndarray) -> np.ndarray:
        """Item counts of ``rows`` (vectorized gather)."""
        return self._items[np.asarray(rows, dtype=np.int64)]

    def live_rows(self) -> np.ndarray:
        """All live rows, ascending."""
        return np.flatnonzero(self._live[: self._size])

    def rows_for_peer(self, peer_id: int) -> np.ndarray:
        """Live rows published by ``peer_id`` (vectorized column scan)."""
        size = self._size
        mask = self._live[:size] & (self._peer_ids[:size] == int(peer_id))
        return np.flatnonzero(mask)

    # -- the hot path --------------------------------------------------------

    #: Distances this close to the disjointness boundary are recomputed
    #: exactly: the BLAS expansion ``k·k − 2k·c + c·c`` loses ~sqrt(eps·d)
    #: absolute accuracy to cancellation (an exact-match point lookup gives
    #: ~1e-8 instead of 0), far coarser than the 1e-12 INTERSECTION_SLACK.
    _BOUNDARY_BAND = _BOUNDARY_BAND

    def intersecting_rows(
        self, rows: np.ndarray, center: np.ndarray, radius: float
    ) -> np.ndarray:
        """Subset of ``rows`` whose spheres intersect the query sphere.

        One gathered BLAS distance pass plus the shared
        :func:`repro.geometry.batch.spheres_intersect_batch` predicate —
        the vectorized replacement for the per-entry ``intersects`` loop.
        Rows whose distance lands within :data:`_BOUNDARY_BAND` of the
        boundary are re-resolved with the exact difference norm, so the
        returned set matches the scalar ``StoredEntry.intersects`` oracle.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size == 0:
            return rows
        center = np.asarray(center, dtype=np.float64)
        keys = self._keys[rows]
        d2 = self._key_sq[rows] - 2.0 * (keys @ center)
        d2 += float(center @ center)
        np.maximum(d2, 0.0, out=d2)
        dist = np.sqrt(d2)
        boundary = self._radii[rows] + float(radius)
        near = np.abs(dist - boundary) <= self._BOUNDARY_BAND
        if near.any():
            diff = keys[near] - center
            dist[near] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        mask = spheres_intersect_batch(self._radii[rows], float(radius), dist)
        return rows[mask]

    def intersection_mask(
        self, center: np.ndarray, radius: float
    ) -> np.ndarray:
        """Per-row intersection mask for one query over the *whole* store.

        One contiguous BLAS pass over the full key matrix (tombstones
        masked out), so a range query computes it once and every visited
        node reduces to a boolean gather of its membership rows —
        columnar layout beats per-node key gathers by an order of
        magnitude once replication multiplies the membership count.
        Same boundary-band exact re-resolution as
        :meth:`intersecting_rows`, so the two filters always agree.
        """
        size = self._size
        if size == 0:
            return np.empty(0, dtype=bool)
        return intersection_mask_columns(
            self._keys[:size],
            self._key_sq[:size],
            self._radii[:size],
            self._live[:size],
            center,
            radius,
        )

    def intersection_masks(
        self, centers: np.ndarray, radii: np.ndarray
    ) -> np.ndarray:
        """Stacked :meth:`intersection_mask` for a batch of queries.

        ``centers`` is ``(B, d)`` and ``radii`` length ``B``; the result is
        ``(B, rows)`` boolean. The whole batch's distances come from *one*
        GEMM instead of B matrix-vector passes — the serving tier's
        amortization lever. The GEMM expansion differs from the per-query
        matvec by ~1e-12 at worst, orders of magnitude inside the
        :data:`_BOUNDARY_BAND` whose near-boundary pairs are re-resolved
        with the exact difference norm, so every row of the result is
        bit-identical to the corresponding :meth:`intersection_mask` —
        batched serving inherits the scalar path's Theorem 4.1 guarantee.
        """
        centers = np.atleast_2d(np.asarray(centers, dtype=np.float64))
        radii = np.atleast_1d(np.asarray(radii, dtype=np.float64))
        if centers.shape[0] != radii.shape[0]:
            raise ValidationError(
                f"{centers.shape[0]} centers for {radii.shape[0]} radii"
            )
        if centers.shape[1] != self._dim:
            raise ValidationError(
                f"center dimensionality {centers.shape[1]} does not match "
                f"store dimensionality {self._dim}"
            )
        size = self._size
        if size == 0:
            return np.empty((centers.shape[0], 0), dtype=bool)
        keys = self._keys[:size]
        d2 = (
            self._key_sq[:size][None, :]
            - 2.0 * (centers @ keys.T)
            + np.einsum("ij,ij->i", centers, centers)[:, None]
        )
        np.maximum(d2, 0.0, out=d2)
        dist = np.sqrt(d2)
        boundary = self._radii[:size][None, :] + radii[:, None]
        near = np.abs(dist - boundary) <= self._BOUNDARY_BAND
        if near.any():
            q_idx, r_idx = np.nonzero(near)
            diff = keys[r_idx] - centers[q_idx]
            dist[near] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
        # The predicate is scalar-radius; one cheap vectorized call per
        # batch row keeps the boundary slack single-sourced (the GEMM
        # above is the expensive part).
        mask = np.empty((centers.shape[0], size), dtype=bool)
        for i in range(centers.shape[0]):
            mask[i] = spheres_intersect_batch(
                self._radii[:size], float(radii[i]), dist[i]
            )
        mask &= self._live[:size][None, :]
        return mask

    def candidate_set(self, rows: np.ndarray) -> CandidateSet:
        """Wrap ``rows`` (assumed deduplicated, ascending) as a snapshot."""
        return CandidateSet(self, rows)

    def union_candidates(self, row_arrays: list) -> CandidateSet:
        """Union per-node row arrays into one deduplicated snapshot.

        Every surviving row's query-heat counter is bumped here — the one
        point all overlay range queries funnel through — so per-sphere
        heat accumulates without any per-overlay instrumentation.
        """
        if not row_arrays:
            return CandidateSet(self, np.empty(0, dtype=np.int64))
        merged = np.unique(np.concatenate(
            [np.asarray(rows, dtype=np.int64) for rows in row_arrays]
        ))
        self._heat[merged] += 1  # observational only: no generation bump
        return CandidateSet(self, merged)

    # -- query heat ----------------------------------------------------------

    def bump_heat(self, rows: np.ndarray) -> None:
        """Bump the query-heat counter of ``rows`` by one each.

        Observational only — no generation bump, exactly like the bump
        inside :meth:`union_candidates`. The serving tier calls this when
        it answers a query from a cached :class:`CandidateSet`: the rows
        were not re-merged through ``union_candidates``, but the demand
        signal the adaptation controller consumes must still see every
        served query, or cache hits would cool the very spheres they
        prove are hot.
        """
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size:
            self._heat[rows] += 1

    def heat_of(self, rows: np.ndarray) -> np.ndarray:
        """Query-heat counters of ``rows`` (vectorized gather)."""
        return self._heat[np.asarray(rows, dtype=np.int64)]

    def sphere_heat(self) -> dict[int, int]:
        """``{entry_id: times a range query returned it}`` over live rows.

        The per-sphere demand signal the adaptation controller consumes:
        heat counts how often each sphere survived a query's intersection
        filter, accumulated in :meth:`union_candidates` and preserved
        across compactions. Reading it never mutates the store.
        """
        rows = self.live_rows()
        return {
            int(self._entry_ids[row]): int(self._heat[row]) for row in rows
        }

    # -- integrity -----------------------------------------------------------

    def verify_integrity(self) -> None:
        """Assert internal invariants (test helper; raises on violation).

        * every live row's refcount equals the number of registered
          memberships holding it;
        * every membership row is live;
        * the id map covers exactly the live rows;
        * the payload list stays exactly ``_size``-aligned.
        """
        if len(self._values) != self._size:
            raise ValidationError(
                f"{len(self._values)} payloads for {self._size} rows"
            )
        counts = np.zeros(self._size, dtype=np.int64)
        for membership in self._memberships:
            for row in membership._rows:
                if not self._live[row]:
                    raise ValidationError(
                        f"membership holds tombstoned row {row}"
                    )
                counts[row] += 1
        live = self._live[: self._size]
        if not np.array_equal(counts[live], self._refcounts[: self._size][live]):
            raise ValidationError("refcounts disagree with memberships")
        ids = {int(self._entry_ids[row]) for row in np.flatnonzero(live)}
        if ids != set(self._row_by_id):
            raise ValidationError("entry-id map disagrees with live rows")
