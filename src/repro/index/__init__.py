"""The columnar level-store engine.

One :class:`LevelStore` per overlay level holds every published entry in
contiguous columnar arrays; overlay nodes hold :class:`NodeMembership`
row-index sets into the shared store, and range queries return
:class:`CandidateSet` handles that the Eq. 1 scoring layer consumes
without re-stacking. See ``docs/architecture.md`` for the design.
"""

from repro.index.store import (
    CandidateSet,
    ColumnBlock,
    LevelStore,
    NodeMembership,
    StoredEntryView,
    intersection_mask_columns,
)

__all__ = [
    "CandidateSet",
    "ColumnBlock",
    "LevelStore",
    "NodeMembership",
    "StoredEntryView",
    "intersection_mask_columns",
]
