"""Terminal charts: render experiment series without a plotting stack.

The benchmark harness reports the paper's figures as tables; these helpers
additionally sketch their *shape* (the thing we actually reproduce) as
ASCII line/bar charts, used by the CLI's ``--plot`` flag.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 100 or abs(value) == int(abs(value)):
        return f"{value:g}"
    return f"{value:.3g}"


def line_chart(
    series: dict[str, Sequence[float]],
    *,
    x_labels: Sequence | None = None,
    title: str | None = None,
    height: int = 12,
    width: int = 60,
) -> str:
    """Render one or more numeric series as an ASCII line chart.

    Parameters
    ----------
    series:
        Mapping from series label to its y-values; all series must share
        the x-axis. Each series is drawn with its own marker character.
    x_labels:
        Optional x-axis labels (first and last are printed).
    title:
        Optional heading.
    height / width:
        Plot area size in character cells.
    """
    if not series:
        raise ValueError("series must be non-empty")
    lengths = {len(v) for v in series.values()}
    if len(lengths) != 1:
        raise ValueError("all series must have equal length")
    n_points = lengths.pop()
    if n_points == 0:
        raise ValueError("series must contain at least one point")

    values = [v for ys in series.values() for v in ys]
    lo, hi = min(values), max(values)
    if math.isclose(lo, hi):
        hi = lo + 1.0
    markers = "ox+*#@%&"
    grid = [[" "] * width for __ in range(height)]

    def cell(i: int, value: float) -> tuple[int, int]:
        col = 0 if n_points == 1 else round(i * (width - 1) / (n_points - 1))
        row = round((value - lo) / (hi - lo) * (height - 1))
        return height - 1 - row, col

    for marker, (label, ys) in zip(markers, series.items()):
        for i, value in enumerate(ys):
            r, c = cell(i, value)
            grid[r][c] = marker

    y_ticks = [hi, (hi + lo) / 2, lo]
    tick_rows = {0: y_ticks[0], height // 2: y_ticks[1], height - 1: y_ticks[2]}
    label_width = max(len(_format_tick(t)) for t in y_ticks)
    lines = []
    if title:
        lines.append(title)
    for r in range(height):
        tick = _format_tick(tick_rows[r]) if r in tick_rows else ""
        lines.append(f"{tick:>{label_width}} |" + "".join(grid[r]))
    lines.append(" " * label_width + " +" + "-" * width)
    if x_labels is not None and len(x_labels) >= 1:
        first, last = str(x_labels[0]), str(x_labels[-1])
        pad = max(0, width - len(first) - len(last))
        lines.append(" " * (label_width + 2) + first + " " * pad + last)
    legend = "   ".join(
        f"{marker}={label}" for marker, label in zip(markers, series)
    )
    lines.append(" " * (label_width + 2) + legend)
    return "\n".join(lines)


def bar_chart(
    items: Sequence[tuple[str, float]],
    *,
    title: str | None = None,
    width: int = 50,
) -> str:
    """Render labelled values as horizontal bars."""
    if not items:
        raise ValueError("items must be non-empty")
    peak = max(value for __, value in items)
    label_width = max(len(str(label)) for label, __ in items)
    lines = []
    if title:
        lines.append(title)
    for label, value in items:
        filled = 0 if peak <= 0 else round(value / peak * width)
        bar = "#" * filled
        lines.append(f"{label:>{label_width}} |{bar} {_format_tick(value)}")
    return "\n".join(lines)
