"""Argument validation helpers.

Every public entry point in the library validates its inputs through these
helpers so error messages are uniform and point at the offending argument.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError, ValidationError


def check_positive(value: float, name: str, *, strict: bool = True) -> float:
    """Validate that ``value`` is a positive (or non-negative) finite number.

    Parameters
    ----------
    value:
        The number to check.
    name:
        Argument name used in the error message.
    strict:
        When true (default) zero is rejected; otherwise zero is allowed.

    Returns
    -------
    float
        ``value`` unchanged, for call-site chaining.
    """
    if not np.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    if strict and value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    if not strict and value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return float(value)


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    if not np.isfinite(value) or not 0.0 <= value <= 1.0:
        raise ValidationError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)


def check_power_of_two(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer power of two."""
    if value != int(value) or value < 1:
        raise DimensionalityError(f"{name} must be a positive integer, got {value!r}")
    value = int(value)
    if value & (value - 1) != 0:
        raise DimensionalityError(f"{name} must be a power of two, got {value}")
    return value


def check_vector(x: np.ndarray, name: str, *, dim: int | None = None) -> np.ndarray:
    """Validate and coerce a 1-D float vector.

    Parameters
    ----------
    x:
        Array-like to validate.
    name:
        Argument name used in error messages.
    dim:
        When given, the required length of the vector.
    """
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 1:
        raise ValidationError(f"{name} must be a 1-D vector, got ndim={arr.ndim}")
    if dim is not None and arr.shape[0] != dim:
        raise DimensionalityError(
            f"{name} must have length {dim}, got {arr.shape[0]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def check_matrix(
    x: np.ndarray, name: str, *, dim: int | None = None, min_rows: int = 1
) -> np.ndarray:
    """Validate and coerce a 2-D float matrix of row vectors."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.ndim != 2:
        raise ValidationError(f"{name} must be a 2-D matrix, got ndim={arr.ndim}")
    if arr.shape[0] < min_rows:
        raise ValidationError(
            f"{name} must have at least {min_rows} row(s), got {arr.shape[0]}"
        )
    if dim is not None and arr.shape[1] != dim:
        raise DimensionalityError(
            f"{name} must have {dim} columns, got {arr.shape[1]}"
        )
    if not np.all(np.isfinite(arr)):
        raise ValidationError(f"{name} contains non-finite values")
    return arr


def check_unit_cube(x: np.ndarray, name: str, *, tol: float = 1e-9) -> np.ndarray:
    """Validate that all coordinates of ``x`` lie in [0, 1] (within ``tol``)."""
    arr = np.asarray(x, dtype=np.float64)
    if arr.size and (arr.min() < -tol or arr.max() > 1.0 + tol):
        raise ValidationError(
            f"{name} must lie in the unit cube [0, 1]^d; "
            f"range is [{arr.min():.6g}, {arr.max():.6g}]"
        )
    return np.clip(arr, 0.0, 1.0)
