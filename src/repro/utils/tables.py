"""ASCII table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's figures plot;
this module keeps that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(value, precision: int) -> str:
    """Format a cell: floats get fixed precision, everything else ``str``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Sequence of row value sequences; each must match ``headers`` length.
    title:
        Optional title line printed above the table.
    precision:
        Decimal places used for float cells.
    """
    header_cells = [str(h) for h in headers]
    body = []
    for row in rows:
        if len(row) != len(header_cells):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(header_cells)} columns"
            )
        body.append([_fmt(cell, precision) for cell in row])

    widths = [len(h) for h in header_cells]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.rjust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    parts = []
    if title:
        parts.append(title)
    parts.append(sep)
    parts.append(line(header_cells))
    parts.append(sep)
    parts.extend(line(row) for row in body)
    parts.append(sep)
    return "\n".join(parts)
