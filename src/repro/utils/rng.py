"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
``numpy.random.Generator``. These helpers normalise that choice and derive
independent child generators for sub-components so experiments are exactly
reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | None | np.random.Generator"


def ensure_rng(rng: int | None | np.random.Generator) -> np.random.Generator:
    """Return a ``numpy.random.Generator`` for ``rng``.

    Accepts an existing generator (returned as-is), an integer seed, or
    ``None`` (fresh OS-entropy generator).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def spawn_rngs(rng: int | None | np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators from ``rng``.

    Uses the NumPy ``spawn`` mechanism so children never overlap streams.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    parent = ensure_rng(rng)
    return [np.random.default_rng(seed) for seed in parent.bit_generator.seed_seq.spawn(n)]
