"""Shared utilities: argument validation, RNG plumbing, statistics, tables."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.stats import RunningStats, summarize
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_positive,
    check_power_of_two,
    check_probability,
    check_unit_cube,
    check_vector,
    check_matrix,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "RunningStats",
    "summarize",
    "format_table",
    "check_positive",
    "check_power_of_two",
    "check_probability",
    "check_unit_cube",
    "check_vector",
    "check_matrix",
]
