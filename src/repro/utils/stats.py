"""Light-weight streaming and summary statistics used by the evaluation harness."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np


@dataclass
class RunningStats:
    """Welford streaming mean/variance with min/max tracking.

    Used by the simulator's metric counters where accumulating full sample
    arrays per message would be wasteful.
    """

    count: int = 0
    _mean: float = 0.0
    _m2: float = 0.0
    _min: float = field(default=math.inf)
    _max: float = field(default=-math.inf)

    def add(self, value: float) -> None:
        """Fold one observation into the running statistics."""
        self.count += 1
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value

    def extend(self, values) -> None:
        """Fold an iterable of observations."""
        for value in values:
            self.add(float(value))

    @property
    def mean(self) -> float:
        """Mean of the observations so far (0.0 when empty)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance of the observations so far."""
        return self._m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation."""
        return math.sqrt(self.variance)

    @property
    def min(self) -> float:
        """Smallest observation (``inf`` when empty)."""
        return self._min

    @property
    def max(self) -> float:
        """Largest observation (``-inf`` when empty)."""
        return self._max

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Return a new ``RunningStats`` equal to observing both streams."""
        if other.count == 0:
            merged = RunningStats()
            merged.__dict__.update(self.__dict__)
            return merged
        if self.count == 0:
            merged = RunningStats()
            merged.__dict__.update(other.__dict__)
            return merged
        merged = RunningStats()
        merged.count = self.count + other.count
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.count / merged.count
        merged._m2 = (
            self._m2 + other._m2 + delta * delta * self.count * other.count / merged.count
        )
        merged._min = min(self._min, other._min)
        merged._max = max(self._max, other._max)
        return merged


def gini(values) -> float:
    """Gini coefficient of a non-negative sample (0 = equal, →1 = skewed).

    The loadmap's headline skew statistic: how unevenly traffic, rows, or
    energy are spread across zones/peers. Empty and all-zero samples are
    perfectly equal (0.0); negative values are rejected.
    """
    arr = np.sort(np.asarray(list(values), dtype=np.float64))
    if arr.size == 0:
        return 0.0
    if np.any(arr < 0):
        raise ValueError("gini is defined for non-negative values only")
    total = arr.sum()
    if total == 0.0:
        return 0.0
    ranks = np.arange(1, arr.size + 1, dtype=np.float64)
    return float(
        (2.0 * np.dot(ranks, arr) / (arr.size * total))
        - (arr.size + 1.0) / arr.size
    )


def summarize(values, *, percentiles: tuple[float, ...] = (50.0, 95.0, 99.0)) -> dict:
    """Summarise a sample into mean/std/min/max and the given percentiles.

    Returns a plain dict so reports can be serialised without custom types.
    """
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {"count": 0, "mean": 0.0, "std": 0.0, "min": 0.0, "max": 0.0}
    out = {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "max": float(arr.max()),
    }
    for p in percentiles:
        out[f"p{p:g}"] = float(np.percentile(arr, p))
    return out
