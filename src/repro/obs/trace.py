"""Structured trace spans for publish/query pipelines.

Every traced operation produces a *span tree* — ``publish → dwt →
kmeans[level] → can_insert[level]``, ``query → translate →
sphere_filter[level] → score → contact_peers`` — where each span records
wall (or simulated) time, free-form attributes (per-level candidate /
pruned / surviving sphere counts, score distributions, …) and additive
counters (hops, bytes, messages) accumulated from the network fabric
while the span is open.

Tracing is **off by default**: the active recorder is a
:class:`NullRecorder` whose ``span()`` hands back one shared no-op
context manager, so instrumented hot paths cost a single attribute check
(``state.recorder.enabled``) plus, at most, one no-op call per
operation. Enable it with :func:`tracing`::

    with tracing() as rec:
        network.range_query(q, 0.1)
    rec.write_jsonl("trace.jsonl")
    print(rec.flame())

The recorder is single-threaded by design — the discrete-event simulator
runs one event at a time, so spans opened and closed inside one event
callback can never interleave with another event's spans.
"""

from __future__ import annotations

import json
import time
from typing import Callable


class Span:
    """One node of a trace tree.

    Attributes
    ----------
    name:
        Phase name; per-level phases carry the level in brackets
        (``kmeans[D_2]``).
    span_id / parent_id:
        Tree linkage; ``parent_id`` is ``None`` for roots. Ids increase
        in span *start* order, giving a deterministic total order even
        when a simulated clock stands still.
    depth:
        Nesting depth (0 for roots).
    start / end:
        Clock readings at open/close; ``end`` is ``None`` while open.
    attrs:
        Free-form annotations set by the instrumented code.
    counts:
        Additive counters (``hops``, ``bytes``, ``messages``, …)
        accumulated via :meth:`TraceRecorder.add` while the span — or any
        of its descendants — was the innermost open span.
    """

    __slots__ = (
        "name", "span_id", "parent_id", "depth", "start", "end",
        "attrs", "counts",
    )

    def __init__(self, name, span_id, parent_id, depth, start, attrs):
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.start = start
        self.end = None
        self.attrs = attrs
        self.counts: dict = {}

    def set(self, **attrs) -> None:
        """Attach (or overwrite) annotations on this span."""
        self.attrs.update(attrs)

    @property
    def duration(self) -> float:
        """Elapsed clock time (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def to_record(self) -> dict:
        """JSON-safe flat representation (one JSONL line)."""
        return {
            "span": self.name,
            "id": self.span_id,
            "parent": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
            "counts": dict(self.counts),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Span({self.name!r}, id={self.span_id}, depth={self.depth})"


class _SpanContext:
    """Context manager opening one span on enter, closing it on exit."""

    __slots__ = ("_recorder", "_name", "_attrs", "_span")

    def __init__(self, recorder, name, attrs):
        self._recorder = recorder
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> Span:
        self._span = self._recorder._open(self._name, self._attrs)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._recorder._close(self._span)
        return False


class _NullSpan:
    """Shared do-nothing stand-in for a :class:`Span` when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        """No-op."""


NULL_SPAN = _NullSpan()


class NullRecorder:
    """Recorder used when tracing is disabled: every operation is a no-op.

    ``span()`` returns the one shared :data:`NULL_SPAN`, so disabled
    tracing allocates nothing per call.
    """

    enabled = False
    spans: tuple = ()

    def span(self, name: str, **attrs) -> _NullSpan:
        """Hand back the shared no-op span."""
        return NULL_SPAN

    def annotate(self, **attrs) -> None:
        """No-op."""

    def add(self, **counts) -> None:
        """No-op."""


NULL_RECORDER = NullRecorder()


class TraceRecorder:
    """Collects a forest of spans from instrumented pipeline code.

    Parameters
    ----------
    clock:
        Zero-argument callable for span timestamps. Defaults to
        ``time.perf_counter`` (real seconds, what ``repro profile``
        wants); pass ``lambda: scheduler.now`` to timestamp with the
        discrete-event simulator's virtual clock instead.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else time.perf_counter
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 1

    # -- recording ----------------------------------------------------------

    def span(self, name: str, **attrs) -> _SpanContext:
        """Open a child span of the innermost open span (``with`` it)."""
        return _SpanContext(self, name, attrs)

    def _open(self, name: str, attrs: dict) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            start=self.clock(),
            attrs=attrs,
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
        span.end = self.clock()

    def annotate(self, **attrs) -> None:
        """Attach annotations to the innermost open span (if any)."""
        if self._stack:
            self._stack[-1].attrs.update(attrs)

    def add(self, **counts) -> None:
        """Accumulate additive counters onto every open span.

        Adding to the whole open stack means each span's ``counts``
        naturally include its descendants' traffic — per-phase bytes and
        hops come for free.
        """
        for span in self._stack:
            bucket = span.counts
            for key, value in counts.items():
                bucket[key] = bucket.get(key, 0) + value

    @property
    def open_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    # -- export -------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """All spans as JSON-safe dicts, in start order."""
        return [span.to_record() for span in self.spans]

    def dumps_jsonl(self) -> str:
        """The whole trace as JSON Lines text."""
        return "\n".join(
            json.dumps(record, sort_keys=True) for record in self.to_records()
        )

    def write_jsonl(self, path) -> int:
        """Write one JSON object per span to ``path``; returns span count."""
        text = self.dumps_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        return len(self.spans)

    def flame(self, *, max_depth: int | None = None) -> str:
        """Human-readable aggregated flame summary (indent = depth)."""
        from repro.obs.profile import flame_summary

        return flame_summary(self.spans, max_depth=max_depth)


def read_jsonl(path) -> list[dict]:
    """Load span records written by :meth:`TraceRecorder.write_jsonl`."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


class _ObsState:
    """Mutable holder so instrumented modules can bind the attribute once."""

    __slots__ = ("recorder",)

    def __init__(self) -> None:
        self.recorder = NULL_RECORDER


#: Process-wide tracing state. Hot paths read ``state.recorder.enabled``.
state = _ObsState()


def recorder():
    """The currently active recorder (a :class:`NullRecorder` when off)."""
    return state.recorder


def set_recorder(rec) -> object:
    """Install ``rec`` (``None`` disables tracing); returns the previous."""
    previous = state.recorder
    state.recorder = rec if rec is not None else NULL_RECORDER
    return previous


class tracing:
    """Context manager enabling tracing for a block.

    >>> with tracing() as rec:
    ...     with rec.span("demo"):
    ...         pass
    >>> [s.name for s in rec.spans]
    ['demo']
    """

    def __init__(self, rec: TraceRecorder | None = None):
        self._rec = rec if rec is not None else TraceRecorder()
        self._previous = None

    def __enter__(self) -> TraceRecorder:
        self._previous = set_recorder(self._rec)
        return self._rec

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_recorder(self._previous)
        return False
