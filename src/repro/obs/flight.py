"""Causal message tracing: a bounded flight recorder for routing trees.

Span traces (:mod:`repro.obs.trace`) answer *where time and traffic
went*; the flight recorder answers *which messages moved, in what causal
order, and what happened to each one*. Every logical operation — a
publish, a routed insert, a range-query flood — opens an
:class:`Operation`; every :meth:`repro.net.network.Network.transmit`
inside it records one :class:`HopEdge` per radio frame, tagged with the
fate the fault injector decided (``sent``, ``dropped``, ``retransmit``,
``duplicate``) and the retry attempt that produced it. Edges carry the
operation id, the root *trace id*, and a per-operation hop index, so any
operation can be reconstructed offline into the routing tree the message
actually traversed — drops and retries appear as tagged edges, never as
holes.

Recording is **off by default**: the active recorder is a
:class:`NullFlightRecorder` whose every operation is a no-op, so the
disabled hot path costs a single attribute check per transmit. Enable it
with :func:`flight_recording`::

    with flight_recording() as rec:
        network.publish_all()
        network.range_query(q, 0.1)
    rec.write_jsonl("flight.jsonl")
    tree = rec.routing_tree(rec.ops[-1].op_id)

The edge buffer is a bounded ring (oldest edges evicted first) so
long-running simulations cannot grow without bound; per-operation
summary counters survive eviction. A ``sample`` rate below 1.0 records
only a seeded, deterministic subset of *root* operations (children
inherit the root's decision), which keeps overhead flat under heavy
load while preserving replayability.
"""

from __future__ import annotations

import json
import time
from typing import Callable

import numpy as np

#: Statuses a hop edge can carry. ``sent`` and ``dropped`` are *primary*
#: frames (what :class:`repro.net.metrics.NetworkMetrics` counts as
#: per-kind hops); ``retransmit`` and ``duplicate`` mirror the separate
#: metric buckets.
EDGE_STATUSES = ("sent", "dropped", "retransmit", "duplicate")

#: Default ring-buffer capacity (edges).
DEFAULT_CAPACITY = 200_000

#: Default bound on retained finished operations.
DEFAULT_MAX_OPS = 20_000


class HopEdge:
    """One radio frame between two overlay nodes.

    Attributes
    ----------
    op_id / trace_id:
        The innermost open operation and the root operation of its
        causal chain (``trace_id == op_id`` for root operations).
    seq:
        Hop index within the operation (0-based, in transmit order).
    kind:
        :class:`repro.net.messages.MessageKind` value string.
    source / dest:
        Fabric node ids.
    size_bytes:
        Wire size of the frame.
    status:
        One of :data:`EDGE_STATUSES`.
    attempt:
        Retry attempt that produced the frame (1 = first send); set by
        :func:`repro.faults.resilience.reliable_send` retries.
    t:
        Virtual (scheduler) time of the transmit.
    """

    __slots__ = (
        "op_id", "trace_id", "seq", "kind", "source", "dest",
        "size_bytes", "status", "attempt", "t",
    )

    def __init__(self, op_id, trace_id, seq, kind, source, dest,
                 size_bytes, status, attempt, t):
        self.op_id = op_id
        self.trace_id = trace_id
        self.seq = seq
        self.kind = kind
        self.source = source
        self.dest = dest
        self.size_bytes = size_bytes
        self.status = status
        self.attempt = attempt
        self.t = t

    def to_record(self) -> dict:
        """JSON-safe flat representation (one JSONL line)."""
        return {
            "op": self.op_id,
            "trace": self.trace_id,
            "seq": self.seq,
            "kind": self.kind,
            "source": self.source,
            "dest": self.dest,
            "bytes": self.size_bytes,
            "status": self.status,
            "attempt": self.attempt,
            "t": self.t,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HopEdge(op={self.op_id}, seq={self.seq}, {self.kind} "
            f"{self.source}->{self.dest}, {self.status})"
        )


class Operation:
    """One logical operation (a publish, an insert, a query flood).

    Summary counters are maintained as edges are recorded, so they stay
    correct even after the ring buffer evicts the operation's edges:
    ``hops`` counts primary frames (``sent`` + ``dropped``), matching
    what :class:`~repro.net.metrics.NetworkMetrics` reports as per-kind
    hops; ``drops``, ``retransmits`` and ``duplicates`` mirror the
    tagged-edge counts.
    """

    __slots__ = (
        "op_id", "trace_id", "parent_op", "kind", "attrs", "start", "end",
        "hops", "bytes", "drops", "retransmits", "duplicates", "sampled",
        "_next_seq",
    )

    def __init__(self, op_id, trace_id, parent_op, kind, attrs, start,
                 sampled):
        self.op_id = op_id
        self.trace_id = trace_id
        self.parent_op = parent_op
        self.kind = kind
        self.attrs = attrs
        self.start = start
        self.end = None
        self.hops = 0
        self.bytes = 0
        self.drops = 0
        self.retransmits = 0
        self.duplicates = 0
        self.sampled = sampled
        self._next_seq = 0

    def set(self, **attrs) -> None:
        """Attach (or overwrite) annotations on this operation."""
        self.attrs.update(attrs)

    def to_record(self) -> dict:
        """JSON-safe summary (one JSONL line, ``"record": "op"``)."""
        return {
            "record": "op",
            "op": self.op_id,
            "trace": self.trace_id,
            "parent": self.parent_op,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "hops": self.hops,
            "bytes": self.bytes,
            "drops": self.drops,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "attrs": dict(self.attrs),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Operation({self.kind!r}, id={self.op_id}, hops={self.hops})"
        )


class _OpContext:
    """Context manager opening one operation on enter, closing on exit."""

    __slots__ = ("_recorder", "_kind", "_attrs", "_op")

    def __init__(self, recorder, kind, attrs):
        self._recorder = recorder
        self._kind = kind
        self._attrs = attrs

    def __enter__(self) -> Operation:
        self._op = self._recorder._open(self._kind, self._attrs)
        return self._op

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self._op.attrs.setdefault("error", exc_type.__name__)
        self._recorder._close(self._op)
        return False


class _NullOperation:
    """Shared do-nothing stand-in for :class:`Operation` when disabled."""

    __slots__ = ()
    op_id = None
    trace_id = None
    hops = 0
    bytes = 0

    def __enter__(self) -> "_NullOperation":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs) -> None:
        """No-op."""


NULL_OPERATION = _NullOperation()


class NullFlightRecorder:
    """Recorder used when flight recording is off: every call is a no-op."""

    enabled = False
    edges: tuple = ()
    ops: tuple = ()

    def operation(self, kind: str, **attrs) -> _NullOperation:
        """Hand back the shared no-op operation."""
        return NULL_OPERATION

    def record(self, kind, source, dest, size_bytes, *, status="sent",
               copies=0, retransmits=0, t=0.0):
        """No-op; returns ``None`` (no trace context exists)."""
        return None

    def mark_retry(self, attempt: int) -> None:
        """No-op."""


NULL_FLIGHT_RECORDER = NullFlightRecorder()


class FlightRecorder:
    """Collects hop edges and operation summaries into bounded rings.

    Parameters
    ----------
    capacity:
        Maximum retained edges; the oldest are evicted first.
    max_ops:
        Maximum retained *finished* operations.
    clock:
        Zero-argument callable for operation open/close stamps (edges
        are stamped with the fabric's virtual clock by the caller).
        Defaults to ``time.perf_counter``; inject a fixed clock for
        byte-stable output.
    sample:
        Fraction of *root* operations recorded (children follow their
        root). 1.0 records everything.
    seed:
        Seed for the sampling draw — the same seed and workload sample
        the same operations.
    """

    enabled = True

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        max_ops: int = DEFAULT_MAX_OPS,
        clock: Callable[[], float] | None = None,
        sample: float = 1.0,
        seed: int = 0,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        self.capacity = int(capacity)
        self.max_ops = int(max_ops)
        self.clock = clock if clock is not None else time.perf_counter
        self.sample = float(sample)
        self._rng = np.random.default_rng(seed)
        self.edges: list[HopEdge] = []
        self.ops: list[Operation] = []
        self.evicted_edges = 0
        self.evicted_ops = 0
        self._stack: list[Operation] = []
        self._next_op_id = 1
        self._orphan_seq = 0
        self._retry_attempt = 0

    # -- operations ---------------------------------------------------------

    def operation(self, kind: str, **attrs) -> _OpContext:
        """Open a child operation of the innermost open one (``with`` it)."""
        return _OpContext(self, kind, attrs)

    def _open(self, kind: str, attrs: dict) -> Operation:
        parent = self._stack[-1] if self._stack else None
        if parent is None:
            sampled = (
                self.sample >= 1.0 or self._rng.random() < self.sample
            )
        else:
            sampled = parent.sampled
        op = Operation(
            op_id=self._next_op_id,
            trace_id=parent.trace_id if parent else self._next_op_id,
            parent_op=None if parent is None else parent.op_id,
            kind=kind,
            attrs=attrs,
            start=self.clock(),
            sampled=sampled,
        )
        self._next_op_id += 1
        self._stack.append(op)
        return op

    def _close(self, op: Operation) -> None:
        while self._stack:
            top = self._stack.pop()
            if top is op:
                break
        op.end = self.clock()
        self.ops.append(op)
        if len(self.ops) > self.max_ops:
            evict = len(self.ops) - self.max_ops
            del self.ops[:evict]
            self.evicted_ops += evict

    @property
    def current(self) -> Operation | None:
        """The innermost open operation, if any."""
        return self._stack[-1] if self._stack else None

    # -- recording ----------------------------------------------------------

    def mark_retry(self, attempt: int) -> None:
        """Tag the *next* recorded primary edge as retry ``attempt``.

        One-shot: consumed by the next :meth:`record` call. The
        simulator is single-threaded and
        :func:`repro.faults.resilience.reliable_send` transmits
        immediately after marking, so the pairing is exact.
        """
        self._retry_attempt = int(attempt)

    def record(
        self,
        kind: str,
        source: int,
        dest: int,
        size_bytes: int,
        *,
        status: str = "sent",
        copies: int = 0,
        retransmits: int = 0,
        t: float = 0.0,
    ):
        """Record one transmit: a primary edge plus tagged extras.

        ``status`` is the primary frame's fate (``sent`` or
        ``dropped``); ``retransmits`` link-layer re-sends and
        ``copies`` injected duplicates each add one tagged edge.
        Returns ``(trace_id, op_id, seq)`` of the primary edge — what
        the fabric stamps onto the :class:`repro.net.messages.Message`
        — or ``None`` when the operation was sampled out.
        """
        op = self._stack[-1] if self._stack else None
        attempt = self._retry_attempt or 1
        self._retry_attempt = 0
        if op is not None and not op.sampled:
            return None
        if op is None:
            op_id = trace_id = None
            seq = self._orphan_seq
            self._orphan_seq += 1 + retransmits + copies
        else:
            op_id, trace_id = op.op_id, op.trace_id
            seq = op._next_seq
            op._next_seq += 1 + retransmits + copies
            op.hops += 1
            op.bytes += size_bytes
            if status == "dropped":
                op.drops += 1
            op.retransmits += retransmits
            op.duplicates += copies
        self._append(HopEdge(
            op_id, trace_id, seq, kind, source, dest, size_bytes,
            status, attempt, t,
        ))
        for offset in range(retransmits):
            self._append(HopEdge(
                op_id, trace_id, seq + 1 + offset, kind, source, dest,
                size_bytes, "retransmit", attempt, t,
            ))
        for offset in range(copies):
            self._append(HopEdge(
                op_id, trace_id, seq + 1 + retransmits + offset, kind,
                source, dest, size_bytes, "duplicate", attempt, t,
            ))
        return (trace_id, op_id, seq)

    def _append(self, edge: HopEdge) -> None:
        self.edges.append(edge)
        if len(self.edges) > self.capacity:
            evict = len(self.edges) - self.capacity
            del self.edges[:evict]
            self.evicted_edges += evict

    # -- reconstruction -----------------------------------------------------

    def edges_for(self, op_id: int, *, subtree: bool = False) -> list[HopEdge]:
        """Edges of one operation (optionally including descendants')."""
        if not subtree:
            return [e for e in self.edges if e.op_id == op_id]
        wanted = {op_id}
        changed = True
        ops = list(self.ops) + self._stack
        while changed:
            changed = False
            for op in ops:
                if op.parent_op in wanted and op.op_id not in wanted:
                    wanted.add(op.op_id)
                    changed = True
        return [e for e in self.edges if e.op_id in wanted]

    def routing_tree(self, op_id: int, *, subtree: bool = True) -> dict:
        """Reconstruct one operation's routing tree from its edges.

        Returns ``{"op": op_id, "roots": [node, ...], "edges": N,
        "primary_edges": N, "dropped": N, "retransmits": N,
        "duplicates": N, "children": {node: [(dest, status), ...]}}``.
        Each *primary* edge (``sent``/``dropped``) hangs its destination
        under its source, in hop order — the tree a dissemination or
        flood actually traversed. Tagged ``retransmit``/``duplicate``
        edges annotate the same parent instead of adding tree nodes.
        """
        edges = self.edges_for(op_id, subtree=subtree)
        edges.sort(key=lambda e: (e.op_id, e.seq))
        children: dict[int, list] = {}
        seen: set[int] = set()
        roots: list[int] = []
        counts = {"sent": 0, "dropped": 0, "retransmit": 0, "duplicate": 0}
        for edge in edges:
            counts[edge.status] = counts.get(edge.status, 0) + 1
            if edge.source not in seen:
                seen.add(edge.source)
                roots.append(edge.source)
            if edge.status in ("sent", "dropped"):
                children.setdefault(edge.source, []).append(
                    (edge.dest, edge.status)
                )
                seen.add(edge.dest)
        return {
            "op": op_id,
            "roots": roots[:1],
            "edges": len(edges),
            "primary_edges": counts["sent"] + counts["dropped"],
            "dropped": counts["dropped"],
            "retransmits": counts["retransmit"],
            "duplicates": counts["duplicate"],
            "children": children,
        }

    # -- aggregation --------------------------------------------------------

    def op_summaries(self) -> list[dict]:
        """Finished operations as JSON-safe records, in close order."""
        return [op.to_record() for op in self.ops]

    def per_op_histograms(self) -> dict:
        """Per-kind hop/byte distributions across finished operations.

        Returns ``{kind: {"ops": N, "hops": {...}, "bytes": {...},
        "hop_counts": {hops: ops}}}`` where the inner summaries carry
        count/mean/min/max and ``hop_counts`` is an exact histogram of
        hops-per-operation (the quantity Figure 8 plots).
        """
        from repro.utils.stats import RunningStats

        grouped: dict[str, dict] = {}
        for op in self.ops:
            slot = grouped.setdefault(op.kind, {
                "ops": 0,
                "_hops": RunningStats(),
                "_bytes": RunningStats(),
                "hop_counts": {},
                "drops": 0,
                "retransmits": 0,
                "duplicates": 0,
            })
            slot["ops"] += 1
            slot["_hops"].add(float(op.hops))
            slot["_bytes"].add(float(op.bytes))
            slot["hop_counts"][op.hops] = (
                slot["hop_counts"].get(op.hops, 0) + 1
            )
            slot["drops"] += op.drops
            slot["retransmits"] += op.retransmits
            slot["duplicates"] += op.duplicates
        out: dict[str, dict] = {}
        for kind in sorted(grouped):
            slot = grouped[kind]
            hops, bytes_ = slot.pop("_hops"), slot.pop("_bytes")
            slot["hops"] = {
                "count": hops.count, "mean": hops.mean,
                "min": hops.min if hops.count else 0.0,
                "max": hops.max if hops.count else 0.0,
            }
            slot["bytes"] = {
                "count": bytes_.count, "mean": bytes_.mean,
                "min": bytes_.min if bytes_.count else 0.0,
                "max": bytes_.max if bytes_.count else 0.0,
            }
            slot["hop_counts"] = {
                str(k): slot["hop_counts"][k]
                for k in sorted(slot["hop_counts"])
            }
            out[kind] = slot
        return out

    # -- export -------------------------------------------------------------

    def to_records(self) -> list[dict]:
        """Edge records then operation summaries, JSON-safe."""
        return [e.to_record() for e in self.edges] + self.op_summaries()

    def dumps_jsonl(self) -> str:
        """The whole flight log as JSON Lines text."""
        return "\n".join(
            json.dumps(record, sort_keys=True)
            for record in self.to_records()
        )

    def write_jsonl(self, path) -> int:
        """Write one JSON object per edge/op to ``path``; returns count."""
        text = self.dumps_jsonl()
        with open(path, "w") as handle:
            if text:
                handle.write(text + "\n")
        return len(self.edges) + len(self.ops)

    def snapshot(self) -> dict:
        """Ring-buffer health summary for reports."""
        return {
            "edges": len(self.edges),
            "ops": len(self.ops),
            "evicted_edges": self.evicted_edges,
            "evicted_ops": self.evicted_ops,
            "capacity": self.capacity,
            "sample": self.sample,
        }


def read_flight_jsonl(path) -> tuple[list[dict], list[dict]]:
    """Load ``(edge_records, op_records)`` written by :meth:`write_jsonl`."""
    edges: list[dict] = []
    ops: list[dict] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("record") == "op":
                ops.append(record)
            else:
                edges.append(record)
    return edges, ops


class _FlightState:
    """Mutable holder so the fabric can bind the attribute once."""

    __slots__ = ("recorder",)

    def __init__(self) -> None:
        self.recorder = NULL_FLIGHT_RECORDER


#: Process-wide flight-recording state (mirrors ``repro.obs.trace.state``).
state = _FlightState()


def flight_recorder() -> object:
    """The currently active flight recorder (a null one when off)."""
    return state.recorder


def set_flight_recorder(rec) -> object:
    """Install ``rec`` (``None`` disables recording); returns the previous."""
    previous = state.recorder
    state.recorder = rec if rec is not None else NULL_FLIGHT_RECORDER
    return previous


class flight_recording:
    """Context manager enabling flight recording for a block.

    >>> with flight_recording() as rec:
    ...     with rec.operation("demo"):
    ...         _ = rec.record("data", 0, 1, 32, t=0.0)
    >>> [e.status for e in rec.edges]
    ['sent']
    """

    def __init__(self, rec: FlightRecorder | None = None):
        self._rec = rec if rec is not None else FlightRecorder()
        self._previous = None

    def __enter__(self) -> FlightRecorder:
        self._previous = set_flight_recorder(self._rec)
        return self._rec

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_flight_recorder(self._previous)
        return False
