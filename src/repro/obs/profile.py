"""Aggregate trace spans into per-phase profiles and flame summaries.

All functions accept either live :class:`repro.obs.trace.Span` objects or
the plain-dict records loaded back from JSONL — so ``repro profile`` can
run in-process and offline traces can be analysed identically.
"""

from __future__ import annotations

from repro.utils.tables import format_table


def _as_records(spans) -> list[dict]:
    records = []
    for span in spans:
        if isinstance(span, dict):
            records.append(span)
        else:
            records.append(span.to_record())
    return records


def _children_index(records: list[dict]) -> dict:
    children: dict = {}
    for record in records:
        children.setdefault(record["parent"], []).append(record)
    return children


def phase_rows(spans) -> list[dict]:
    """Aggregate spans by phase name.

    Returns one dict per phase with call count, total and self time (self
    excludes time spent in child spans), and the total / self hop, byte
    and message counters. Rows are sorted by descending self time, then
    name, so the dominant phase leads.
    """
    records = _as_records(spans)
    children = _children_index(records)
    phases: dict[str, dict] = {}
    for record in records:
        kids = children.get(record["id"], [])
        self_time = record["duration"] - sum(k["duration"] for k in kids)
        counts = record.get("counts", {})
        self_counts = {
            key: counts.get(key, 0)
            - sum(k.get("counts", {}).get(key, 0) for k in kids)
            for key in counts
        }
        row = phases.setdefault(
            record["span"],
            {
                "phase": record["span"],
                "calls": 0,
                "total_s": 0.0,
                "self_s": 0.0,
                "hops": 0,
                "bytes": 0,
                "messages": 0,
                "self_hops": 0,
                "self_bytes": 0,
            },
        )
        row["calls"] += 1
        row["total_s"] += record["duration"]
        row["self_s"] += self_time
        row["hops"] += counts.get("hops", 0)
        row["bytes"] += counts.get("bytes", 0)
        row["messages"] += counts.get("messages", 0)
        row["self_hops"] += self_counts.get("hops", 0)
        row["self_bytes"] += self_counts.get("bytes", 0)
    return sorted(
        phases.values(), key=lambda r: (-r["self_s"], r["phase"])
    )


def phase_table(spans, *, title: str | None = None) -> str:
    """Render :func:`phase_rows` as an ASCII table (time/hops/bytes)."""
    rows = phase_rows(spans)
    if not rows:
        return (title or "profile") + ": no spans recorded"
    wall = sum(r["self_s"] for r in rows)
    headers = [
        "phase", "calls", "total_s", "self_s", "self_%",
        "hops", "bytes", "messages",
    ]
    body = []
    for row in rows:
        share = (row["self_s"] / wall * 100.0) if wall > 0 else 0.0
        body.append([
            row["phase"], row["calls"], round(row["total_s"], 6),
            round(row["self_s"], 6), round(share, 1),
            row["hops"], row["bytes"], row["messages"],
        ])
    return format_table(headers, body, title=title, precision=6)


def top_spans(spans, k: int = 10) -> list[dict]:
    """The ``k`` individually slowest spans (records, longest first)."""
    records = _as_records(spans)
    ranked = sorted(records, key=lambda r: (-r["duration"], r["id"]))
    return ranked[: max(k, 0)]


def top_spans_table(spans, k: int = 10, *, title: str | None = None) -> str:
    """Render :func:`top_spans` as an ASCII table."""
    ranked = top_spans(spans, k)
    if not ranked:
        return (title or "top spans") + ": no spans recorded"
    headers = ["span", "duration_s", "hops", "bytes", "attrs"]
    body = []
    for record in ranked:
        attrs = record.get("attrs", {})
        attr_text = ", ".join(
            f"{key}={attrs[key]}" for key in sorted(attrs)
        )
        if len(attr_text) > 48:
            attr_text = attr_text[:45] + "..."
        counts = record.get("counts", {})
        body.append([
            record["span"], round(record["duration"], 6),
            counts.get("hops", 0), counts.get("bytes", 0), attr_text,
        ])
    return format_table(headers, body, title=title, precision=6)


def span_tree(spans) -> list[dict]:
    """Nest records into trees: each node gains a ``children`` list.

    Returns the list of roots in start order. Works on JSONL records —
    this is the round-trip complement of ``TraceRecorder.write_jsonl``.
    """
    records = [dict(record) for record in _as_records(spans)]
    by_id = {record["id"]: record for record in records}
    roots: list[dict] = []
    for record in records:
        record.setdefault("children", [])
    for record in records:
        parent = by_id.get(record["parent"])
        if parent is None:
            roots.append(record)
        else:
            parent["children"].append(record)
    return roots


def flame_summary(spans, *, max_depth: int | None = None) -> str:
    """Aggregated call-tree summary, one line per (path, phase).

    Sibling spans with the same name merge (calls accumulate); indent
    encodes depth. Durations are totals across the merged calls.
    """
    roots = span_tree(spans)
    if not roots:
        return "(no spans recorded)"
    lines: list[str] = []

    def walk(nodes: list[dict], depth: int) -> None:
        if max_depth is not None and depth >= max_depth:
            return
        merged: dict[str, dict] = {}
        order: list[str] = []
        for node in nodes:
            slot = merged.get(node["span"])
            if slot is None:
                merged[node["span"]] = {
                    "calls": 1,
                    "total": node["duration"],
                    "hops": node.get("counts", {}).get("hops", 0),
                    "bytes": node.get("counts", {}).get("bytes", 0),
                    "children": list(node["children"]),
                }
                order.append(node["span"])
            else:
                slot["calls"] += 1
                slot["total"] += node["duration"]
                slot["hops"] += node.get("counts", {}).get("hops", 0)
                slot["bytes"] += node.get("counts", {}).get("bytes", 0)
                slot["children"].extend(node["children"])
        for name in order:
            slot = merged[name]
            lines.append(
                f"{'  ' * depth}{name}  calls={slot['calls']} "
                f"total={slot['total']:.6f}s hops={slot['hops']} "
                f"bytes={slot['bytes']}"
            )
            walk(slot["children"], depth + 1)

    walk(roots, 0)
    return "\n".join(lines)
