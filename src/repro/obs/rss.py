"""Peak-RSS measurement: how much memory a run actually pinned.

The scale benchmarks report peers/sec and queries/sec *and* peak
resident set size — a 10⁵-peer run that fits in a laptop's RAM is a
different claim from one that swaps. The reader is injectable (the same
idiom as :class:`repro.obs.registry.MetricsRegistry` clocks) so tests
assert the plumbing without depending on the platform's accounting.

The default reader uses ``resource.getrusage(RUSAGE_SELF).ru_maxrss``,
which is kilobytes on Linux and bytes on macOS; both are normalized to
bytes here. ``ru_maxrss`` is a high-water mark — it never decreases
within a process — so report it per run, not per phase.
"""

from __future__ import annotations

import resource
import sys


def _default_reader() -> int:
    """Peak RSS of this process in bytes (platform-normalized)."""
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        return int(peak)
    return int(peak) * 1024


def peak_rss_bytes(reader=None) -> int:
    """Current peak resident set size in bytes.

    ``reader`` overrides the platform reader; it must return bytes.
    """
    return int((reader or _default_reader)())


def peak_rss_mb(reader=None) -> float:
    """Peak RSS in mebibytes — the human-facing number reports carry."""
    return peak_rss_bytes(reader) / (1024.0 * 1024.0)


def rss_snapshot(reader=None) -> dict:
    """JSON-safe peak-RSS block for reports and bench documents."""
    peak = peak_rss_bytes(reader)
    return {
        "peak_rss_bytes": peak,
        "peak_rss_mb": round(peak / (1024.0 * 1024.0), 2),
    }
