"""Zone and peer load accounting: who pays for dissemination, and how unevenly.

Two halves:

* :class:`LoadLedger` — an always-on per-fabric-node traffic ledger the
  :class:`repro.net.network.Network` charges on every transmit (messages
  and bytes in/out, retransmits, duplicates, drops) plus query-hit marks
  from the overlay flood path. Dict bumps only — the same cost class as
  the energy ledger that already runs on every hop.
* :func:`build_loadmap` — fuses the ledger with overlay geometry
  (zones, store rows held), the :class:`~repro.net.energy.EnergyLedger`,
  and the level stores' generation counters into one generation-tagged
  snapshot: per-zone and per-peer rows, top-k hotspot rankings, and
  Gini / max-over-mean skew statistics. This is the signal ROADMAP's
  load-aware replication and GeoP2P-style zone rebalancing consume.

The ledger is deliberately dependency-free (it knows nothing about CAN
or Hyper-M); ``build_loadmap`` duck-types over any network exposing
``overlays``/``fabric``/``overlay_node`` the way
:class:`repro.core.network.HyperMNetwork` does, so there is no import
cycle between ``repro.obs`` and ``repro.core``.
"""

from __future__ import annotations

from repro.utils.stats import gini


class NodeLoad:
    """Traffic counters for one fabric node."""

    __slots__ = (
        "msgs_in", "msgs_out", "bytes_in", "bytes_out",
        "retransmits", "duplicates", "drops", "query_hits",
    )

    def __init__(self) -> None:
        self.msgs_in = 0
        self.msgs_out = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.retransmits = 0
        self.duplicates = 0
        self.drops = 0
        self.query_hits = 0

    @property
    def bytes_total(self) -> int:
        """Bytes moved through this node's radio in either direction."""
        return self.bytes_in + self.bytes_out

    def to_record(self) -> dict:
        """JSON-safe flat counters."""
        return {
            "msgs_in": self.msgs_in,
            "msgs_out": self.msgs_out,
            "bytes_in": self.bytes_in,
            "bytes_out": self.bytes_out,
            "retransmits": self.retransmits,
            "duplicates": self.duplicates,
            "drops": self.drops,
            "query_hits": self.query_hits,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"NodeLoad(in={self.msgs_in}, out={self.msgs_out}, "
            f"bytes={self.bytes_total})"
        )


class LoadLedger:
    """Per-node traffic ledger, charged by the fabric on every transmit."""

    __slots__ = ("per_node",)

    def __init__(self) -> None:
        self.per_node: dict[int, NodeLoad] = {}

    def _slot(self, node_id: int) -> NodeLoad:
        slot = self.per_node.get(node_id)
        if slot is None:
            slot = NodeLoad()
            self.per_node[node_id] = slot
        return slot

    def charge(
        self,
        source: int,
        destination: int,
        size_bytes: int,
        *,
        retransmits: int = 0,
        duplicates: int = 0,
        dropped: bool = False,
    ) -> None:
        """Account one transmit: the primary frame plus tagged extras.

        Retransmits and duplicates burn radio on both endpoints (their
        bytes are included in the in/out totals) but are also counted in
        their own buckets so hotspot reports can separate useful traffic
        from fault-induced overhead. A dropped frame still costs the
        sender its transmission; the receiver never gets it.
        """
        frames = 1 + retransmits + duplicates
        src = self._slot(source)
        src.msgs_out += frames
        src.bytes_out += size_bytes * frames
        src.retransmits += retransmits
        src.duplicates += duplicates
        dst = self._slot(destination)
        if dropped:
            src.drops += 1
            dst.drops += 1
        else:
            dst.msgs_in += frames
            dst.bytes_in += size_bytes * frames
        dst.retransmits += retransmits
        dst.duplicates += duplicates

    def charge_bulk(self, senders, receivers, size_bytes: int) -> None:
        """Account many equal-sized delivered frames at once.

        The bulk-construction counterpart of :meth:`charge`: per-node
        totals land in the same counters, collapsed to one update per
        distinct endpoint (O(nodes), not O(frames)). Bulk traffic is
        clean by construction — no retransmits, duplicates, or drops.
        """
        import numpy as np

        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.size == 0:
            return
        out_ids, out_counts = np.unique(senders, return_counts=True)
        for node_id, count in zip(out_ids.tolist(), out_counts.tolist()):
            slot = self._slot(node_id)
            slot.msgs_out += count
            slot.bytes_out += size_bytes * count
        in_ids, in_counts = np.unique(receivers, return_counts=True)
        for node_id, count in zip(in_ids.tolist(), in_counts.tolist()):
            slot = self._slot(node_id)
            slot.msgs_in += count
            slot.bytes_in += size_bytes * count

    def note_query_hit(self, node_id: int, n: int = 1) -> None:
        """Mark ``node_id`` as visited by a range-query flood."""
        self._slot(node_id).query_hits += n

    def node_load(self, node_id: int) -> NodeLoad:
        """Counters for ``node_id`` (zeroed when never touched)."""
        return self.per_node.get(node_id) or NodeLoad()

    def snapshot(self) -> dict:
        """Ledger-wide totals (per-node detail lives in the loadmap)."""
        return {
            "nodes": len(self.per_node),
            "msgs": sum(s.msgs_out for s in self.per_node.values()),
            "bytes": sum(s.bytes_out for s in self.per_node.values()),
            "retransmits": sum(
                s.retransmits for s in self.per_node.values()
            ),
            "duplicates": sum(
                s.duplicates for s in self.per_node.values()
            ),
            "drops": sum(s.drops for s in self.per_node.values()),
            "query_hits": sum(
                s.query_hits for s in self.per_node.values()
            ),
        }


def _skew(values: list[float]) -> dict:
    """Gini + max-over-mean for one load dimension."""
    n = len(values)
    mean = sum(values) / n if n else 0.0
    peak = max(values) if values else 0.0
    return {
        "gini": gini(values),
        "max": peak,
        "mean": mean,
        "max_over_mean": (peak / mean) if mean > 0 else 0.0,
    }


def build_loadmap(network, *, top_k: int = 10) -> dict:
    """One generation-tagged load snapshot of a Hyper-M network.

    Parameters
    ----------
    network:
        A :class:`repro.core.network.HyperMNetwork` (or anything exposing
        ``overlays`` ``{level: overlay}``, a shared ``fabric``, ``peers``,
        and ``overlay_node(level, peer_id)``).
    top_k:
        Hotspot ranking depth.

    Returns a plain dict (see ``docs/observability.md`` for the schema)::

        {"generations": {level: store_generation},
         "zones":  [{level, node, peer, zones, volume, store_rows,
                     msgs_in, ..., energy}, ...],
         "peers":  [{peer, online, nodes, store_rows, msgs_in, ...,
                     energy}, ...],
         "sphere_heat": {level: {total, spheres,
                                 "top": top-k [{entry_id, heat, peer}]}},
         "hotspots": {"zones": top-k by bytes, "peers": top-k},
         "skew": {"zone_bytes": {gini, max, mean, max_over_mean},
                  "zone_rows": ..., "peer_bytes": ..., "peer_energy": ...}}

    Zone rows are per (level, overlay-node); peer rows aggregate each
    peer's nodes across every level. Both are sorted by their ids so two
    snapshots of the same state diff cleanly.

    On zoneless overlays (ring, BATON, VBI, Kademlia — anything with
    ``zone_geometry`` False) the ``zones`` section, its hotspot ranking
    and its skew statistics are simply empty; peer rows and peer skew
    are always present, computed from the same per-node ledger records.
    """
    fabric = network.fabric
    ledger = getattr(fabric, "load", None) or LoadLedger()
    energy = fabric.energy

    node_peer: dict[int, int] = {}
    for (level, peer_id), node_id in getattr(
        network, "_overlay_node", {}
    ).items():
        node_peer[node_id] = peer_id

    zone_rows: list[dict] = []
    peer_rows: dict[int, dict] = {}
    generations: dict[str, int] = {}
    sphere_heat: dict[str, dict] = {}
    for level, overlay in network.overlays.items():
        store = getattr(overlay, "level_store", None)
        generations[str(level)] = (
            int(store.generation) if store is not None else 0
        )
        if store is not None and hasattr(store, "sphere_heat"):
            heat = store.sphere_heat()
            top = sorted(
                heat.items(), key=lambda pair: (-pair[1], pair[0])
            )[:top_k]
            sphere_heat[str(level)] = {
                "total": int(sum(heat.values())),
                "spheres": len(heat),
                "top": [
                    {
                        "entry_id": entry_id,
                        "heat": count,
                        "peer": int(
                            store.view(store.row_of(entry_id)).peer_id
                        ),
                    }
                    for entry_id, count in top
                ],
            }
        # Zone rows only exist where the overlay partitions the key space
        # into geometric zones (CAN); zoneless substrates (ring arcs,
        # tree ranges, XOR buckets) contribute no zone rows rather than
        # fabricated zero-volume ones. Per-peer aggregation below always
        # runs from the same per-node records, so peer rows and their
        # skew statistics stay complete on every backend.
        has_zones = bool(getattr(overlay, "zone_geometry", False))
        for node_id in sorted(overlay.node_ids):
            node = overlay.node(node_id)
            load = ledger.node_load(node_id)
            zones = getattr(node, "zones", ())
            row = {
                "level": str(level),
                "node": node_id,
                "peer": node_peer.get(node_id),
                "zones": len(zones),
                "volume": float(getattr(node, "volume", 0.0)),
                "store_rows": int(getattr(node, "load", 0)),
                "energy": energy.node_energy(node_id),
                **load.to_record(),
            }
            if has_zones:
                zone_rows.append(row)
            peer_id = row["peer"]
            if peer_id is None:
                continue
            slot = peer_rows.setdefault(peer_id, {
                "peer": peer_id,
                "online": bool(
                    getattr(
                        network.peers.get(peer_id), "online", True
                    )
                ) if hasattr(network, "peers") else True,
                "nodes": 0, "store_rows": 0, "energy": 0.0,
                "msgs_in": 0, "msgs_out": 0,
                "bytes_in": 0, "bytes_out": 0,
                "retransmits": 0, "duplicates": 0, "drops": 0,
                "query_hits": 0,
            })
            slot["nodes"] += 1
            slot["store_rows"] += row["store_rows"]
            slot["energy"] += row["energy"]
            for key in (
                "msgs_in", "msgs_out", "bytes_in", "bytes_out",
                "retransmits", "duplicates", "drops", "query_hits",
            ):
                slot[key] += row[key]

    peers = [peer_rows[pid] for pid in sorted(peer_rows)]

    def bytes_total(row: dict) -> int:
        return row["bytes_in"] + row["bytes_out"]

    hot_zones = sorted(
        zone_rows, key=lambda r: (-bytes_total(r), r["node"])
    )[:top_k]
    hot_peers = sorted(
        peers, key=lambda r: (-bytes_total(r), r["peer"])
    )[:top_k]
    return {
        "generations": generations,
        "zones": zone_rows,
        "peers": peers,
        "sphere_heat": sphere_heat,
        "hotspots": {
            "zones": [
                {
                    "level": r["level"], "node": r["node"],
                    "peer": r["peer"], "bytes": bytes_total(r),
                    "store_rows": r["store_rows"],
                    "query_hits": r["query_hits"],
                }
                for r in hot_zones
            ],
            "peers": [
                {
                    "peer": r["peer"], "bytes": bytes_total(r),
                    "store_rows": r["store_rows"],
                    "energy": r["energy"],
                }
                for r in hot_peers
            ],
        },
        "skew": {
            "zone_bytes": _skew([float(bytes_total(r)) for r in zone_rows]),
            "zone_rows": _skew([float(r["store_rows"]) for r in zone_rows]),
            "peer_bytes": _skew([float(bytes_total(r)) for r in peers]),
            "peer_energy": _skew([float(r["energy"]) for r in peers]),
        },
    }
