"""Observability for the Hyper-M pipeline: metrics, traces, profiles.

Three coordinated pieces (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — a process-wide but injectable metrics
  registry (counters, gauges, histograms, timers) with deterministic
  snapshots; clocks are injectable so simulated time can drive timers.
* :mod:`repro.obs.trace` — structured span trees for every publish and
  query (``publish → dwt → kmeans[level] → can_insert[level]``; ``query →
  translate → sphere_filter[level] → score → contact_peers``) with JSONL
  export. Off by default: the active recorder is a no-op whose cost on
  the hot path is a single attribute check.
* :mod:`repro.obs.profile` — per-phase time/hops/bytes aggregation and
  flame summaries, powering ``python -m repro profile <experiment>``.
"""

from repro.obs.profile import (
    flame_summary,
    phase_rows,
    phase_table,
    span_tree,
    top_spans,
    top_spans_table,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    metrics,
    metrics_scope,
    set_metrics,
)
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TraceRecorder,
    read_jsonl,
    recorder,
    set_recorder,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_RECORDER",
    "NullRecorder",
    "Span",
    "Timer",
    "TraceRecorder",
    "flame_summary",
    "metrics",
    "metrics_scope",
    "phase_rows",
    "phase_table",
    "read_jsonl",
    "recorder",
    "set_metrics",
    "set_recorder",
    "span_tree",
    "top_spans",
    "top_spans_table",
    "tracing",
]
