"""Observability for the Hyper-M pipeline: metrics, traces, flight, load.

Coordinated pieces (see ``docs/observability.md``):

* :mod:`repro.obs.registry` — a process-wide but injectable metrics
  registry (counters, gauges, histograms, timers) with deterministic
  snapshots; clocks are injectable so simulated time can drive timers.
* :mod:`repro.obs.trace` — structured span trees for every publish and
  query (``publish → dwt → kmeans[level] → can_insert[level]``; ``query →
  translate → sphere_filter[level] → score → contact_peers``) with JSONL
  export. Off by default: the active recorder is a no-op whose cost on
  the hot path is a single attribute check.
* :mod:`repro.obs.profile` — per-phase time/hops/bytes aggregation and
  flame summaries, powering ``python -m repro profile <experiment>``.
* :mod:`repro.obs.flight` — causal message tracing: hop-by-hop edges in
  a bounded ring buffer, reconstructable into per-operation routing
  trees (drops, retries, and duplicates appear as tagged edges). Off by
  default with the same null-recorder idiom as tracing.
* :mod:`repro.obs.loadmap` — per-zone / per-peer load accounting (the
  always-on :class:`~repro.obs.loadmap.LoadLedger` on the fabric) and
  generation-tagged hotspot/skew snapshots via
  :func:`~repro.obs.loadmap.build_loadmap`.
* :mod:`repro.obs.schema` — validators for the exported trace/flight
  JSONL records and ``repro report`` JSON (also a CLI for CI gating).
"""

from repro.obs.flight import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    HopEdge,
    NullFlightRecorder,
    Operation,
    flight_recorder,
    flight_recording,
    read_flight_jsonl,
    set_flight_recorder,
)
from repro.obs.loadmap import LoadLedger, NodeLoad, build_loadmap
from repro.obs.profile import (
    flame_summary,
    phase_rows,
    phase_table,
    span_tree,
    top_spans,
    top_spans_table,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timer,
    metrics,
    metrics_scope,
    set_metrics,
)
from repro.obs.rss import peak_rss_bytes, peak_rss_mb, rss_snapshot
from repro.obs.trace import (
    NULL_RECORDER,
    NullRecorder,
    Span,
    TraceRecorder,
    read_jsonl,
    recorder,
    set_recorder,
    tracing,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "HopEdge",
    "LoadLedger",
    "MetricsRegistry",
    "NULL_FLIGHT_RECORDER",
    "NULL_RECORDER",
    "NodeLoad",
    "NullFlightRecorder",
    "NullRecorder",
    "Operation",
    "Span",
    "Timer",
    "TraceRecorder",
    "build_loadmap",
    "flame_summary",
    "flight_recorder",
    "flight_recording",
    "metrics",
    "metrics_scope",
    "peak_rss_bytes",
    "peak_rss_mb",
    "phase_rows",
    "phase_table",
    "read_flight_jsonl",
    "read_jsonl",
    "recorder",
    "rss_snapshot",
    "set_flight_recorder",
    "set_metrics",
    "set_recorder",
    "span_tree",
    "top_spans",
    "top_spans_table",
    "tracing",
]
