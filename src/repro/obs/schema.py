"""Validators for the exported observability artefacts.

Three document families cross the process boundary — span-trace JSONL
(:meth:`repro.obs.trace.TraceRecorder.write_jsonl`), flight JSONL
(:meth:`repro.obs.flight.FlightRecorder.write_jsonl`), and the fused
``repro report`` JSON (:func:`repro.evaluation.report.run_report`). CI
archives all three, so malformed records must fail the build, not
surface weeks later in a notebook. The checkers here are hand-rolled
(the container has no ``jsonschema``), field-exact, and cheap: each
returns a list of human-readable problem strings, empty when valid.

Run as a module to gate files in CI::

    python -m repro.obs.schema report.json --trace trace.jsonl \
        --flight flight.jsonl

Exit status is nonzero when any document fails, with one problem per
line on stderr.
"""

from __future__ import annotations

import json
import sys

from repro.obs.flight import EDGE_STATUSES

#: Required fields of one span-trace JSONL record → allowed types.
TRACE_FIELDS = {
    "span": str,
    "id": int,
    "parent": (int, type(None)),
    "depth": int,
    "start": (int, float),
    "end": (int, float, type(None)),
    "duration": (int, float),
    "attrs": dict,
    "counts": dict,
}

#: Required fields of one flight-edge JSONL record → allowed types.
EDGE_FIELDS = {
    "op": (int, type(None)),
    "trace": (int, type(None)),
    "seq": int,
    "kind": str,
    "source": int,
    "dest": int,
    "bytes": int,
    "status": str,
    "attempt": int,
    "t": (int, float),
}

#: Required fields of one flight-operation JSONL record → allowed types.
OP_FIELDS = {
    "record": str,
    "op": int,
    "trace": int,
    "parent": (int, type(None)),
    "kind": str,
    "start": (int, float),
    "end": (int, float, type(None)),
    "hops": int,
    "bytes": int,
    "drops": int,
    "retransmits": int,
    "duplicates": int,
    "attrs": dict,
}

#: Top-level sections a ``repro report`` JSON document must carry.
REPORT_SECTIONS = ("meta", "stats", "metrics", "loadmap", "operations")

#: Required fields of one loadmap zone row (peer rows share the traffic
#: fields but drop the geometry).
ZONE_FIELDS = (
    "level", "node", "zones", "volume", "store_rows", "energy",
    "msgs_in", "msgs_out", "bytes_in", "bytes_out",
    "retransmits", "duplicates", "drops", "query_hits",
)

_SKEW_FIELDS = ("gini", "max", "mean", "max_over_mean")


def _check_fields(record: dict, fields: dict, where: str) -> list[str]:
    problems = []
    for name, types in fields.items():
        if name not in record:
            problems.append(f"{where}: missing field {name!r}")
        elif not isinstance(record[name], types):
            problems.append(
                f"{where}: field {name!r} has type "
                f"{type(record[name]).__name__}"
            )
    return problems


def check_trace_record(record: dict, where: str = "trace") -> list[str]:
    """Problems in one span-trace JSONL record (empty list = valid)."""
    problems = _check_fields(record, TRACE_FIELDS, where)
    if not problems and record["depth"] < 0:
        problems.append(f"{where}: negative depth {record['depth']}")
    return problems


def check_flight_record(record: dict, where: str = "flight") -> list[str]:
    """Problems in one flight JSONL record (edge or op summary)."""
    if record.get("record") == "op":
        problems = _check_fields(record, OP_FIELDS, where)
        if not problems:
            for name in ("hops", "bytes", "drops", "retransmits",
                         "duplicates"):
                if record[name] < 0:
                    problems.append(
                        f"{where}: negative {name} {record[name]}"
                    )
        return problems
    problems = _check_fields(record, EDGE_FIELDS, where)
    if not problems:
        if record["status"] not in EDGE_STATUSES:
            problems.append(
                f"{where}: unknown status {record['status']!r}"
            )
        if record["seq"] < 0:
            problems.append(f"{where}: negative seq {record['seq']}")
        if record["attempt"] < 1:
            problems.append(
                f"{where}: attempt must be >= 1, got {record['attempt']}"
            )
        if record["bytes"] < 0:
            problems.append(f"{where}: negative bytes {record['bytes']}")
    return problems


def check_jsonl(path, checker) -> list[str]:
    """Validate every line of a JSONL file with ``checker``."""
    problems: list[str] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                problems.append(f"{where}: invalid JSON ({exc.msg})")
                continue
            if not isinstance(record, dict):
                problems.append(f"{where}: record is not an object")
                continue
            problems.extend(checker(record, where))
    return problems


def _check_skew(block, where: str) -> list[str]:
    if not isinstance(block, dict):
        return [f"{where}: not an object"]
    problems = []
    for name in _SKEW_FIELDS:
        if not isinstance(block.get(name), (int, float)):
            problems.append(f"{where}: missing numeric {name!r}")
    return problems


def check_loadmap(loadmap: dict, where: str = "loadmap") -> list[str]:
    """Problems in one :func:`repro.obs.loadmap.build_loadmap` snapshot."""
    problems = []
    if not isinstance(loadmap, dict):
        return [f"{where}: not an object"]
    for section in ("generations", "zones", "peers", "hotspots", "skew"):
        if section not in loadmap:
            problems.append(f"{where}: missing section {section!r}")
    if problems:
        return problems
    for index, row in enumerate(loadmap["zones"]):
        for name in ZONE_FIELDS:
            if name not in row:
                problems.append(
                    f"{where}.zones[{index}]: missing field {name!r}"
                )
    hotspots = loadmap["hotspots"]
    for group in ("zones", "peers"):
        if not isinstance(hotspots.get(group), list):
            problems.append(f"{where}.hotspots.{group}: not a list")
    for name, block in loadmap["skew"].items():
        problems.extend(_check_skew(block, f"{where}.skew.{name}"))
    return problems


def check_report(report: dict, where: str = "report") -> list[str]:
    """Problems in one fused ``repro report`` JSON document."""
    if not isinstance(report, dict):
        return [f"{where}: not an object"]
    problems = []
    for section in REPORT_SECTIONS:
        if section not in report:
            problems.append(f"{where}: missing section {section!r}")
    if problems:
        return problems
    meta = report["meta"]
    for name in ("command", "seed", "generated_by"):
        if name not in meta:
            problems.append(f"{where}.meta: missing field {name!r}")
    problems.extend(check_loadmap(report["loadmap"], f"{where}.loadmap"))
    operations = report["operations"]
    if not isinstance(operations, dict):
        problems.append(f"{where}.operations: not an object")
    else:
        for kind, row in operations.items():
            for name in ("ops", "hops", "bytes", "hop_counts"):
                if name not in row:
                    problems.append(
                        f"{where}.operations[{kind}]: missing {name!r}"
                    )
    if "energy" in report and not isinstance(report["energy"], dict):
        problems.append(f"{where}.energy: not an object")
    resources = report.get("resources")
    if resources is not None:
        if not isinstance(resources, dict):
            problems.append(f"{where}.resources: not an object")
        elif not isinstance(
            resources.get("peak_rss_bytes"), (int, float)
        ):
            problems.append(
                f"{where}.resources: missing numeric 'peak_rss_bytes'"
            )
    return problems


def check_report_file(path) -> list[str]:
    """Validate one report JSON file."""
    try:
        with open(path) as handle:
            report = json.load(handle)
    except json.JSONDecodeError as exc:
        return [f"{path}: invalid JSON ({exc.msg})"]
    return check_report(report, str(path))


def main(argv=None) -> int:
    """CLI entry point: validate report/trace/flight files; 0 = all valid."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description="Validate observability artefacts (report JSON, "
        "trace/flight JSONL) against the documented schemas.",
    )
    parser.add_argument(
        "report", nargs="?", help="run-report JSON file to validate"
    )
    parser.add_argument(
        "--trace", action="append", default=[],
        help="span-trace JSONL file (repeatable)",
    )
    parser.add_argument(
        "--flight", action="append", default=[],
        help="flight-recorder JSONL file (repeatable)",
    )
    args = parser.parse_args(argv)
    if not args.report and not args.trace and not args.flight:
        parser.error("nothing to validate")
    problems: list[str] = []
    if args.report:
        problems.extend(check_report_file(args.report))
    for path in args.trace:
        problems.extend(check_jsonl(path, check_trace_record))
    for path in args.flight:
        problems.extend(check_jsonl(path, check_flight_record))
    for problem in problems:
        print(problem, file=sys.stderr)
    if not problems:
        checked = len(args.trace) + len(args.flight) + bool(args.report)
        print(f"schema OK ({checked} file(s))")
    return 1 if problems else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())
