"""A process-wide (but injectable) metrics registry.

Counters, gauges, and histograms keyed by name plus optional labels, with
a :class:`Timer` context manager for phase timing. Nothing here touches
``time.monotonic`` directly — every clock is an injectable zero-argument
callable, so the discrete-event :class:`repro.net.events.Scheduler` can
drive timers with *simulated* seconds (``clock=lambda: scheduler.now``)
just as easily as ``time.perf_counter`` drives them with real ones.

``snapshot()`` emits plain dicts with deterministically sorted keys so
experiment reports diff cleanly across runs.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Callable

from repro.exceptions import ValidationError
from repro.utils.stats import RunningStats


def _instrument_key(name: str, labels: dict) -> str:
    """Canonical string key: ``name`` or ``name{a=1,b=x}`` (labels sorted)."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ValidationError(
                f"counter {self.name} increment must be >= 0, got {amount}"
            )
        self.value += amount


class Gauge:
    """A value that can move both ways (queue depth, open spans, …)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the gauge to ``value``."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the gauge by ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the gauge down by ``amount``."""
        self.value -= amount


class Histogram:
    """Streaming distribution summary (count/mean/min/max/std/total)."""

    __slots__ = ("name", "labels", "stats", "total")

    def __init__(self, name: str, labels: dict):
        self.name = name
        self.labels = labels
        self.stats = RunningStats()
        self.total = 0.0

    def observe(self, value: float) -> None:
        """Fold one observation into the distribution."""
        value = float(value)
        self.stats.add(value)
        self.total += value


class Timer:
    """Context manager observing elapsed clock time into a histogram.

    The clock is any zero-argument callable returning a float; pass
    ``lambda: scheduler.now`` to time in simulated seconds.
    """

    __slots__ = ("histogram", "clock", "_start", "elapsed")

    def __init__(self, histogram: Histogram, clock: Callable[[], float]):
        self.histogram = histogram
        self.clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Timer":
        self._start = self.clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = self.clock() - self._start
        self.histogram.observe(self.elapsed)
        return False


class MetricsRegistry:
    """Registry of named instruments with optional labels.

    Parameters
    ----------
    clock:
        Default clock for :meth:`timer`; ``time.perf_counter`` unless a
        simulated clock is injected.
    """

    def __init__(self, clock: Callable[[], float] | None = None):
        self.clock = clock if clock is not None else time.perf_counter
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, store: dict, cls, name: str, labels: dict):
        key = _instrument_key(name, labels)
        instrument = store.get(key)
        if instrument is None:
            instrument = store[key] = cls(name, labels)
        return instrument

    def counter(self, name: str, **labels) -> Counter:
        """The counter registered under ``name`` + ``labels`` (created lazily)."""
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        """The gauge registered under ``name`` + ``labels`` (created lazily)."""
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        """The histogram registered under ``name`` + ``labels`` (created lazily)."""
        return self._get(self._histograms, Histogram, name, labels)

    def timer(
        self, name: str, clock: Callable[[], float] | None = None, **labels
    ) -> Timer:
        """A :class:`Timer` feeding the histogram under ``name`` + ``labels``."""
        return Timer(
            self.histogram(name, **labels),
            clock if clock is not None else self.clock,
        )

    def reset(self) -> None:
        """Drop every registered instrument."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()

    def snapshot(self) -> dict:
        """Plain-dict summary with deterministic (sorted) key order."""
        histograms = {}
        for key in sorted(self._histograms):
            hist = self._histograms[key]
            stats = hist.stats
            histograms[key] = {
                "count": stats.count,
                "total": hist.total,
                "mean": stats.mean,
                "min": stats.min if stats.count else 0.0,
                "max": stats.max if stats.count else 0.0,
                "std": stats.std,
            }
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: self._gauges[key].value for key in sorted(self._gauges)
            },
            "histograms": histograms,
        }


#: The process-wide default registry; swap it with :func:`metrics_scope`.
_active = MetricsRegistry()


def metrics() -> MetricsRegistry:
    """The currently active registry (instrumentation writes here)."""
    return _active


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _active
    previous = _active
    _active = registry
    return previous


@contextmanager
def metrics_scope(registry: MetricsRegistry | None = None):
    """Temporarily route instrumentation into ``registry`` (fresh by default).

    Gives each experiment run an isolated snapshot without threading a
    registry through every call signature.
    """
    scoped = registry if registry is not None else MetricsRegistry()
    previous = set_metrics(scoped)
    try:
        yield scoped
    finally:
        set_metrics(previous)
