"""General orthonormal DWT with periodic extension and perfect reconstruction.

This is the library's "other wavelets" engine (the paper footnotes that its
Theorem 3.1 proof extends to non-Haar wavelets). Analysis at each step is::

    a[n] = sum_k h[k] * x[(2n + k) mod m]
    d[n] = sum_k g[k] * x[(2n + k) mod m]

and synthesis is the transpose — exact inversion for any orthonormal filter
pair under periodic extension. All operations act on the last axis, so
``(n, d)`` matrices transform in one vectorised call.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.wavelets.filters import scaling_filter, wavelet_filter


class Wavelet:
    """An orthonormal wavelet identified by family name (``haar``, ``db2``…)."""

    def __init__(self, name: str):
        self.name = name
        self.dec_lo = scaling_filter(name)
        self.dec_hi = wavelet_filter(name)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Wavelet({self.name!r})"

    @property
    def support(self) -> int:
        """Filter length (number of taps)."""
        return int(self.dec_lo.shape[0])


def _as_wavelet(wavelet) -> Wavelet:
    return wavelet if isinstance(wavelet, Wavelet) else Wavelet(wavelet)


def _analysis_step(x: np.ndarray, filt: np.ndarray) -> np.ndarray:
    """Circularly correlate ``x`` with ``filt`` and downsample by two."""
    m = x.shape[-1]
    half = m // 2
    idx = (2 * np.arange(half)[:, None] + np.arange(filt.shape[0])[None, :]) % m
    return np.einsum("...nk,k->...n", x[..., idx], filt)


def dwt_step(x: np.ndarray, wavelet="haar") -> tuple[np.ndarray, np.ndarray]:
    """One periodic DWT analysis step along the last axis."""
    w = _as_wavelet(wavelet)
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] % 2 != 0:
        raise DimensionalityError(
            f"dwt_step requires even length, got {x.shape[-1]}"
        )
    return _analysis_step(x, w.dec_lo), _analysis_step(x, w.dec_hi)


def idwt_step(
    approx: np.ndarray, detail: np.ndarray, wavelet="haar"
) -> np.ndarray:
    """Invert :func:`dwt_step` (transpose of the orthonormal analysis)."""
    w = _as_wavelet(wavelet)
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    if approx.shape != detail.shape:
        raise DimensionalityError(
            f"approx shape {approx.shape} != detail shape {detail.shape}"
        )
    half = approx.shape[-1]
    m = 2 * half
    out = np.zeros(approx.shape[:-1] + (m,), dtype=np.float64)
    offsets = 2 * np.arange(half)
    for k in range(w.support):
        pos = (offsets + k) % m
        # Positions are distinct for a fixed k, so fancy-index += is exact.
        out[..., pos] += approx * w.dec_lo[k] + detail * w.dec_hi[k]
    return out


def wavedec(
    x: np.ndarray, wavelet="haar", *, level: int | None = None
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Multi-level periodic DWT.

    Returns ``(approximation, details)`` with details ordered coarse to
    fine, mirroring :func:`repro.wavelets.haar.haar_decompose`.
    """
    x = np.asarray(x, dtype=np.float64)
    m = x.shape[-1]
    if m < 1 or m & (m - 1):
        raise DimensionalityError(f"length must be a power of two, got {m}")
    max_level = int(np.log2(m))
    if level is None:
        level = max_level
    if not 0 <= level <= max_level:
        raise DimensionalityError(
            f"level must be in [0, {max_level}], got {level}"
        )
    details: list[np.ndarray] = []
    approx = x
    for _ in range(level):
        approx, detail = dwt_step(approx, wavelet)
        details.append(detail)
    details.reverse()
    return approx, details


def waverec(
    approx: np.ndarray, details: list[np.ndarray], wavelet="haar"
) -> np.ndarray:
    """Invert :func:`wavedec` (details ordered coarse to fine)."""
    x = np.asarray(approx, dtype=np.float64)
    for detail in details:
        x = idwt_step(x, detail, wavelet)
    return x
