"""Pairwise-averaging Haar transform (the paper's convention).

One decomposition step maps a vector ``x`` of even length ``m`` to an
approximation ``A`` and a detail ``D``, each of length ``m / 2``::

    A_k = (x[2k] + x[2k+1]) / 2
    D_k = (x[2k] - x[2k+1]) / 2

This is the *averaging* (non-orthonormal) Haar used in Section 3.1 of the
paper: under it, Euclidean distances contract by exactly ``1/sqrt(2)`` per
step, which is the content of Theorem 3.1, and coefficients of data in
``[0, 1]^d`` stay in fixed intervals (``A`` in ``[0, 1]``, ``D`` in
``[-1/2, 1/2]``) so they can be affinely mapped into the CAN key space with
no global coordination.

All functions operate on the last axis, so an ``(n, d)`` matrix decomposes
``n`` vectors at once.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import DimensionalityError
from repro.utils.validation import check_power_of_two


def _haar_step_fast(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """One averaging-Haar step, pre-validated input.

    Fused form of ``((e + o) / 2, (e - o) / 2)``: the sums/differences are
    scaled in place, so each step makes two array passes instead of four
    and allocates no intermediate temporaries — the publish-time
    decomposition runs this over whole ``(n, d)`` item matrices.
    """
    evens = x[..., 0::2]
    odds = x[..., 1::2]
    approx = evens + odds
    approx *= 0.5
    detail = evens - odds
    detail *= 0.5
    return approx, detail


def haar_step(x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Apply one averaging-Haar step along the last axis.

    Parameters
    ----------
    x:
        Array whose last axis has even length.

    Returns
    -------
    (approximation, detail)
        Arrays with the last axis halved.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape[-1] % 2 != 0:
        raise DimensionalityError(
            f"haar_step requires even length, got {x.shape[-1]}"
        )
    return _haar_step_fast(x)


def inverse_haar_step(approx: np.ndarray, detail: np.ndarray) -> np.ndarray:
    """Invert :func:`haar_step`: reconstruct the vector of doubled length."""
    approx = np.asarray(approx, dtype=np.float64)
    detail = np.asarray(detail, dtype=np.float64)
    if approx.shape != detail.shape:
        raise DimensionalityError(
            f"approx shape {approx.shape} != detail shape {detail.shape}"
        )
    out = np.empty(approx.shape[:-1] + (approx.shape[-1] * 2,), dtype=np.float64)
    out[..., 0::2] = approx + detail
    out[..., 1::2] = approx - detail
    return out


def haar_decompose(
    x: np.ndarray, *, levels: int | None = None
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Fully (or partially) decompose ``x`` with the averaging Haar.

    Parameters
    ----------
    x:
        Array whose last axis is a power-of-two length ``d``.
    levels:
        Number of decomposition steps; defaults to ``log2(d)`` (full
        decomposition down to a length-1 approximation).

    Returns
    -------
    (approximation, details)
        ``approximation`` has last-axis length ``d / 2**levels``.
        ``details`` is ordered **coarse to fine** to match the paper's
        ``D_0, D_1, …`` indexing: ``details[i]`` has last-axis length
        ``d / 2**(levels - i)``. With a full decomposition, ``details[l]``
        is exactly the paper's ``D_l`` (dimensionality ``2^l``).
    """
    x = np.asarray(x, dtype=np.float64)
    d = check_power_of_two(x.shape[-1], "dimensionality")
    max_levels = int(np.log2(d))
    if levels is None:
        levels = max_levels
    if not 0 <= levels <= max_levels:
        raise DimensionalityError(
            f"levels must be in [0, {max_levels}] for d={d}, got {levels}"
        )
    details: list[np.ndarray] = []
    approx = x
    for _ in range(levels):
        # Lengths halve from a power of two, so every step stays even;
        # validating once up front lets the loop run the fused kernel.
        approx, detail = _haar_step_fast(approx)
        details.append(detail)
    details.reverse()
    return approx, details


def haar_reconstruct(approx: np.ndarray, details: list[np.ndarray]) -> np.ndarray:
    """Invert :func:`haar_decompose` (details ordered coarse to fine)."""
    x = np.asarray(approx, dtype=np.float64)
    for detail in details:
        x = inverse_haar_step(x, np.asarray(detail, dtype=np.float64))
    return x
