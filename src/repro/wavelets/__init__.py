"""Discrete Wavelet Transform engine.

Two implementations are provided:

* :mod:`repro.wavelets.haar` — the pairwise-*averaging* Haar convention used
  by the paper's proofs (``A_k = (x_{2k} + x_{2k+1}) / 2``). This is what
  Hyper-M publishes into the overlays, because its coefficient ranges are
  fixed and known a-priori (needed to map keys into the CAN unit cube).
* :mod:`repro.wavelets.transform` — a general orthonormal filter-bank DWT
  (Haar/db2/db3/db4) with perfect reconstruction, for users who want other
  wavelet families.

:mod:`repro.wavelets.multiresolution` assembles the paper's
``{A, D_0, …, D_L}`` subspace view, and :mod:`repro.wavelets.bounds`
implements the Theorem 3.1 radius scaling and coefficient-range bounds.
"""

from repro.wavelets.bounds import (
    coefficient_interval,
    from_unit_cube,
    radius_scale,
    theorem41_inflation,
    to_unit_cube,
)
from repro.wavelets.haar import (
    haar_decompose,
    haar_reconstruct,
    haar_step,
    inverse_haar_step,
)
from repro.wavelets.multiresolution import (
    Level,
    WaveletDecomposition,
    decompose,
    decompose_dataset,
    levels_for,
    publication_levels,
)
from repro.wavelets.transform import Wavelet, wavedec, waverec

__all__ = [
    "haar_step",
    "inverse_haar_step",
    "haar_decompose",
    "haar_reconstruct",
    "Level",
    "WaveletDecomposition",
    "decompose",
    "decompose_dataset",
    "levels_for",
    "publication_levels",
    "radius_scale",
    "coefficient_interval",
    "to_unit_cube",
    "from_unit_cube",
    "theorem41_inflation",
    "Wavelet",
    "wavedec",
    "waverec",
]
