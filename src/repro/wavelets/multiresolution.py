"""The paper's multiresolution subspace view: ``{A, D_0, D_1, …, D_{J-1}}``.

A ``d = 2^J``-dimensional vector is fully decomposed with the averaging Haar
into a 1-dimensional approximation ``A`` plus detail subspaces ``D_l`` of
dimensionality ``2^l`` for ``l = 0 … J-1`` (Figure 1 of the paper; Table 1
notation). Hyper-M publishes into the ``L`` *coarsest* subspaces —
``A, D_0, D_1, …, D_{L-2}`` — one overlay per subspace ("Hyper-M used four
layers of network overlay").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DimensionalityError
from repro.utils.validation import check_matrix, check_power_of_two, check_vector
from repro.wavelets.haar import haar_decompose, haar_reconstruct


@dataclass(frozen=True, order=True)
class Level:
    """Identifies one wavelet subspace.

    Attributes
    ----------
    kind:
        ``"A"`` for the approximation subspace, ``"D"`` for a detail subspace.
    index:
        The paper's ``l``: for ``D`` levels, the subspace has dimensionality
        ``2^l``. The approximation uses index 0 (it is also 1-dimensional and
        shares the ``D_0`` contraction factor — both are produced after all
        ``J`` transform steps).
    """

    # Sort key: approximation first, then details coarse-to-fine.
    sort_key: int
    kind: str
    index: int

    def __str__(self) -> str:  # pragma: no cover - trivial
        return "A" if self.kind == "A" else f"D{self.index}"

    @property
    def dimensionality(self) -> int:
        """Dimensionality of this subspace (1 for ``A``, ``2^l`` for ``D_l``)."""
        return 1 if self.kind == "A" else 2 ** self.index

    @staticmethod
    def approximation() -> "Level":
        """The approximation subspace ``A``."""
        return Level(-1, "A", 0)

    @staticmethod
    def detail(index: int) -> "Level":
        """The detail subspace ``D_index`` (dimensionality ``2^index``)."""
        if index < 0:
            raise DimensionalityError(f"detail index must be >= 0, got {index}")
        return Level(index, "D", index)


def levels_for(dimensionality: int) -> list[Level]:
    """All subspaces of a full decomposition of ``dimensionality``-dim data.

    Ordered coarse to fine: ``[A, D_0, D_1, …, D_{J-1}]`` where
    ``J = log2(dimensionality)``.
    """
    d = check_power_of_two(dimensionality, "dimensionality")
    j = int(np.log2(d))
    return [Level.approximation()] + [Level.detail(l) for l in range(j)]


def publication_levels(dimensionality: int, levels_used: int) -> list[Level]:
    """The ``levels_used`` coarsest subspaces Hyper-M publishes into.

    ``levels_used = 4`` (the paper's operating point) yields
    ``[A, D_0, D_1, D_2]`` with dimensionalities ``1, 1, 2, 4``.
    """
    all_levels = levels_for(dimensionality)
    if not 1 <= levels_used <= len(all_levels):
        raise DimensionalityError(
            f"levels_used must be in [1, {len(all_levels)}] for "
            f"d={dimensionality}, got {levels_used}"
        )
    return all_levels[:levels_used]


@dataclass(frozen=True)
class WaveletDecomposition:
    """A vector (or matrix of vectors) viewed in every wavelet subspace.

    Attributes
    ----------
    dimensionality:
        Original dimensionality ``d`` (a power of two).
    subspaces:
        Mapping from :class:`Level` to the coefficient array in that
        subspace. For matrix input the arrays are ``(n, 2^l)``.
    """

    dimensionality: int
    subspaces: dict

    def __getitem__(self, level: Level) -> np.ndarray:
        return self.subspaces[level]

    @property
    def levels(self) -> list[Level]:
        """Subspaces present, ordered coarse to fine."""
        return sorted(self.subspaces)

    def reconstruct(self) -> np.ndarray:
        """Invert the decomposition back to the original vector(s)."""
        approx = self.subspaces[Level.approximation()]
        j = int(np.log2(self.dimensionality))
        details = [self.subspaces[Level.detail(l)] for l in range(j)]
        return haar_reconstruct(approx, details)


def decompose(x: np.ndarray) -> WaveletDecomposition:
    """Fully decompose one vector into all its wavelet subspaces."""
    x = check_vector(x, "x")
    return _decompose_array(x)


def decompose_dataset(x: np.ndarray) -> WaveletDecomposition:
    """Fully decompose a matrix of row vectors (vectorised, single pass)."""
    x = check_matrix(x, "x")
    return _decompose_array(x)


def _decompose_array(x: np.ndarray) -> WaveletDecomposition:
    d = check_power_of_two(x.shape[-1], "dimensionality")
    approx, details = haar_decompose(x)
    subspaces = {Level.approximation(): approx}
    for l, detail in enumerate(details):
        subspaces[Level.detail(l)] = detail
    return WaveletDecomposition(dimensionality=d, subspaces=subspaces)
