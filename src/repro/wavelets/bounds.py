"""Theorem 3.1 radius scaling and coefficient-range bounds.

Theorem 3.1 (paper, Section 3.1): all points inside a sphere of radius ``r``
in the original ``d``-dimensional space map inside a sphere of radius
``r / sqrt(2^(log2 d - l))`` in the level-``l`` approximation or detail
space. Under the averaging-Haar convention this is exact: each transform
step is an orthogonal projection composed with a ``1/sqrt(2)`` scaling, and
the subspace at level ``l`` is reached after ``log2(d) - l`` steps (the
approximation ``A`` and the coarsest detail ``D_0`` are both reached after
all ``log2(d)`` steps).

Theorem 4.1: a point within the per-level thresholds in *every* subspace is
within ``R * sqrt(log2(d) + 1)`` of the query in the original space, i.e.
per-level filtering yields no false dismissals and bounded false positives.

This module also pins the coefficient ranges of data from the unit cube —
approximation coefficients stay in ``[0, 1]``, detail coefficients in
``[-1/2, 1/2]`` — and provides the affine maps between a subspace and the
CAN key space ``[0, 1]^m``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.utils.validation import check_power_of_two
from repro.wavelets.multiresolution import Level


def radius_scale(dimensionality: int, level: Level) -> float:
    """Theorem 3.1 contraction factor for ``level`` of ``d``-dim data.

    A sphere of radius ``r`` in the original space maps inside a sphere of
    radius ``r * radius_scale(d, level)`` in the given subspace.
    """
    d = check_power_of_two(dimensionality, "dimensionality")
    j = int(math.log2(d))
    steps = j if level.kind == "A" else j - level.index
    if steps < 0:
        raise ValueError(
            f"level {level} does not exist for dimensionality {d}"
        )
    return 2.0 ** (-steps / 2.0)


def theorem41_inflation(dimensionality: int) -> float:
    """Theorem 4.1 factor: per-level survivors lie within ``R * this`` of ``q``.

    Equals ``sqrt(log2(d) + 1)``: the guaranteed bound, in the original
    space, on the distance of any point passing all per-level thresholds.
    """
    d = check_power_of_two(dimensionality, "dimensionality")
    return math.sqrt(math.log2(d) + 1.0)


def coefficient_interval(level: Level) -> tuple[float, float]:
    """Closed interval containing every coefficient of unit-cube data.

    Averages of values in ``[0, 1]`` stay in ``[0, 1]``; half-differences
    stay in ``[-1/2, 1/2]``.
    """
    if level.kind == "A":
        return (0.0, 1.0)
    return (-0.5, 0.5)


def to_unit_cube(coeffs: np.ndarray, level: Level) -> np.ndarray:
    """Affinely map subspace coefficients into the CAN key space ``[0, 1]^m``.

    The map is fixed per level (it only depends on the coefficient interval),
    so every peer applies the same map with no coordination — a requirement
    in a MANET with no global view. Distances scale by a constant
    ``1 / (hi - lo)`` per level, preserving relative geometry.
    """
    lo, hi = coefficient_interval(level)
    return (np.asarray(coeffs, dtype=np.float64) - lo) / (hi - lo)


def from_unit_cube(keys: np.ndarray, level: Level) -> np.ndarray:
    """Invert :func:`to_unit_cube`."""
    lo, hi = coefficient_interval(level)
    return np.asarray(keys, dtype=np.float64) * (hi - lo) + lo


def key_space_radius(radius: float, level: Level) -> float:
    """Scale a subspace radius into the CAN key space of that level."""
    lo, hi = coefficient_interval(level)
    return float(radius) / (hi - lo)
