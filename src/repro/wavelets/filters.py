"""Orthonormal wavelet filter banks (Haar and Daubechies families).

Coefficients are the standard orthonormal Daubechies scaling filters
(sum = sqrt(2), unit norm). The wavelet (high-pass) filter is derived by
the quadrature-mirror relation ``g[k] = (-1)^k * h[n-1-k]``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError

_SQRT2 = math.sqrt(2.0)
_SQRT3 = math.sqrt(3.0)

#: Orthonormal scaling (low-pass) filters by family name.
SCALING_FILTERS: dict[str, tuple[float, ...]] = {
    "haar": (1.0 / _SQRT2, 1.0 / _SQRT2),
    "db1": (1.0 / _SQRT2, 1.0 / _SQRT2),
    "db2": (
        (1.0 + _SQRT3) / (4.0 * _SQRT2),
        (3.0 + _SQRT3) / (4.0 * _SQRT2),
        (3.0 - _SQRT3) / (4.0 * _SQRT2),
        (1.0 - _SQRT3) / (4.0 * _SQRT2),
    ),
    "db3": (
        0.3326705529500825,
        0.8068915093110924,
        0.4598775021184914,
        -0.13501102001025458,
        -0.08544127388202666,
        0.035226291885709536,
    ),
    "db4": (
        0.23037781330889648,
        0.7148465705529157,
        0.6308807679298589,
        -0.027983769416859854,
        -0.18703481171909309,
        0.030841381835560764,
        0.0328830116668852,
        -0.010597401785069032,
    ),
}


def scaling_filter(name: str) -> np.ndarray:
    """Return the orthonormal scaling filter for ``name`` (e.g. ``"db2"``)."""
    try:
        return np.asarray(SCALING_FILTERS[name], dtype=np.float64)
    except KeyError:
        available = ", ".join(sorted(SCALING_FILTERS))
        raise ValidationError(
            f"unknown wavelet {name!r}; available: {available}"
        ) from None


def wavelet_filter(name: str) -> np.ndarray:
    """Return the quadrature-mirror wavelet (high-pass) filter for ``name``."""
    h = scaling_filter(name)
    n = h.shape[0]
    signs = np.array([(-1.0) ** k for k in range(n)])
    return signs * h[::-1]
