"""Event queue and scheduler — the simulator's clock.

A minimal but complete discrete-event core: events are ``(time, seq)``
ordered in a binary heap; ``seq`` breaks ties FIFO so simultaneous events
run in scheduling order (deterministic replays). The paper describes the
same design: every message goes to an event queue which is periodically
emptied to simulate parallel execution.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.exceptions import ValidationError


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Ordered by ``(time, seq)`` so the heap pops chronologically with FIFO
    tie-breaking.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it when popped."""
        self.cancelled = True


class Scheduler:
    """Discrete-event scheduler with a virtual clock.

    Examples
    --------
    >>> sched = Scheduler()
    >>> fired = []
    >>> _ = sched.schedule_after(2.0, lambda: fired.append("b"))
    >>> _ = sched.schedule_after(1.0, lambda: fired.append("a"))
    >>> _ = sched.run()
    >>> fired
    ['a', 'b']
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    def __len__(self) -> int:
        return sum(1 for e in self._queue if not e.cancelled)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at absolute virtual ``time`` (>= now)."""
        if time < self._now:
            raise ValidationError(
                f"cannot schedule in the past: {time} < now {self._now}"
            )
        event = Event(time=time, seq=self._seq, action=action)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise ValidationError(f"delay must be >= 0, got {delay}")
        return self.schedule_at(self._now + delay, action)

    def step(self) -> bool:
        """Run the single earliest pending event. Returns False when idle."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.action()
            self.events_processed += 1
            return True
        return False

    def run(self, *, max_events: int | None = None) -> int:
        """Empty the queue (actions may schedule more). Returns events run.

        ``max_events`` guards against runaway feedback loops; ``None`` runs
        until idle.
        """
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                break
        return count

    def run_until(self, time: float) -> int:
        """Run events with timestamps <= ``time``; advance the clock to it."""
        count = 0
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > time:
                break
            self.step()
            count += 1
        self._now = max(self._now, time)
        return count
