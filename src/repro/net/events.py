"""Back-compat surface for the scheduler, now owned by ``repro.engine``.

The event queue and discrete-event clock moved verbatim to
:mod:`repro.engine.serial` when the execution-engine plane was extracted
(PR 10). Every pre-engine import path keeps working: ``Scheduler`` *is*
:class:`repro.engine.serial.SerialScheduler` (an alias, not a copy), so
behaviour — ``(time, seq)`` heap ordering, FIFO tie-breaking, replay
determinism — is bit-identical by construction.
"""

from __future__ import annotations

from repro.engine.serial import Event, SerialScheduler

#: The pre-engine name; kept as a true alias for existing call sites.
Scheduler = SerialScheduler

__all__ = ["Event", "Scheduler"]
