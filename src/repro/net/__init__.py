"""Discrete-event MANET simulator.

The paper evaluates on a simulated network: "We implemented CAN … and
simulated the parallel behavior of a peer-to-peer network with a scheduler
class and an event queue" (Section 5.2). This package is that substrate:

* :mod:`repro.net.events` — the event queue / scheduler;
* :mod:`repro.net.messages` — typed messages with byte sizes;
* :mod:`repro.net.energy` — a radio energy model (tx/rx per byte), backing
  the paper's energy-efficiency claims with measurable numbers;
* :mod:`repro.net.metrics` — hop/message/byte counters;
* :mod:`repro.net.network` — the network fabric that overlays send through.
"""

from repro.net.energy import EnergyModel
from repro.net.events import Event, Scheduler
from repro.net.messages import Message, MessageKind
from repro.net.metrics import NetworkMetrics, OperationMetrics
from repro.net.network import Network

__all__ = [
    "Scheduler",
    "Event",
    "Message",
    "MessageKind",
    "EnergyModel",
    "NetworkMetrics",
    "OperationMetrics",
    "Network",
]
