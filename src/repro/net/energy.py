"""Radio energy model.

A first-order MANET radio model: transmitting or receiving a message costs
a fixed electronics overhead plus a per-byte cost. Defaults approximate a
Bluetooth-class short-range radio (the paper's motivating hardware) in
microjoules; the *ratios* are what matter for comparing dissemination
strategies, and those are robust to the exact constants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.validation import check_positive


@dataclass
class EnergyModel:
    """Per-message energy accounting.

    Attributes
    ----------
    tx_per_byte / rx_per_byte:
        Energy per payload byte transmitted / received (µJ).
    tx_fixed / rx_fixed:
        Fixed per-message electronics cost (µJ).
    """

    tx_per_byte: float = 0.60
    rx_per_byte: float = 0.67
    tx_fixed: float = 50.0
    rx_fixed: float = 50.0

    def __post_init__(self) -> None:
        check_positive(self.tx_per_byte, "tx_per_byte", strict=False)
        check_positive(self.rx_per_byte, "rx_per_byte", strict=False)
        check_positive(self.tx_fixed, "tx_fixed", strict=False)
        check_positive(self.rx_fixed, "rx_fixed", strict=False)

    def tx_cost(self, size_bytes: int) -> float:
        """Energy to transmit a message of ``size_bytes`` (µJ)."""
        return self.tx_fixed + self.tx_per_byte * size_bytes

    def rx_cost(self, size_bytes: int) -> float:
        """Energy to receive a message of ``size_bytes`` (µJ)."""
        return self.rx_fixed + self.rx_per_byte * size_bytes

    def hop_cost(self, size_bytes: int) -> float:
        """Total energy one hop drains from the network (tx + rx)."""
        return self.tx_cost(size_bytes) + self.rx_cost(size_bytes)


@dataclass
class EnergyLedger:
    """Accumulated energy per node plus a network-wide total."""

    model: EnergyModel = field(default_factory=EnergyModel)
    per_node: dict = field(default_factory=dict)
    total: float = 0.0

    def charge_hop(self, sender: int, receiver: int, size_bytes: int) -> None:
        """Charge one hop: tx on ``sender``, rx on ``receiver``."""
        tx = self.model.tx_cost(size_bytes)
        rx = self.model.rx_cost(size_bytes)
        self.per_node[sender] = self.per_node.get(sender, 0.0) + tx
        self.per_node[receiver] = self.per_node.get(receiver, 0.0) + rx
        self.total += tx + rx

    def charge_bulk(self, senders, receivers, size_bytes: int) -> None:
        """Charge many equal-sized hops at once (scale harness).

        ``senders``/``receivers`` are parallel node-id arrays, one entry
        per frame. Per-node attribution collapses to one update per
        *distinct* node (``np.unique``), so the hot-spot statistics in
        :meth:`snapshot` stay exact while the cost is O(nodes), not
        O(frames).
        """
        import numpy as np

        senders = np.asarray(senders, dtype=np.int64)
        receivers = np.asarray(receivers, dtype=np.int64)
        if senders.shape != receivers.shape:
            raise ValueError("senders and receivers must align")
        if senders.size == 0:
            return
        tx = self.model.tx_cost(size_bytes)
        rx = self.model.rx_cost(size_bytes)
        for ids, cost in ((senders, tx), (receivers, rx)):
            unique, counts = np.unique(ids, return_counts=True)
            for node_id, count in zip(unique.tolist(), counts.tolist()):
                self.per_node[node_id] = (
                    self.per_node.get(node_id, 0.0) + cost * count
                )
        self.total += (tx + rx) * senders.size

    def node_energy(self, node_id: int) -> float:
        """Energy drained from ``node_id`` so far (µJ)."""
        return self.per_node.get(node_id, 0.0)

    def snapshot(self) -> dict:
        """Deterministic summary for reports: total plus spread statistics.

        The max/mean ratio is the MANET hot-spot signal — a battery dies
        first at the max-drain node, so dissemination strategies are
        judged on the spread, not just the total.
        """
        drains = list(self.per_node.values())
        mean = (sum(drains) / len(drains)) if drains else 0.0
        peak = max(drains) if drains else 0.0
        return {
            "total": self.total,
            "nodes_charged": len(drains),
            "mean_node": mean,
            "max_node": peak,
            "max_over_mean": (peak / mean) if mean > 0 else 0.0,
        }
