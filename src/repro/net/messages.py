"""Typed messages with realistic byte sizes.

Every message carries a byte size so the energy model and bandwidth
counters reflect what a MANET radio would actually move. Vector payloads
dominate: 8 bytes per float64 coordinate plus a fixed header.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

#: Fixed per-message header: ids, lengths, checksums (bytes).
HEADER_BYTES = 32
#: Bytes per vector coordinate (float64 on the wire).
BYTES_PER_COORD = 8
#: Bytes for scalar metadata fields (radius, count, …).
BYTES_PER_SCALAR = 8

_message_counter = itertools.count()


class MessageKind(enum.Enum):
    """What a message is for — drives per-operation accounting."""

    JOIN = "join"
    INSERT = "insert"
    REPLICATE = "replicate"
    PUBLISH_DELTA = "publish_delta"
    LOOKUP = "lookup"
    RANGE_QUERY = "range_query"
    RESPONSE = "response"
    RETRIEVE = "retrieve"
    DATA = "data"


@dataclass
class Message:
    """One network message.

    Attributes
    ----------
    kind:
        The :class:`MessageKind` category.
    source / destination:
        Node identifiers (overlay-level).
    size_bytes:
        Wire size; use :func:`vector_message_size` for key payloads.
    hops:
        Number of overlay hops traversed so far (updated per transmit).
    delivered:
        False when a fault injector severed the message end-to-end
        (loss, partition, crashed endpoint); always True on clean
        fabrics. Query-plane callers must check it and retry or degrade.
    msg_id:
        Process-unique id for tracing.
    trace_id / parent_op / hop_index:
        Causal-trace coordinates, stamped by the fabric when a
        :class:`repro.obs.flight.FlightRecorder` is active: the root
        operation this message descends from, the innermost operation
        that sent it, and its hop index within that operation. All
        ``None`` when flight recording is off (the default) or when the
        operation was sampled out.
    """

    kind: MessageKind
    source: int
    destination: int
    size_bytes: int
    hops: int = 0
    delivered: bool = True
    msg_id: int = field(default_factory=lambda: next(_message_counter))
    trace_id: int | None = None
    parent_op: int | None = None
    hop_index: int | None = None


def vector_message_size(
    dimensionality: int, *, scalars: int = 0, header: int = HEADER_BYTES
) -> int:
    """Wire size of a message carrying one vector plus ``scalars`` metadata."""
    if dimensionality < 0 or scalars < 0:
        raise ValueError("dimensionality and scalars must be >= 0")
    return header + dimensionality * BYTES_PER_COORD + scalars * BYTES_PER_SCALAR
