"""Hop, message, and byte counters — the quantities the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.messages import MessageKind
from repro.utils.stats import RunningStats


@dataclass
class OperationMetrics:
    """Counters for one operation category (insert, query, …)."""

    messages: int = 0
    hops: int = 0
    bytes: int = 0
    per_op_hops: RunningStats = field(default_factory=RunningStats)

    def record_transmit(self, size_bytes: int) -> None:
        """Record a single hop transmission."""
        self.messages += 1
        self.hops += 1
        self.bytes += size_bytes

    def finish_operation(self, hops: int) -> None:
        """Record a completed logical operation taking ``hops`` total hops."""
        self.per_op_hops.add(float(hops))


@dataclass
class NetworkMetrics:
    """Network-wide counters, split by message kind."""

    by_kind: dict[MessageKind, OperationMetrics] = field(default_factory=dict)

    def _bucket(self, kind: MessageKind) -> OperationMetrics:
        bucket = self.by_kind.get(kind)
        if bucket is None:
            bucket = OperationMetrics()
            self.by_kind[kind] = bucket
        return bucket

    def record_transmit(self, kind: MessageKind, size_bytes: int) -> None:
        """Record one hop of a message of the given kind."""
        self._bucket(kind).record_transmit(size_bytes)

    def finish_operation(self, kind: MessageKind, hops: int) -> None:
        """Record a completed logical operation of the given kind."""
        self._bucket(kind).finish_operation(hops)

    @property
    def total_messages(self) -> int:
        """All messages transmitted across kinds."""
        return sum(b.messages for b in self.by_kind.values())

    @property
    def total_hops(self) -> int:
        """All hops across kinds."""
        return sum(b.hops for b in self.by_kind.values())

    @property
    def total_bytes(self) -> int:
        """All bytes moved across kinds."""
        return sum(b.bytes for b in self.by_kind.values())

    def kind(self, kind: MessageKind) -> OperationMetrics:
        """Counters for ``kind`` (zeroed bucket when never used)."""
        return self._bucket(kind)

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict summary for reports.

        Keys are sorted by kind name so two runs' snapshots diff cleanly
        regardless of which message kinds happened to be seen first.
        """
        return {
            kind.value: {
                "messages": b.messages,
                "hops": b.hops,
                "bytes": b.bytes,
                "mean_hops_per_op": b.per_op_hops.mean,
                "ops": b.per_op_hops.count,
            }
            for kind, b in sorted(
                self.by_kind.items(), key=lambda kv: kv[0].value
            )
        }
