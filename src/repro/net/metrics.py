"""Hop, message, and byte counters — the quantities the paper's figures plot."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.messages import MessageKind
from repro.utils.stats import RunningStats


@dataclass
class OperationMetrics:
    """Counters for one operation category (insert, query, …).

    ``messages``/``hops``/``bytes`` count *primary* transmissions only —
    the per-kind totals the paper's Figure 8 benchmarks report. Traffic a
    fault injector adds on top goes into its own buckets: link-layer
    ``retransmits`` (with their bytes) and injected ``duplicates``, so
    lossy-fabric overhead never inflates the per-kind dissemination cost.
    """

    messages: int = 0
    hops: int = 0
    bytes: int = 0
    retransmits: int = 0
    retransmit_bytes: int = 0
    duplicates: int = 0
    per_op_hops: RunningStats = field(default_factory=RunningStats)

    def record_transmit(self, size_bytes: int) -> None:
        """Record a single hop transmission."""
        self.messages += 1
        self.hops += 1
        self.bytes += size_bytes

    def record_bulk(self, count: int, bytes_total: int) -> None:
        """Record ``count`` one-hop frames in one pass (scale harness)."""
        self.messages += count
        self.hops += count
        self.bytes += bytes_total

    def record_retransmits(self, count: int, size_bytes: int) -> None:
        """Record ``count`` link-layer retransmissions of one frame."""
        self.retransmits += count
        self.retransmit_bytes += count * size_bytes

    def record_duplicates(self, count: int) -> None:
        """Record ``count`` injector-duplicated deliveries."""
        self.duplicates += count

    def finish_operation(self, hops: int) -> None:
        """Record a completed logical operation taking ``hops`` total hops."""
        self.per_op_hops.add(float(hops))


@dataclass
class NetworkMetrics:
    """Network-wide counters, split by message kind."""

    by_kind: dict[MessageKind, OperationMetrics] = field(default_factory=dict)

    def _bucket(self, kind: MessageKind) -> OperationMetrics:
        bucket = self.by_kind.get(kind)
        if bucket is None:
            bucket = OperationMetrics()
            self.by_kind[kind] = bucket
        return bucket

    def record_transmit(self, kind: MessageKind, size_bytes: int) -> None:
        """Record one hop of a message of the given kind."""
        self._bucket(kind).record_transmit(size_bytes)

    def record_bulk_transmit(
        self, kind: MessageKind, count: int, bytes_total: int
    ) -> None:
        """Record ``count`` one-hop frames of ``kind`` in one pass.

        The bulk-construction fast path: totals land in exactly the same
        buckets per-frame :meth:`record_transmit` calls would fill, with
        O(1) Python work instead of O(frames).
        """
        self._bucket(kind).record_bulk(count, bytes_total)

    def record_retransmits(
        self, kind: MessageKind, count: int, size_bytes: int
    ) -> None:
        """Record fault-injected link retransmissions (separate bucket)."""
        self._bucket(kind).record_retransmits(count, size_bytes)

    def record_duplicates(self, kind: MessageKind, count: int) -> None:
        """Record fault-injected duplicate deliveries (separate bucket)."""
        self._bucket(kind).record_duplicates(count)

    def finish_operation(self, kind: MessageKind, hops: int) -> None:
        """Record a completed logical operation of the given kind."""
        self._bucket(kind).finish_operation(hops)

    @property
    def total_messages(self) -> int:
        """All messages transmitted across kinds."""
        return sum(b.messages for b in self.by_kind.values())

    @property
    def total_hops(self) -> int:
        """All hops across kinds."""
        return sum(b.hops for b in self.by_kind.values())

    @property
    def total_bytes(self) -> int:
        """All bytes moved across kinds."""
        return sum(b.bytes for b in self.by_kind.values())

    @property
    def total_retransmits(self) -> int:
        """All fault-injected link retransmissions across kinds."""
        return sum(b.retransmits for b in self.by_kind.values())

    @property
    def total_duplicates(self) -> int:
        """All fault-injected duplicate deliveries across kinds."""
        return sum(b.duplicates for b in self.by_kind.values())

    def kind(self, kind: MessageKind) -> OperationMetrics:
        """Counters for ``kind`` (zeroed bucket when never used)."""
        return self._bucket(kind)

    def snapshot(self) -> dict[str, dict]:
        """Plain-dict summary for reports.

        Keys are sorted by kind name so two runs' snapshots diff cleanly
        regardless of which message kinds happened to be seen first. The
        fault-overhead buckets (``retransmits``/``retransmit_bytes``/
        ``duplicates``) appear only when nonzero, so clean-fabric
        snapshots stay byte-identical to the pre-fault code.
        """
        out: dict[str, dict] = {}
        for kind, b in sorted(
            self.by_kind.items(), key=lambda kv: kv[0].value
        ):
            row = {
                "messages": b.messages,
                "hops": b.hops,
                "bytes": b.bytes,
                "mean_hops_per_op": b.per_op_hops.mean,
                "ops": b.per_op_hops.count,
            }
            if b.retransmits:
                row["retransmits"] = b.retransmits
                row["retransmit_bytes"] = b.retransmit_bytes
            if b.duplicates:
                row["duplicates"] = b.duplicates
            out[kind.value] = row
        return out
