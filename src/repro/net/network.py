"""The network fabric: transmission accounting and scheduled delivery.

Overlays send every overlay-hop through :meth:`Network.transmit`, which
charges the energy ledger, updates metrics, and (optionally) schedules the
delivery callback on the event queue. Synchronous accounting plus an
event-driven delivery mode covers both fast benchmarking and the paper's
"parallel behaviour" simulation.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ValidationError
from repro.faults import state as faults_state
from repro.faults.injector import FaultInjector
from repro.net.energy import EnergyLedger, EnergyModel
from repro.net.events import Scheduler
from repro.net.messages import Message, MessageKind
from repro.net.metrics import NetworkMetrics
from repro.net.node import SimNode
from repro.obs import flight as obs_flight
from repro.obs import trace as obs_trace
from repro.obs.loadmap import LoadLedger


class Network:
    """A simulated MANET fabric connecting overlay nodes.

    Parameters
    ----------
    energy_model:
        Radio cost model; defaults to the Bluetooth-class constants.
    hop_latency:
        Virtual seconds one overlay hop takes (used in scheduled mode).
    fault_plan:
        Optional :class:`repro.faults.plan.FaultPlan`; when given (or
        when a plan is ambient via :func:`repro.faults.plan_scope`), a
        fresh :class:`repro.faults.injector.FaultInjector` is installed
        and every :meth:`transmit` passes through it.
    """

    def __init__(
        self,
        *,
        energy_model: EnergyModel | None = None,
        hop_latency: float = 0.01,
        fault_plan=None,
        scheduler=None,
    ):
        if hop_latency < 0:
            raise ValidationError(f"hop_latency must be >= 0, got {hop_latency}")
        #: The fabric clock. An execution engine may inject its own
        #: scheduler (``repro.engine``); the default is the serial one,
        #: byte-identical to the pre-engine behaviour.
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.energy = EnergyLedger(model=energy_model or EnergyModel())
        self.metrics = NetworkMetrics()
        self.load = LoadLedger()
        self.hop_latency = hop_latency
        self._nodes: dict[int, SimNode] = {}
        self.faults = None
        plan = fault_plan if fault_plan is not None else faults_state.active_plan()
        if plan is not None:
            self.install_faults(plan)

    def install_faults(self, plan_or_injector):
        """Install a fault injector (from a plan or prebuilt); returns it.

        Passing ``None`` uninstalls fault injection, restoring the clean
        fabric behaviour.
        """
        if plan_or_injector is None:
            self.faults = None
            return None
        if isinstance(plan_or_injector, FaultInjector):
            self.faults = plan_or_injector
        else:
            self.faults = FaultInjector(plan_or_injector)
        return self.faults

    # -- membership ---------------------------------------------------------

    def register(self, node: SimNode) -> None:
        """Attach ``node`` to the fabric."""
        if node.node_id in self._nodes:
            raise ValidationError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> SimNode:
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ValidationError(f"unknown node id {node_id}") from None

    @property
    def node_ids(self) -> list[int]:
        """Identifiers of all registered nodes."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- transmission -------------------------------------------------------

    def transmit(
        self,
        source: int,
        destination: int,
        kind: MessageKind,
        size_bytes: int,
        *,
        deliver: Callable[[Message], None] | None = None,
    ) -> Message:
        """Send one overlay hop from ``source`` to ``destination``.

        Charges energy and metrics immediately. When ``deliver`` is given,
        the callback is scheduled ``hop_latency`` in the virtual future
        (event-driven mode); otherwise accounting-only (synchronous mode).

        When a fault injector is installed every message passes through
        it: query-plane messages may come back ``delivered=False`` (the
        caller retries or degrades — see :mod:`repro.faults`), overlay
        traffic is charged for link-layer retransmissions under loss, and
        delivery callbacks pick up jitter/duplication. Without an
        injector this path is exactly the clean-fabric code.
        """
        if source not in self._nodes:
            raise ValidationError(f"unknown source node {source}")
        if destination not in self._nodes:
            raise ValidationError(f"unknown destination node {destination}")
        if size_bytes < 0:
            raise ValidationError(f"size_bytes must be >= 0, got {size_bytes}")
        message = Message(
            kind=kind, source=source, destination=destination,
            size_bytes=size_bytes, hops=1,
        )
        retransmits = 0
        extra_delay = 0.0
        copies = 1
        if self.faults is not None:
            verdict = self.faults.on_transmit(
                kind, source, destination, self.scheduler.now
            )
            message.delivered = verdict.delivered
            retransmits = verdict.retransmits
            extra_delay = verdict.extra_delay
            copies = verdict.copies
        duplicates = max(0, copies - 1)
        # Per-kind totals count the primary frame only (Figure 8's cost);
        # fault-induced link retransmits go in their own bucket. The radio
        # still pays for every physical frame, so energy charges all of
        # them — exactly the pre-split total.
        for __ in range(1 + retransmits):
            self.energy.charge_hop(source, destination, size_bytes)
        self.metrics.record_transmit(kind, size_bytes)
        if retransmits:
            self.metrics.record_retransmits(kind, retransmits, size_bytes)
        if duplicates:
            self.metrics.record_duplicates(kind, duplicates)
        self.load.charge(
            source, destination, size_bytes,
            retransmits=retransmits, duplicates=duplicates,
            dropped=not message.delivered,
        )
        recorder = obs_trace.state.recorder
        if recorder.enabled:
            counts = {"messages": 1, "hops": 1, "bytes": size_bytes}
            if retransmits:
                counts["retransmits"] = retransmits
                counts["bytes"] += size_bytes * retransmits
            recorder.add(**counts)
        flight = obs_flight.state.recorder
        if flight.enabled:
            stamp = flight.record(
                kind.value, source, destination, size_bytes,
                status="sent" if message.delivered else "dropped",
                copies=duplicates, retransmits=retransmits,
                t=self.scheduler.now,
            )
            if stamp is not None:
                message.trace_id, message.parent_op, message.hop_index = stamp
        if deliver is not None and message.delivered:
            for __ in range(copies):
                self.scheduler.schedule_after(
                    self.hop_latency + extra_delay, lambda: deliver(message)
                )
        return message

    def transmit_bulk(
        self, kind: MessageKind, senders, receivers, size_bytes: int
    ) -> int:
        """Account many equal-sized one-hop frames in one batched pass.

        The scale-harness companion to :meth:`transmit`: metrics, energy,
        and per-node load all receive exactly the totals the equivalent
        per-frame ``transmit`` loop would have produced, at O(distinct
        nodes) Python cost. Restricted to the clean fabric — bulk
        construction models an orchestrated bootstrap, which the fault
        injector (per-message verdicts) cannot meaningfully perturb — and
        to accounting-only mode (no delivery callbacks). Returns the
        number of frames charged.
        """
        if self.faults is not None and not self.faults.passthrough:
            raise ValidationError(
                "bulk transmission is clean-fabric only; use transmit() "
                "under an active fault plan"
            )
        if size_bytes < 0:
            raise ValidationError(f"size_bytes must be >= 0, got {size_bytes}")
        n_frames = len(senders)
        if len(receivers) != n_frames:
            raise ValidationError("senders and receivers must align")
        if n_frames == 0:
            return 0
        self.energy.charge_bulk(senders, receivers, size_bytes)
        self.metrics.record_bulk_transmit(
            kind, n_frames, size_bytes * n_frames
        )
        self.load.charge_bulk(senders, receivers, size_bytes)
        recorder = obs_trace.state.recorder
        if recorder.enabled:
            recorder.add(
                messages=n_frames, hops=n_frames,
                bytes=size_bytes * n_frames,
            )
        return n_frames

    def finish_operation(self, kind: MessageKind, hops: int) -> None:
        """Record a completed logical operation (e.g. one full insertion)."""
        self.metrics.finish_operation(kind, hops)

    def snapshot(self) -> dict:
        """Deterministic fabric-health summary (metrics, energy, events).

        The ``faults`` section appears only when an injector is
        installed, so clean-fabric snapshots stay byte-identical to the
        pre-fault code.
        """
        snapshot = {
            "metrics": self.metrics.snapshot(),
            "energy": self.energy.snapshot(),
            "events_processed": self.scheduler.events_processed,
            "nodes": len(self._nodes),
        }
        if self.faults is not None:
            snapshot["faults"] = self.faults.snapshot()
        return snapshot
