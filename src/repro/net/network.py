"""The network fabric: transmission accounting and scheduled delivery.

Overlays send every overlay-hop through :meth:`Network.transmit`, which
charges the energy ledger, updates metrics, and (optionally) schedules the
delivery callback on the event queue. Synchronous accounting plus an
event-driven delivery mode covers both fast benchmarking and the paper's
"parallel behaviour" simulation.
"""

from __future__ import annotations

from typing import Callable

from repro.exceptions import ValidationError
from repro.net.energy import EnergyLedger, EnergyModel
from repro.net.events import Scheduler
from repro.net.messages import Message, MessageKind
from repro.net.metrics import NetworkMetrics
from repro.net.node import SimNode
from repro.obs import trace as obs_trace


class Network:
    """A simulated MANET fabric connecting overlay nodes.

    Parameters
    ----------
    energy_model:
        Radio cost model; defaults to the Bluetooth-class constants.
    hop_latency:
        Virtual seconds one overlay hop takes (used in scheduled mode).
    """

    def __init__(
        self,
        *,
        energy_model: EnergyModel | None = None,
        hop_latency: float = 0.01,
    ):
        if hop_latency < 0:
            raise ValidationError(f"hop_latency must be >= 0, got {hop_latency}")
        self.scheduler = Scheduler()
        self.energy = EnergyLedger(model=energy_model or EnergyModel())
        self.metrics = NetworkMetrics()
        self.hop_latency = hop_latency
        self._nodes: dict[int, SimNode] = {}

    # -- membership ---------------------------------------------------------

    def register(self, node: SimNode) -> None:
        """Attach ``node`` to the fabric."""
        if node.node_id in self._nodes:
            raise ValidationError(f"node id {node.node_id} already registered")
        self._nodes[node.node_id] = node

    def node(self, node_id: int) -> SimNode:
        """Look up a registered node."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ValidationError(f"unknown node id {node_id}") from None

    @property
    def node_ids(self) -> list[int]:
        """Identifiers of all registered nodes."""
        return list(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    # -- transmission -------------------------------------------------------

    def transmit(
        self,
        source: int,
        destination: int,
        kind: MessageKind,
        size_bytes: int,
        *,
        deliver: Callable[[Message], None] | None = None,
    ) -> Message:
        """Send one overlay hop from ``source`` to ``destination``.

        Charges energy and metrics immediately. When ``deliver`` is given,
        the callback is scheduled ``hop_latency`` in the virtual future
        (event-driven mode); otherwise accounting-only (synchronous mode).
        """
        if source not in self._nodes:
            raise ValidationError(f"unknown source node {source}")
        if destination not in self._nodes:
            raise ValidationError(f"unknown destination node {destination}")
        if size_bytes < 0:
            raise ValidationError(f"size_bytes must be >= 0, got {size_bytes}")
        message = Message(
            kind=kind, source=source, destination=destination,
            size_bytes=size_bytes, hops=1,
        )
        self.energy.charge_hop(source, destination, size_bytes)
        self.metrics.record_transmit(kind, size_bytes)
        recorder = obs_trace.state.recorder
        if recorder.enabled:
            recorder.add(messages=1, hops=1, bytes=size_bytes)
        if deliver is not None:
            self.scheduler.schedule_after(
                self.hop_latency, lambda: deliver(message)
            )
        return message

    def finish_operation(self, kind: MessageKind, hops: int) -> None:
        """Record a completed logical operation (e.g. one full insertion)."""
        self.metrics.finish_operation(kind, hops)

    def snapshot(self) -> dict:
        """Deterministic fabric-health summary (metrics, energy, events)."""
        return {
            "metrics": self.metrics.snapshot(),
            "energy": self.energy.snapshot(),
            "events_processed": self.scheduler.events_processed,
            "nodes": len(self._nodes),
        }
