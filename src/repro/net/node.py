"""Base class for simulated nodes."""

from __future__ import annotations

from repro.net.messages import Message


class SimNode:
    """A node attached to a :class:`repro.net.network.Network`.

    Subclasses override :meth:`handle_message` to react to deliveries when
    running in scheduled (event-driven) mode. Overlay implementations that
    route synchronously may never need it.
    """

    def __init__(self, node_id: int):
        self.node_id = node_id

    def handle_message(self, message: Message) -> None:  # pragma: no cover
        """React to a delivered message. Default: ignore."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(id={self.node_id})"
