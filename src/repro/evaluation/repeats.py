"""Multi-seed repetition: mean ± std for any experiment runner.

The per-figure benchmarks run at fixed seeds for reproducibility; this
module answers "is that shape a seed artefact?" by repeating a runner
across seeds and aggregating each extracted metric.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class RepeatedMetric:
    """A metric aggregated over seeds."""

    key: str
    mean: float
    std: float
    n: int
    values: tuple

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n else 0.0

    def formatted(self, precision: int = 3) -> str:
        """``mean ± std`` rendering."""
        return f"{self.mean:.{precision}f} ± {self.std:.{precision}f}"


def repeat_experiment(
    runner,
    *,
    seeds,
    extract,
    **kwargs,
) -> dict[str, RepeatedMetric]:
    """Run ``runner(rng=seed, **kwargs)`` per seed and aggregate metrics.

    Parameters
    ----------
    runner:
        Any experiment function taking an ``rng`` keyword (all the
        ``run_fig*`` runners qualify).
    seeds:
        Iterable of seeds; at least two for a meaningful std.
    extract:
        Callable mapping one runner result to ``{metric_key: float}``.
        Keys must be identical across seeds.
    kwargs:
        Passed through to the runner on every repetition.

    Returns
    -------
    dict mapping each metric key to its :class:`RepeatedMetric`.
    """
    seeds = list(seeds)
    if len(seeds) < 2:
        raise ValidationError("repeat_experiment needs at least two seeds")
    collected: dict[str, list[float]] = {}
    expected_keys: set[str] | None = None
    for seed in seeds:
        metrics = extract(runner(rng=seed, **kwargs))
        keys = set(metrics)
        if expected_keys is None:
            expected_keys = keys
        elif keys != expected_keys:
            raise ValidationError(
                "extract returned inconsistent metric keys across seeds: "
                f"{sorted(keys ^ expected_keys)}"
            )
        for key, value in metrics.items():
            collected.setdefault(key, []).append(float(value))
    out: dict[str, RepeatedMetric] = {}
    for key, values in collected.items():
        n = len(values)
        mean = sum(values) / n
        variance = sum((v - mean) ** 2 for v in values) / (n - 1)
        out[key] = RepeatedMetric(
            key=key,
            mean=mean,
            std=math.sqrt(variance),
            n=n,
            values=tuple(values),
        )
    return out
