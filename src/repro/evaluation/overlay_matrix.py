"""Head-to-head dissemination matrix across every registered overlay.

The paper's first contribution is that Hyper-M "works independently of
the underlying overlay structure". The contract suite pins that claim
functionally; this experiment quantifies it. Every backend in
:data:`repro.overlay.registry.OVERLAYS` receives the *same* Markov
workload (same data, same partition, same seeds) and runs the same
three phases:

* **publish** — full publication of every peer's summaries;
* **delta repair** — every peer gains jittered views of a few new
  objects (the paper's ALOI arrival pattern) and repairs its summaries
  through the epoch-delta pipeline, raced against a twin network that
  withdraws and republishes from scratch;
* **query** — unbudgeted range queries, recall-checked against a
  centralized ground truth (Theorem 4.1: anything below 1.0 is a bug,
  and the matrix refuses to report speed for a broken backend).

Each phase reports overlay hops, bytes on the radio, and an estimated
wall-clock latency under the shared-channel radio model of
:class:`repro.evaluation.construction.RadioModel` (every hop pays the
per-hop forwarding latency plus its payload's airtime).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.evaluation.construction import RadioModel
from repro.evaluation.workloads import build_markov_network
from repro.overlay.registry import OVERLAYS, resolve_overlay
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class OverlayMatrixRow:
    """One backend's cost profile on the shared workload."""

    overlay: str
    publish_hops: int
    publish_bytes: int
    publish_latency_s: float
    delta_hops: int
    delta_bytes: int
    full_hops: int
    full_bytes: int
    hops_speedup: float
    bytes_speedup: float
    query_hops: float
    query_bytes: float
    query_latency_s: float
    recall: float


def _resolve_seed(rng) -> int:
    """One integer seed shared by every backend (identical workloads)."""
    if rng is None:
        return 0
    if isinstance(rng, (int, np.integer)):
        return int(rng)
    return int(ensure_rng(rng).integers(2**31))


def _latency(radio: RadioModel, hops: int, total_bytes: int) -> float:
    """Shared-channel airtime: every hop serializes on one radio."""
    return hops * radio.per_hop_latency + total_bytes / radio.bandwidth


def _mutation_plan(
    net: HyperMNetwork,
    *,
    mutation_fraction: float,
    objects_per_peer: int,
    view_jitter: float,
    seed: int,
) -> list[tuple]:
    """Per-peer ``(peer_id, new_rows, new_ids)`` — bursts of new views."""
    rng = np.random.default_rng(seed)
    next_id = 1_000_000
    plan = []
    for peer_id in sorted(net.peers):
        base = net.peers[peer_id].data
        per_peer = max(1, int(round(mutation_fraction * base.shape[0])))
        objects = base[rng.integers(0, base.shape[0], size=objects_per_peer)]
        views = np.repeat(
            objects, -(-per_peer // objects_per_peer), axis=0
        )[:per_peer]
        rows = np.clip(
            views + rng.normal(0.0, view_jitter, views.shape), 0.0, 1.0
        )
        plan.append((peer_id, rows, np.arange(next_id, next_id + per_peer)))
        next_id += per_peer
    return plan


def _costs(net: HyperMNetwork) -> tuple[int, int]:
    metrics = net.fabric.metrics
    return metrics.total_hops, metrics.total_bytes


def _repair_all(net: HyperMNetwork, *, full: bool) -> tuple[int, int]:
    """Repair every peer's summaries; return the (hops, bytes) delta."""
    hops_before, bytes_before = _costs(net)
    for peer_id in sorted(net.peers):
        net.republish_peer(peer_id, full=full)
    hops_after, bytes_after = _costs(net)
    return hops_after - hops_before, bytes_after - bytes_before


def _query_phase(
    net: HyperMNetwork, *, n_queries: int, seed: int
) -> tuple[float, float, float]:
    """Run recall-checked range queries; per-query (hops, bytes, recall)."""
    truth_index = CentralizedIndex.from_network(net)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, truth_index.data.shape[0], size=n_queries)
    hops_before, bytes_before = _costs(net)
    recalls = []
    for query in truth_index.data[idx]:
        distances = np.linalg.norm(truth_index.data - query, axis=1)
        radius = float(np.quantile(distances, 0.05))
        truth = set(truth_index.range_search(query, radius))
        result = net.range_query(query, radius, max_peers=None)
        hit = len(set(result.item_ids) & truth)
        recalls.append(hit / len(truth) if truth else 1.0)
    hops_after, bytes_after = _costs(net)
    return (
        (hops_after - hops_before) / max(n_queries, 1),
        (bytes_after - bytes_before) / max(n_queries, 1),
        float(np.mean(recalls)) if recalls else 1.0,
    )


def run_overlay_matrix(
    *,
    overlays: tuple[str, ...] | None = None,
    n_peers: int = 8,
    items_per_peer: int = 60,
    dimensionality: int = 32,
    n_clusters: int = 6,
    levels_used: int = 3,
    mutation_fraction: float = 0.10,
    objects_per_peer: int = 2,
    view_jitter: float = 0.02,
    n_queries: int = 6,
    radio: RadioModel | None = None,
    rng=None,
) -> list[OverlayMatrixRow]:
    """Run the dissemination matrix; one row per overlay backend.

    ``overlays`` restricts the sweep to the named backends (default:
    every registered backend, in canonical order). Each backend sees an
    identical workload, so rows are directly comparable; a recall below
    1.0 on any backend raises rather than reporting a misleading row.
    """
    names = list(overlays) if overlays else list(OVERLAYS)
    radio = radio or RadioModel()
    seed = _resolve_seed(rng)
    config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)

    rows = []
    for name in names:
        factory = resolve_overlay(name)

        def build() -> HyperMNetwork:
            workload, __ = build_markov_network(
                n_peers=n_peers,
                items_per_peer=items_per_peer,
                dimensionality=dimensionality,
                config=config,
                rng=seed,
                overlay_factory=factory,
            )
            return workload.network

        net_delta = build()
        publish_hops, publish_bytes = _costs(net_delta)
        net_full = build()

        plan = _mutation_plan(
            net_delta,
            mutation_fraction=mutation_fraction,
            objects_per_peer=objects_per_peer,
            view_jitter=view_jitter,
            seed=seed + 99,
        )
        for net in (net_delta, net_full):
            for peer_id, new_rows, new_ids in plan:
                net.peers[peer_id].add_items(new_rows.copy(), new_ids)

        delta_hops, delta_bytes = _repair_all(net_delta, full=False)
        full_hops, full_bytes = _repair_all(net_full, full=True)

        query_hops, query_bytes, recall = _query_phase(
            net_delta, n_queries=n_queries, seed=seed + 1
        )
        if recall < 1.0:
            raise AssertionError(
                f"overlay {name!r} returned recall {recall:.3f} < 1.0 — "
                "no-false-dismissal broken, matrix row suppressed"
            )

        rows.append(OverlayMatrixRow(
            overlay=name,
            publish_hops=publish_hops,
            publish_bytes=publish_bytes,
            publish_latency_s=_latency(radio, publish_hops, publish_bytes),
            delta_hops=delta_hops,
            delta_bytes=delta_bytes,
            full_hops=full_hops,
            full_bytes=full_bytes,
            hops_speedup=full_hops / max(delta_hops, 1),
            bytes_speedup=full_bytes / max(delta_bytes, 1),
            query_hops=query_hops,
            query_bytes=query_bytes,
            query_latency_s=_latency(
                radio, int(round(query_hops)), int(round(query_bytes))
            ),
            recall=recall,
        ))
    return rows
