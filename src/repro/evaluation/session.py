"""End-to-end MANET session simulation on the event queue.

The paper's scenario is a *session*: people come together for one to a few
hours, devices join, publish, query, and leave. The per-figure experiments
measure each mechanism in isolation; this module simulates the whole
lifetime on the discrete-event scheduler — Poisson query traffic, random
departures and (re)arrivals — and records how retrieval quality and
traffic evolve over virtual time.

The simulator drives the same :class:`~repro.core.network.HyperMNetwork`
the experiments use; events only decide *when* things happen.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.datasets.histograms import generate_histograms
from repro.datasets.partition import partition_among_peers
from repro.evaluation.metrics import precision_recall
from repro.exceptions import ValidationError
from repro.net.events import Scheduler
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class SessionConfig:
    """Parameters of one simulated session.

    Attributes
    ----------
    duration:
        Virtual session length (seconds).
    n_peers:
        Devices present at session start.
    query_rate:
        Network-wide queries per virtual second (Poisson).
    departure_rate / arrival_rate:
        Peer departures and (re)arrivals per virtual second (Poisson).
        Departed peers may return later with their items and republish.
    query_radius:
        Range-query radius used by the synthetic query traffic.
    max_peers_contacted:
        Contact budget per query.
    sample_every:
        Interval between recall/traffic timeline samples.
    """

    duration: float = 600.0
    n_peers: int = 16
    query_rate: float = 0.2
    departure_rate: float = 0.01
    arrival_rate: float = 0.01
    query_radius: float = 0.12
    max_peers_contacted: int = 6
    sample_every: float = 60.0

    def __post_init__(self) -> None:
        if self.duration <= 0 or self.n_peers < 2:
            raise ValidationError(
                "duration must be > 0 and n_peers >= 2"
            )
        for name in ("query_rate", "departure_rate", "arrival_rate"):
            if getattr(self, name) < 0:
                raise ValidationError(f"{name} must be >= 0")


@dataclass
class SessionSample:
    """One timeline sample."""

    time: float
    online_peers: int
    queries_so_far: int
    mean_recall: float
    total_hops: int
    total_energy: float


@dataclass
class SessionOutcome:
    """Everything a simulated session produced."""

    samples: list = field(default_factory=list)
    queries_run: int = 0
    recalls: list = field(default_factory=list)
    departures: int = 0
    arrivals: int = 0

    @property
    def mean_recall(self) -> float:
        """Recall averaged over every query in the session."""
        return float(np.mean(self.recalls)) if self.recalls else 0.0


class SessionSimulator:
    """Drives a Hyper-M network through a whole session lifetime."""

    def __init__(
        self,
        config: SessionConfig | None = None,
        *,
        hyperm: HyperMConfig | None = None,
        rng=None,
    ):
        self.config = config or SessionConfig()
        self._hyperm_config = hyperm or HyperMConfig(
            levels_used=4, n_clusters=6
        )
        root = ensure_rng(rng)
        (self._data_rng, self._part_rng, self._net_rng,
         self._event_rng) = spawn_rngs(root, 4)
        self.scheduler = Scheduler()
        self.outcome = SessionOutcome()
        self.network: HyperMNetwork | None = None
        self._offline: list[int] = []

    # -- setup -----------------------------------------------------------------

    def _build_network(self) -> None:
        count = self.config.n_peers
        dataset = generate_histograms(
            max(20, 4 * count), 10, 32, rng=self._data_rng
        )
        parts = partition_among_peers(
            dataset.data,
            count,
            clusters_per_peer=self._hyperm_config.n_clusters,
            item_ids=np.arange(dataset.n_items),
            rng=self._part_rng,
        )
        self.network = HyperMNetwork(
            32, self._hyperm_config, rng=self._net_rng
        )
        for data, ids in parts:
            self.network.add_peer(data, ids)
        self.network.publish_all()

    # -- event actions ------------------------------------------------------------

    def _exponential(self, rate: float) -> float:
        if rate <= 0:
            return float("inf")
        return float(self._event_rng.exponential(1.0 / rate))

    def _schedule(self, delay: float, action) -> None:
        if (
            delay != float("inf")
            and self.scheduler.now + delay <= self.config.duration
        ):
            self.scheduler.schedule_after(delay, action)

    def _online_peers(self) -> list[int]:
        return [
            pid for pid, peer in self.network.peers.items() if peer.online
        ]

    def _run_query(self) -> None:
        online = self._online_peers()
        if len(online) >= 2:
            origin = int(self._event_rng.choice(online))
            holder = self.network.peers[
                int(self._event_rng.choice(online))
            ]
            query = holder.data[
                int(self._event_rng.integers(holder.n_items))
            ]
            truth = CentralizedIndex.from_network_online_only(
                self.network
            ).range_search(query, self.config.query_radius)
            result = self.network.range_query(
                query,
                self.config.query_radius,
                origin_peer=origin,
                max_peers=self.config.max_peers_contacted,
            )
            if truth:
                recall = precision_recall(result.item_ids, truth).recall
                self.outcome.recalls.append(recall)
            self.outcome.queries_run += 1
        self._schedule(
            self._exponential(self.config.query_rate), self._run_query
        )

    def _run_departure(self) -> None:
        online = self._online_peers()
        if len(online) > 2:
            victim = int(self._event_rng.choice(online))
            self.network.remove_peer(victim)
            self._offline.append(victim)
            self.outcome.departures += 1
        self._schedule(
            self._exponential(self.config.departure_rate),
            self._run_departure,
        )

    def _run_arrival(self) -> None:
        if self._offline:
            peer_id = self._offline.pop(0)
            peer = self.network.peers[peer_id]
            peer.online = True
            for level in self.network.levels:
                overlay = self.network.overlays[level]
                node_id = self.network.overlay_node(level, peer_id)
                if node_id not in overlay.node_ids:
                    # Rejoin costs a fresh overlay position; remap it.
                    new_node = overlay.join()
                    self.network._overlay_node[(level, peer_id)] = new_node
            self.network.republish_peer(peer_id)
            self.outcome.arrivals += 1
        self._schedule(
            self._exponential(self.config.arrival_rate), self._run_arrival
        )

    def _take_sample(self) -> None:
        fabric = self.network.fabric
        self.outcome.samples.append(
            SessionSample(
                time=self.scheduler.now,
                online_peers=len(self._online_peers()),
                queries_so_far=self.outcome.queries_run,
                mean_recall=self.outcome.mean_recall,
                total_hops=fabric.metrics.total_hops,
                total_energy=fabric.energy.total,
            )
        )
        self._schedule(self.config.sample_every, self._take_sample)

    # -- entry point -----------------------------------------------------------

    def run(self) -> SessionOutcome:
        """Simulate the whole session; returns its outcome."""
        self._build_network()
        self._schedule(
            self._exponential(self.config.query_rate), self._run_query
        )
        self._schedule(
            self._exponential(self.config.departure_rate),
            self._run_departure,
        )
        self._schedule(
            self._exponential(self.config.arrival_rate), self._run_arrival
        )
        self._schedule(self.config.sample_every, self._take_sample)
        self.scheduler.run()
        self._take_sample_final()
        return self.outcome

    def _take_sample_final(self) -> None:
        if (
            not self.outcome.samples
            or self.outcome.samples[-1].time < self.scheduler.now
        ):
            self._take_sample()
