"""§5 dissemination-speed experiments (Figures 8a, 8b, 8c) and Figure 9.

Each runner returns plain row dataclasses; the benchmark targets render
them with :func:`repro.utils.tables.format_table` so the output mirrors
the series the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baselines import NaiveCANPublisher, TwoDimCANPublisher
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.datasets.markov import generate_markov_vectors
from repro.datasets.partition import partition_among_peers
from repro.datasets.skewed import generate_skewed_dataset
from repro.evaluation.metrics import gini_coefficient, participation_fraction
from repro.evaluation.workloads import build_markov_network
from repro.utils.rng import ensure_rng, spawn_rngs


# --------------------------------------------------------------------------
# Figure 8a — cluster replication overhead
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8aRow:
    """Hops per inserted cluster sphere at one clustering granularity."""

    clusters_per_peer: int
    hops_per_sphere: float
    routing_hops_per_sphere: float
    replica_hops_per_sphere: float
    mean_sphere_radius: float


def run_fig8a(
    *,
    n_peers: int = 20,
    items_per_peer: int = 100,
    dimensionality: int = 64,
    cluster_counts: tuple[int, ...] = (2, 5, 10, 20, 40),
    levels_used: int = 4,
    rng=None,
) -> list[Fig8aRow]:
    """Replication overhead vs clustering granularity.

    Expected shape (paper): finer clustering (more clusters per peer)
    shrinks sphere radii, so replication overhead falls towards the
    no-replication routing cost.
    """
    generator = ensure_rng(rng)
    rows = []
    for count, child in zip(
        cluster_counts, spawn_rngs(generator, len(cluster_counts))
    ):
        config = HyperMConfig(levels_used=levels_used, n_clusters=count)
        workload, report = build_markov_network(
            n_peers=n_peers,
            items_per_peer=items_per_peer,
            dimensionality=dimensionality,
            config=config,
            rng=child,
        )
        radii = [
            sphere.radius
            for peer in workload.network.peers.values()
            for level in peer.summary.levels
            for sphere in peer.summary.spheres[level]
        ]
        rows.append(
            Fig8aRow(
                clusters_per_peer=count,
                hops_per_sphere=report.hops_per_sphere,
                routing_hops_per_sphere=report.routing_hops
                / max(report.spheres_inserted, 1),
                replica_hops_per_sphere=report.replica_hops
                / max(report.spheres_inserted, 1),
                mean_sphere_radius=float(np.mean(radii)) if radii else 0.0,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 8b — hops per item vs amount of data
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8bRow:
    """Hops per item for each method at one data volume."""

    total_items: int
    hyperm_hops_per_item: float
    can_hops_per_item: float
    can2d_hops_per_item: float


def _publish_baseline(
    publisher_cls, parts, dimensionality, rng, *, sample_per_peer: int | None = None
) -> float:
    """Publish a partitioned dataset through a baseline; hops per item.

    Per-item CAN insertion cost does not depend on the number of items
    (only on the overlay size), so ``sample_per_peer`` caps how many items
    each peer actually inserts when estimating the average — the benchmark
    harness uses this to keep baseline sweeps fast without changing the
    measured statistic.
    """
    publisher = publisher_cls(dimensionality, rng=rng)
    for peer_id in range(len(parts)):
        publisher.add_peer(peer_id)
    items = 0
    hops = 0
    for peer_id, (data, ids) in enumerate(parts):
        if sample_per_peer is not None and data.shape[0] > sample_per_peer:
            data = data[:sample_per_peer]
            ids = ids[:sample_per_peer]
        n, h = publisher.publish_items(peer_id, data, ids)
        items += n
        hops += h
    return hops / max(items, 1)


def run_fig8b(
    *,
    n_peers: int = 20,
    items_per_peer_sweep: tuple[int, ...] = (25, 50, 100, 200),
    dimensionality: int = 64,
    n_clusters: int = 10,
    levels_used: int = 4,
    baseline_sample: int | None = 100,
    rng=None,
) -> list[Fig8bRow]:
    """Hops per item as the published volume grows.

    Expected shape (paper Figure 8b): Hyper-M's per-item cost *falls* with
    volume (summaries amortise) while both CAN baselines stay flat — an
    order-of-magnitude gap at realistic volumes.
    """
    generator = ensure_rng(rng)
    rows = []
    for items_per_peer, child in zip(
        items_per_peer_sweep, spawn_rngs(generator, len(items_per_peer_sweep))
    ):
        hm_rng, can_rng, can2_rng = spawn_rngs(child, 3)
        config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)
        workload, report = build_markov_network(
            n_peers=n_peers,
            items_per_peer=items_per_peer,
            dimensionality=dimensionality,
            config=config,
            rng=hm_rng,
        )
        can = _publish_baseline(
            NaiveCANPublisher, workload.parts, dimensionality, can_rng,
            sample_per_peer=baseline_sample,
        )
        can2d = _publish_baseline(
            TwoDimCANPublisher, workload.parts, dimensionality, can2_rng,
            sample_per_peer=baseline_sample,
        )
        rows.append(
            Fig8bRow(
                total_items=report.items_published,
                hyperm_hops_per_item=report.hops_per_item,
                can_hops_per_item=can,
                can2d_hops_per_item=can2d,
            )
        )
    return rows


# --------------------------------------------------------------------------
# Figure 8c — hops per item vs number of overlay levels
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig8cRow:
    """Hops per item using ``levels_used`` overlays."""

    levels_used: int
    hyperm_hops_per_item: float


@dataclass(frozen=True)
class Fig8cBaselines:
    """Flat baseline lines accompanying the Figure 8c sweep."""

    can_hops_per_item: float
    can2d_hops_per_item: float


def run_fig8c(
    *,
    n_peers: int = 20,
    items_per_peer: int = 100,
    dimensionality: int = 64,
    n_clusters: int = 10,
    levels_sweep: tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    baseline_sample: int | None = 100,
    rng=None,
) -> tuple[list[Fig8cRow], Fig8cBaselines]:
    """Hops per item as overlays (wavelet levels) are added.

    Expected shape: cost grows roughly linearly with levels but stays far
    below per-item CAN insertion even at 4+ levels.
    """
    generator = ensure_rng(rng)
    children = spawn_rngs(generator, len(levels_sweep) + 1)
    rows = []
    parts = None
    for levels_used, child in zip(levels_sweep, children[:-1]):
        config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)
        workload, report = build_markov_network(
            n_peers=n_peers,
            items_per_peer=items_per_peer,
            dimensionality=dimensionality,
            config=config,
            rng=child,
        )
        parts = workload.parts
        rows.append(
            Fig8cRow(
                levels_used=levels_used,
                hyperm_hops_per_item=report.hops_per_item,
            )
        )
    can_rng, can2_rng = spawn_rngs(children[-1], 2)
    baselines = Fig8cBaselines(
        can_hops_per_item=_publish_baseline(
            NaiveCANPublisher, parts, dimensionality, can_rng,
            sample_per_peer=baseline_sample,
        ),
        can2d_hops_per_item=_publish_baseline(
            TwoDimCANPublisher, parts, dimensionality, can2_rng,
            sample_per_peer=baseline_sample,
        ),
    )
    return rows, baselines


# --------------------------------------------------------------------------
# Figure 9 — data distribution among nodes
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Fig9Row:
    """Load-distribution statistics for one overlay configuration."""

    configuration: str
    skew_clusters: int
    participation: float
    gini: float
    max_load_fraction: float


def _hyperm_weighted_loads(network: HyperMNetwork) -> list[float]:
    """Item-weighted load per peer, summed across the network's levels."""
    loads = {peer_id: 0.0 for peer_id in network.peers}
    node_to_peer = {
        node_id: peer_id
        for (level, peer_id), node_id in network._overlay_node.items()
    }
    for level, overlay in network.overlays.items():
        for node_id in overlay.node_ids:
            node = overlay.node(node_id)
            weight = sum(entry.value.items for entry in node.store)
            loads[node_to_peer[node_id]] += weight
    return list(loads.values())


def run_fig9(
    *,
    n_peers: int = 20,
    n_source_items: int = 2000,
    dimensionality: int = 64,
    n_clusters: int = 10,
    skew_clusters_sweep: tuple[int, ...] = (2, 3, 4, 5),
    levels_sweep: tuple[int, ...] = (1, 2, 3, 4),
    rng=None,
) -> list[Fig9Row]:
    """Distribution of (item-weighted) load under intentionally skewed data.

    Configurations compared, per skew setting:

    * ``original`` — per-item inserts into a CAN of the original
      dimensionality (the paper's worst case together with A-only);
    * ``L=1`` (approximation only) … ``L=4`` — Hyper-M with that many
      wavelet overlays.

    Expected shape: ``original`` and ``L=1`` concentrate load on few nodes
    (low participation, high Gini); adding detail levels spreads it out
    thanks to subspace orthogonality.
    """
    generator = ensure_rng(rng)
    rows = []
    for skew in skew_clusters_sweep:
        skew_rng, part_rng, can_rng, *level_rngs = spawn_rngs(
            generator, 3 + len(levels_sweep)
        )
        source = generate_markov_vectors(
            n_source_items, dimensionality, rng=skew_rng
        )
        skewed = generate_skewed_dataset(source, skew, rng=skew_rng)
        ids = np.arange(skewed.shape[0], dtype=np.int64)
        parts = partition_among_peers(
            skewed, n_peers, clusters_per_peer=n_clusters,
            item_ids=ids, rng=part_rng,
        )

        publisher = NaiveCANPublisher(dimensionality, rng=can_rng)
        for peer_id in range(n_peers):
            publisher.add_peer(peer_id)
        for peer_id, (data, item_ids) in enumerate(parts):
            publisher.publish_items(peer_id, data, item_ids)
        loads = list(publisher.overlay.loads().values())
        rows.append(_fig9_row("original", skew, loads))

        for levels_used, level_rng in zip(levels_sweep, level_rngs):
            config = HyperMConfig(
                levels_used=levels_used, n_clusters=n_clusters
            )
            network = HyperMNetwork(dimensionality, config, rng=level_rng)
            for data, item_ids in parts:
                network.add_peer(data, item_ids)
            network.publish_all()
            loads = _hyperm_weighted_loads(network)
            label = "A only" if levels_used == 1 else f"L={levels_used}"
            rows.append(_fig9_row(label, skew, loads))
    return rows


def _fig9_row(configuration: str, skew: int, loads: list[float]) -> Fig9Row:
    total = sum(loads)
    return Fig9Row(
        configuration=configuration,
        skew_clusters=skew,
        participation=participation_fraction(loads),
        gini=gini_coefficient(loads),
        max_load_fraction=(max(loads) / total) if total else 0.0,
    )
