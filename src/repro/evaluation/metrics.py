"""Retrieval and load-distribution metrics."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision and recall of a retrieved set against a relevant set."""

    precision: float
    recall: float
    retrieved: int
    relevant: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall (0 when both are 0)."""
        if self.precision + self.recall == 0:
            return 0.0
        return 2 * self.precision * self.recall / (self.precision + self.recall)


def precision_recall(retrieved: set, relevant: set) -> PrecisionRecall:
    """Standard set-based precision/recall.

    Conventions for empty sets: with nothing relevant, recall is 1 (there
    was nothing to find); with nothing retrieved, precision is 1 (nothing
    wrong was returned).
    """
    hits = len(retrieved & relevant)
    precision = hits / len(retrieved) if retrieved else 1.0
    recall = hits / len(relevant) if relevant else 1.0
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        retrieved=len(retrieved),
        relevant=len(relevant),
    )


def f1_score(retrieved: set, relevant: set) -> float:
    """F1 of a retrieved set against a relevant set."""
    return precision_recall(retrieved, relevant).f1


def gini_coefficient(loads) -> float:
    """Gini coefficient of a load vector: 0 = perfectly even, →1 = one node.

    Used to quantify the Figure 9 claim that wavelet subspaces spread data
    more evenly than the original space.
    """
    arr = np.sort(np.asarray(list(loads), dtype=np.float64))
    if arr.size == 0:
        raise ValidationError("loads must be non-empty")
    if np.any(arr < 0):
        raise ValidationError("loads must be non-negative")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = arr.size
    # Standard formula: G = (2 * sum_i i*x_i) / (n * sum x) - (n + 1) / n
    index = np.arange(1, n + 1)
    return float((2.0 * np.sum(index * arr)) / (n * total) - (n + 1.0) / n)


def participation_fraction(loads) -> float:
    """Fraction of nodes holding at least one entry (Figure 9's
    "average number of peers holding the data", normalised)."""
    arr = np.asarray(list(loads), dtype=np.float64)
    if arr.size == 0:
        raise ValidationError("loads must be non-empty")
    return float(np.mean(arr > 0))
