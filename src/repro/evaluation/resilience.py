"""Resilience evaluation: range-query recall under loss and crashes.

The fault-injection layer (:mod:`repro.faults`) makes the fabric lossy;
this scenario measures what that costs. For each loss rate the same
network (same build seed) is rebuilt, a :class:`~repro.faults.plan.FaultPlan`
is installed, optionally a fraction of peers is crashed *abruptly* (no
overlay cleanup — their zones and published spheres dangle), and a batch
of range queries runs with retries/degradation active.

Two recalls are reported per row:

* ``recall`` — against the *reachable* ground truth (truth items held by
  peers still online). This isolates what the fault machinery loses:
  with retries working, loss ≤ 10% should keep it ≥ 0.95 (the CI gate).
* ``raw_recall`` — against the full ground truth, crashed peers' items
  included. The gap between the two is exactly the data that left the
  network with the crashed devices; no protocol can recover it.

Everything is deterministic: the build/query seeds derive once from
``rng`` and are reused across loss rates, and each fault plan's injector
seeds its own private RNG from ``fault_seed`` plus the row index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.network import HyperMConfig
from repro.evaluation.metrics import precision_recall
from repro.evaluation.workloads import build_histogram_network, sample_queries
from repro.faults import FaultPlan, crash_peer
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class FaultRecallRow:
    """Recall/confidence summary for one (loss rate, crash fraction) cell."""

    loss: float
    crash_fraction: float
    peers_crashed: int
    queries: int
    recall_mean: float
    recall_min: float
    raw_recall_mean: float
    confidence_mean: float
    degraded_queries: int
    drops: int
    retries: int
    timeouts: int
    tombstoned_entries: int


def _reachable(truth: set, network, owner: dict[int, int]) -> set:
    """Truth items still held by an online peer."""
    return {
        item_id
        for item_id in truth
        if network.peers[owner[item_id]].online
    }


def run_fault_recall(
    *,
    n_peers: int = 16,
    n_objects: int = 48,
    views_per_object: int = 10,
    n_bins: int = 32,
    n_clusters: int = 6,
    levels_used: int = 3,
    loss_rates: tuple[float, ...] = (0.0, 0.05, 0.10, 0.20),
    crash_fraction: float = 0.0,
    radii: tuple[float, ...] = (0.12, 0.16),
    n_queries: int = 8,
    max_peers: int = 8,
    rng=None,
    fault_seed: int = 0,
) -> list[FaultRecallRow]:
    """Range recall vs message-loss rate (optionally with abrupt crashes).

    Returns one :class:`FaultRecallRow` per loss rate. The network is
    rebuilt identically for every row (same derived build seed), so rows
    differ only in the installed fault plan — the clean row
    (``loss=0, crash_fraction=0``) doubles as the bit-identity baseline.
    """
    generator = ensure_rng(rng)
    build_seed = int(generator.integers(0, 2**32))
    query_seed = int(generator.integers(0, 2**32))
    config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)

    rows: list[FaultRecallRow] = []
    for row_index, loss in enumerate(loss_rates):
        workload = build_histogram_network(
            n_peers=n_peers,
            n_objects=n_objects,
            views_per_object=views_per_object,
            n_bins=n_bins,
            config=config,
            rng=np.random.default_rng(build_seed),
        )
        network = workload.network
        owner = {
            int(item_id): peer_id
            for peer_id, peer in network.peers.items()
            for item_id in peer.item_ids
        }
        queries = sample_queries(
            workload.ground_truth.data,
            n_queries,
            rng=np.random.default_rng(query_seed),
        )

        plan = FaultPlan(
            loss=loss,
            crash_fraction=crash_fraction,
            seed=fault_seed + row_index,
        )
        injector = network.fabric.install_faults(plan)

        origin = next(iter(network.peers))
        n_crash = int(round(crash_fraction * n_peers))
        victims = [p for p in sorted(network.peers) if p != origin][:n_crash]
        for victim in victims:
            crash_peer(network, victim)

        recalls: list[float] = []
        raw_recalls: list[float] = []
        confidences: list[float] = []
        degraded = 0
        total = 0
        for query in queries:
            for radius in radii:
                truth = workload.ground_truth.range_search(query, radius)
                if not truth:
                    continue
                reachable = _reachable(truth, network, owner)
                result = network.range_query(
                    query, radius, max_peers=max_peers, origin_peer=origin
                )
                total += 1
                if reachable:
                    recalls.append(
                        precision_recall(result.item_ids, reachable).recall
                    )
                raw_recalls.append(
                    precision_recall(result.item_ids, truth).recall
                )
                confidences.append(result.confidence)
                if result.degraded:
                    degraded += 1

        counters = injector.snapshot()["counters"]
        recall_arr = np.asarray(recalls or [0.0], dtype=np.float64)
        rows.append(
            FaultRecallRow(
                loss=loss,
                crash_fraction=crash_fraction,
                peers_crashed=len(victims),
                queries=total,
                recall_mean=float(recall_arr.mean()),
                recall_min=float(recall_arr.min()),
                raw_recall_mean=float(
                    np.mean(raw_recalls) if raw_recalls else 0.0
                ),
                confidence_mean=float(
                    np.mean(confidences) if confidences else 1.0
                ),
                degraded_queries=degraded,
                drops=int(counters.get("drops", 0)),
                retries=int(counters.get("retries", 0)),
                timeouts=int(counters.get("timeouts", 0)),
                tombstoned_entries=int(
                    counters.get("tombstoned_entries", 0)
                ),
            )
        )
    return rows
