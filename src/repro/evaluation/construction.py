"""Network construction time via parallel event-driven simulation (§5.2).

The paper measures dissemination in hops, but its headline claim is about
*construction time*: "cut down the overall construction time of an overlay
network such as CAN by an order of magnitude". This module turns the
per-peer hop/byte accounting into wall-clock makespan the way the paper's
own simulator did — "we simulated the parallel behavior of a peer-to-peer
network with a scheduler class and an event queue":

* every peer publishes its own objects sequentially (a radio transmits
  one message at a time);
* across peers, publication is concurrent under **spatial reuse** (peers
  far apart can transmit simultaneously) — the *parallel makespan* is the
  slowest peer's finish time;
* under a **shared channel** (everyone in one collision domain — the
  paper's conference-room scenario) transmissions serialize and the
  makespan is the total airtime.

Both schedules are run through :class:`repro.net.events.Scheduler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.baselines import NaiveCANPublisher
from repro.core.network import HyperMConfig
from repro.evaluation.workloads import build_markov_network
from repro.net.events import Scheduler
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import check_positive


@dataclass(frozen=True)
class RadioModel:
    """First-order MANET radio timing.

    Attributes
    ----------
    bandwidth:
        Effective payload bandwidth in bytes/second (default approximates
        a Bluetooth 1.x-class link, the paper's motivating hardware).
    per_hop_latency:
        Fixed per-hop forwarding latency in seconds.
    """

    bandwidth: float = 100_000.0
    per_hop_latency: float = 0.005

    def __post_init__(self) -> None:
        check_positive(self.bandwidth, "bandwidth")
        check_positive(self.per_hop_latency, "per_hop_latency", strict=False)

    def hop_time(self, size_bytes: float) -> float:
        """Seconds one hop of a ``size_bytes`` message occupies the radio."""
        return self.per_hop_latency + size_bytes / self.bandwidth


@dataclass
class ConstructionTimeline:
    """Construction-time outcome for one dissemination method."""

    method: str
    items: int
    total_hops: int
    total_bytes: int
    per_peer_seconds: dict = field(default_factory=dict)
    parallel_makespan: float = 0.0
    shared_channel_makespan: float = 0.0

    @property
    def hops_per_item(self) -> float:
        """Average overlay hops per published item."""
        return self.total_hops / max(self.items, 1)

    @property
    def bytes_per_item(self) -> float:
        """Average bytes moved per published item."""
        return self.total_bytes / max(self.items, 1)


def _simulate_schedules(
    per_peer_costs: dict[int, list[float]]
) -> tuple[dict, float, float]:
    """Run both schedules on the event queue.

    ``per_peer_costs`` maps peer id to the airtime of each of its
    publication operations, in order. Returns (per-peer completion times,
    parallel makespan, shared-channel makespan).
    """
    # Parallel (spatial reuse): each peer chains its own operations.
    scheduler = Scheduler()
    completion: dict[int, float] = {}

    def chain(peer_id: int, costs: list[float], index: int) -> None:
        if index >= len(costs):
            completion[peer_id] = scheduler.now
            return
        scheduler.schedule_after(
            costs[index], lambda: chain(peer_id, costs, index + 1)
        )

    for peer_id, costs in per_peer_costs.items():
        chain(peer_id, costs, 0)
    scheduler.run()
    parallel_makespan = max(completion.values(), default=0.0)

    # Shared channel: one collision domain, FIFO over all operations.
    serial = Scheduler()
    cursor = {"t": 0.0}
    for costs in per_peer_costs.values():
        for cost in costs:
            cursor["t"] += cost
            serial.schedule_at(cursor["t"], lambda: None)
    serial.run()
    shared_makespan = serial.now

    return completion, parallel_makespan, shared_makespan


def hyperm_construction(
    *,
    n_peers: int = 20,
    items_per_peer: int = 200,
    dimensionality: int = 64,
    config: HyperMConfig | None = None,
    radio: RadioModel | None = None,
    rng=None,
) -> ConstructionTimeline:
    """Build + publish a Hyper-M network; return its construction timeline."""
    radio = radio or RadioModel()
    config = config or HyperMConfig()
    workload, __ = build_markov_network(
        n_peers=n_peers,
        items_per_peer=items_per_peer,
        dimensionality=dimensionality,
        config=config,
        rng=rng,
        publish=False,
    )
    network = workload.network
    per_peer_costs: dict[int, list[float]] = {}
    total_hops = 0
    total_bytes = 0
    items = 0
    for peer_id in network.peers:
        hops_before = network.fabric.metrics.total_hops
        bytes_before = network.fabric.metrics.total_bytes
        report = network.publish_peer(peer_id)
        hops = network.fabric.metrics.total_hops - hops_before
        size = network.fabric.metrics.total_bytes - bytes_before
        # Model each sphere insertion as one operation whose airtime is its
        # share of the peer's hops/bytes.
        ops = max(report.spheres_inserted, 1)
        mean_hop_bytes = size / max(hops, 1)
        op_cost = (hops / ops) * radio.hop_time(mean_hop_bytes)
        per_peer_costs[peer_id] = [op_cost] * ops
        total_hops += hops
        total_bytes += size
        items += report.items_published
    per_peer, parallel, shared = _simulate_schedules(per_peer_costs)
    return ConstructionTimeline(
        method="hyperm",
        items=items,
        total_hops=total_hops,
        total_bytes=total_bytes,
        per_peer_seconds=per_peer,
        parallel_makespan=parallel,
        shared_channel_makespan=shared,
    )


def naive_can_construction(
    *,
    n_peers: int = 20,
    items_per_peer: int = 200,
    dimensionality: int = 64,
    radio: RadioModel | None = None,
    sample_per_peer: int | None = 60,
    rng=None,
) -> ConstructionTimeline:
    """Per-item CAN publication timeline on an equivalent workload.

    ``sample_per_peer`` publishes a per-peer sample to estimate the
    (volume-independent) per-item cost, then extrapolates airtime to the
    full volume — identical statistics, far less simulation time.
    """
    radio = radio or RadioModel()
    generator = ensure_rng(rng)
    data_rng, can_rng = spawn_rngs(generator, 2)
    workload, __ = build_markov_network(
        n_peers=n_peers,
        items_per_peer=items_per_peer,
        dimensionality=dimensionality,
        rng=data_rng,
        publish=False,
    )
    publisher = NaiveCANPublisher(dimensionality, rng=can_rng)
    for peer_id in range(n_peers):
        publisher.add_peer(peer_id)
    per_peer_costs: dict[int, list[float]] = {}
    total_hops = 0.0
    total_bytes = 0.0
    items = 0
    for peer_id, (data, ids) in enumerate(workload.parts):
        full_count = data.shape[0]
        if sample_per_peer is not None and full_count > sample_per_peer:
            data = data[:sample_per_peer]
            ids = ids[:sample_per_peer]
        hops_before = publisher.fabric.metrics.total_hops
        bytes_before = publisher.fabric.metrics.total_bytes
        n, __h = publisher.publish_items(peer_id, data, ids)
        hops = publisher.fabric.metrics.total_hops - hops_before
        size = publisher.fabric.metrics.total_bytes - bytes_before
        scale = full_count / max(n, 1)
        mean_hop_bytes = size / max(hops, 1)
        per_item_cost = (hops / max(n, 1)) * radio.hop_time(mean_hop_bytes)
        per_peer_costs[peer_id] = [per_item_cost] * full_count
        total_hops += hops * scale
        total_bytes += size * scale
        items += full_count
    per_peer, parallel, shared = _simulate_schedules(per_peer_costs)
    return ConstructionTimeline(
        method="can",
        items=items,
        total_hops=int(round(total_hops)),
        total_bytes=int(round(total_bytes)),
        per_peer_seconds=per_peer,
        parallel_makespan=parallel,
        shared_channel_makespan=shared,
    )


@dataclass(frozen=True)
class ConstructionComparison:
    """Hyper-M vs per-item CAN construction-time summary."""

    hyperm: ConstructionTimeline
    can: ConstructionTimeline

    @property
    def parallel_speedup(self) -> float:
        """CAN / Hyper-M makespan under spatial reuse."""
        return self.can.parallel_makespan / max(
            self.hyperm.parallel_makespan, 1e-12
        )

    @property
    def shared_channel_speedup(self) -> float:
        """CAN / Hyper-M makespan on one shared channel."""
        return self.can.shared_channel_makespan / max(
            self.hyperm.shared_channel_makespan, 1e-12
        )


def run_construction_comparison(
    *,
    n_peers: int = 20,
    items_per_peer: int = 300,
    dimensionality: int = 64,
    config: HyperMConfig | None = None,
    radio: RadioModel | None = None,
    rng=None,
) -> ConstructionComparison:
    """Measure both methods' construction time on equivalent workloads."""
    generator = ensure_rng(rng)
    hm_rng, can_rng = spawn_rngs(generator, 2)
    hyperm = hyperm_construction(
        n_peers=n_peers,
        items_per_peer=items_per_peer,
        dimensionality=dimensionality,
        config=config,
        radio=radio,
        rng=hm_rng,
    )
    can = naive_can_construction(
        n_peers=n_peers,
        items_per_peer=items_per_peer,
        dimensionality=dimensionality,
        radio=radio,
        rng=can_rng,
    )
    return ConstructionComparison(hyperm=hyperm, can=can)
