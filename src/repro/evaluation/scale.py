"""The ``repro scale-bench`` runner: 10⁵-peer publish + query throughput.

The scale harness answers the question the per-operation benchmarks
cannot: what does a Hyper-M deployment cost at MANET-city scale? It
builds one overlay per published wavelet level as an analytic CAN grid
(:mod:`repro.overlay.can.bulk` — the closed form of the join protocol's
uniform-split limit), bulk-publishes synthetic cluster spheres for every
peer in vectorised passes, then drives a batch of translated range
queries entirely through the execution-engine plane
(:mod:`repro.engine`): per-level intersection masks and Eq. 1 scores run
inline (serial) or on shard workers over shared memory (sharded), and
min-across-levels aggregation — the paper's only cross-level join point
— happens once per query after the per-level barrier.

Three headline numbers land in ``BENCH_scale.json``:

* ``peers_per_s`` — bulk construction + publication throughput;
* ``queries_per_s`` — engine-plane index-phase query throughput;
* ``resources.peak_rss_mb`` — the run's memory high-water mark.

Plus one machine-relative ratio CI can gate: ``bulk_speedup``, the
wall-clock ratio of protocol-grown (routed joins + routed inserts)
versus bulk (grid + :func:`bulk_publish`) construction at a small equal
size on the same machine. When the sharded engine is selected, the first
``parity_queries`` queries are recomputed inline and compared at 1e-9 —
the sharded path must be an execution strategy, never a different
answer.
"""

from __future__ import annotations

import numpy as np

from repro.core.scoring import aggregate_scores, level_scores
from repro.engine import EngineConfig, create_engine, gather_block, store_mask
from repro.exceptions import ValidationError
from repro.net.network import Network
from repro.obs import registry as obs_registry
from repro.obs.rss import rss_snapshot
from repro.overlay.can import CANNetwork, build_grid_can, bulk_publish
from repro.utils.rng import ensure_rng
from repro.wavelets.bounds import key_space_radius, radius_scale, to_unit_cube
from repro.wavelets.multiresolution import decompose, publication_levels


def _clock():
    return obs_registry.metrics().clock


def _sphere_batch(levels, n_peers, spheres_per_peer, rng):
    """Synthetic per-level sphere columns: keys, radii, peer ids.

    Keys are uniform in each level's key space and radii uniform in
    ``[0, 0.05]`` — the publication *cost* being measured is independent
    of where a real summary's centroids land, and uniform keys exercise
    every grid cell.
    """
    n_spheres = n_peers * spheres_per_peer
    peer_ids = np.repeat(np.arange(n_peers, dtype=np.int64), spheres_per_peer)
    batches = {}
    for level in levels:
        keys = rng.random((n_spheres, level.dimensionality))
        radii = 0.05 * rng.random(n_spheres)
        batches[level] = (keys, radii)
    return peer_ids, batches


def _build_and_publish(levels, n_peers, peer_ids, batches, *, fabric, rng):
    """Grid-build every level overlay and bulk-publish all spheres.

    Returns ``(overlays, plans, build_s, publish_s)``. Peer ``i`` is
    node ``offset + i`` of each level's grid (the grid has at least
    ``n_peers`` cells), so publish traffic is charged from each peer's
    own node to the sphere's owner.
    """
    clock = _clock()
    overlays: dict = {}
    plans: dict = {}
    stride = max(1_000_000, 1 << (max(n_peers - 1, 1)).bit_length())
    level_rngs = [ensure_rng(int(rng.integers(2**63))) for __ in levels]
    start = clock()
    for index, level in enumerate(levels):
        can, plan = build_grid_can(
            level.dimensionality, n_peers, fabric=fabric,
            rng=level_rngs[index], node_id_offset=(index + 1) * stride,
        )
        overlays[level] = can
        plans[level] = plan
    build_s = clock() - start
    start = clock()
    for index, level in enumerate(levels):
        plan = plans[level]
        keys, radii = batches[level]
        origins = plan.node_id_offset + peer_ids
        bulk_publish(
            overlays[level], plan, keys, radii,
            peer_ids=peer_ids, origins=origins,
        )
    publish_s = clock() - start
    return overlays, plans, build_s, publish_s


def _translate_queries(queries, levels):
    """Map each d-dim query into every level's key space (one DWT each)."""
    per_query = []
    for query in queries:
        decomposition = decompose(query)
        per_query.append({
            level: np.clip(to_unit_cube(decomposition[level], level), 0.0, 1.0)
            for level in levels
        })
    return per_query


def _level_radii(dimensionality, levels, epsilon):
    return {
        level: key_space_radius(
            epsilon * radius_scale(dimensionality, level), level
        )
        for level in levels
    }


def _engine_query(engine, levels, keys_by_level, radii):
    """One index-phase query on the engine plane; returns peer scores."""
    tasks = [
        (index, keys_by_level[level], radii[level])
        for index, level in enumerate(levels)
    ]
    per_level = dict(zip(levels, engine.score_levels(tasks)))
    return aggregate_scores(per_level, policy="min")


def _inline_query(stores, levels, keys_by_level, radii):
    """The serial oracle: same kernels, straight on the parent's columns."""
    per_level = {}
    for level in levels:
        store = stores[level]
        mask = store_mask(store, keys_by_level[level], radii[level])
        block = gather_block(store, mask)
        per_level[level] = level_scores(
            block, keys_by_level[level], radii[level]
        )
    return aggregate_scores(per_level, policy="min")


def _score_parity(engine_scores, inline_scores, tolerance=1e-9):
    """Max |delta| between two peer-score dicts; infinite on set mismatch."""
    if set(engine_scores) != set(inline_scores):
        return float("inf")
    if not engine_scores:
        return 0.0
    return max(
        abs(engine_scores[peer] - inline_scores[peer])
        for peer in engine_scores
    )


def _routed_baseline_s(dimensionality, n_peers, keys, radii, rng) -> float:
    """Wall time of protocol-grown construction + routed publication."""
    clock = _clock()
    start = clock()
    can = CANNetwork(dimensionality, rng=rng)
    can.grow(n_peers)
    node_ids = can.node_ids
    for row, key in enumerate(keys):
        origin = node_ids[row % n_peers]
        can.insert(origin, key, None, radius=float(radii[row]))
    return clock() - start


def _bulk_baseline_s(dimensionality, n_peers, keys, radii, rng) -> float:
    """Wall time of grid construction + bulk publication (same inputs)."""
    clock = _clock()
    start = clock()
    can, plan = build_grid_can(dimensionality, n_peers, rng=rng)
    origins = plan.node_id_offset + (
        np.arange(keys.shape[0], dtype=np.int64) % n_peers
    )
    bulk_publish(can, plan, keys, radii, origins=origins)
    return clock() - start


def run_scale_bench(
    n_peers: int = 2048,
    spheres_per_peer: int = 2,
    dimensionality: int = 16,
    levels_used: int = 3,
    n_queries: int = 32,
    epsilon: float = 0.25,
    engine: str = "serial",
    workers: int = 2,
    shard_by: str = "level",
    seed: int = 0,
    baseline_peers: int = 192,
    parity_queries: int = 4,
) -> dict:
    """Run the scale benchmark; returns the JSON-safe report.

    ``baseline_peers`` sizes the routed-versus-bulk construction race
    whose wall-clock ratio (``bulk_speedup``) is the CI-gated field —
    small enough that the quadratic routed arm stays affordable,
    identical inputs on both arms. ``parity_queries`` queries are
    double-checked inline when a parallel engine is selected.
    """
    if n_peers < 1:
        raise ValidationError(f"n_peers must be >= 1, got {n_peers}")
    if spheres_per_peer < 1:
        raise ValidationError(
            f"spheres_per_peer must be >= 1, got {spheres_per_peer}"
        )
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    if baseline_peers < 2:
        raise ValidationError(
            f"baseline_peers must be >= 2, got {baseline_peers}"
        )
    rng = ensure_rng(seed)
    levels = publication_levels(dimensionality, levels_used)
    clock = _clock()

    config = EngineConfig(engine=engine, workers=workers, shard_by=shard_by)
    engine_obj = create_engine(config)
    try:
        fabric = Network(scheduler=engine_obj.create_scheduler())
        peer_ids, batches = _sphere_batch(
            levels, n_peers, spheres_per_peer, rng
        )
        overlays, plans, build_s, publish_s = _build_and_publish(
            levels, n_peers, peer_ids, batches, fabric=fabric, rng=rng
        )
        stores = {
            level: overlays[level].level_store for level in levels
        }
        for index, level in enumerate(levels):
            engine_obj.register_store(index, stores[level])

        queries = rng.random((n_queries, dimensionality))
        translated = _translate_queries(queries, levels)
        radii = _level_radii(dimensionality, levels, epsilon)

        # Parity first (outside the timed window): the engine must agree
        # with the inline oracle before its throughput means anything.
        parity = {"checked": 0, "max_abs_delta": 0.0}
        if engine_obj.parallel and parity_queries > 0:
            worst = 0.0
            checked = min(parity_queries, n_queries)
            for keys_by_level in translated[:checked]:
                delta = _score_parity(
                    _engine_query(engine_obj, levels, keys_by_level, radii),
                    _inline_query(stores, levels, keys_by_level, radii),
                )
                worst = max(worst, delta)
            if not worst <= 1e-9:
                raise ValidationError(
                    f"sharded scoring diverged from the inline oracle "
                    f"(max delta {worst})"
                )
            parity = {"checked": checked, "max_abs_delta": worst}

        start = clock()
        peers_ranked = 0
        for keys_by_level in translated:
            peers_ranked += len(
                _engine_query(engine_obj, levels, keys_by_level, radii)
            )
        query_s = clock() - start

        small = min(baseline_peers, n_peers)
        base_dim = levels[-1].dimensionality
        base_keys = rng.random((small * spheres_per_peer, base_dim))
        base_radii = 0.05 * rng.random(small * spheres_per_peer)
        routed_s = _routed_baseline_s(
            base_dim, small, base_keys, base_radii,
            ensure_rng(int(rng.integers(2**63))),
        )
        bulk_s = _bulk_baseline_s(
            base_dim, small, base_keys, base_radii,
            ensure_rng(int(rng.integers(2**63))),
        )

        n_spheres = n_peers * spheres_per_peer * len(levels)
        report = {
            "benchmark": "scale",
            "n_peers": n_peers,
            "spheres_per_peer": spheres_per_peer,
            "dimensionality": dimensionality,
            "levels_used": levels_used,
            "n_queries": n_queries,
            "epsilon": float(epsilon),
            "seed": seed,
            "engine": engine_obj.name,
            "workers": config.workers,
            "shard_by": config.shard_by,
            "grid": {
                str(level): list(plans[level].counts) for level in levels
            },
            "build_s": build_s,
            "publish_s": publish_s,
            "peers_per_s": n_peers / max(build_s + publish_s, 1e-12),
            "spheres_published": n_spheres,
            "spheres_per_s": n_spheres / max(publish_s, 1e-12),
            "query_s": query_s,
            "queries_per_s": n_queries / max(query_s, 1e-12),
            "mean_peers_ranked": peers_ranked / n_queries,
            "baseline_peers": small,
            "routed_small_s": routed_s,
            "bulk_small_s": bulk_s,
            "bulk_speedup": routed_s / max(bulk_s, 1e-12),
            "parity": parity,
            "fabric": {
                "messages": fabric.metrics.total_messages,
                "bytes": fabric.metrics.total_bytes,
                "energy": fabric.energy.total,
            },
            "engine_snapshot": engine_obj.snapshot(),
            "resources": rss_snapshot(),
        }
        return report
    finally:
        engine_obj.close()
