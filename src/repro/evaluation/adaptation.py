"""Load-adaptation effectiveness: hotspot skew with the control loop on.

The experiment behind ``repro adapt``: build the same Markov-corpus
Hyper-M network twice, drive both with the identical skewed query
workload the hotspot benchmark uses, and compare traffic concentration
(zone-bytes Gini and max-over-mean from :func:`build_loadmap`) between
the clean network and one running an
:class:`repro.overlay.adapt.AdaptationController`. Query *results* are
identical in both arms — adaptation moves zones, replicas, and message
paths, never the answer set (Theorem 4.1 set equality is property-tested
in ``tests/test_overlay_adapt.py``) — so the rows only report load.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.network import HyperMConfig
from repro.datasets.skewed import generate_skewed_dataset
from repro.evaluation.workloads import build_markov_network
from repro.obs.loadmap import build_loadmap
from repro.overlay.adapt import AdaptConfig, adapt_scope


@dataclass(frozen=True)
class AdaptationRow:
    """One arm of the comparison (``mode`` is ``clean`` or ``adapted``)."""

    mode: str
    zone_gini: float
    zone_max_over_mean: float
    max_zone_bytes: int
    total_bytes: int
    splits: int
    boosts: int
    sheds: int
    items_returned: int


def skewed_query_points(
    data: np.ndarray, hot_clusters: int, n_queries: int, seed: int
) -> np.ndarray:
    """Query points concentrated in the corpus's few largest clusters.

    The exact generator the hotspot benchmark uses (same seed
    derivation), so CLI runs and bench gates measure one workload.
    """
    hot = generate_skewed_dataset(data, hot_clusters, rng=seed + 1)
    rng = np.random.default_rng(seed + 2)
    rows = rng.integers(0, hot.shape[0], size=n_queries)
    return hot[rows]


def run_adaptation(
    n_peers: int = 12,
    items_per_peer: int = 150,
    dimensionality: int = 64,
    n_clusters: int = 6,
    levels_used: int = 3,
    rng: int = 3,
    n_queries: int = 48,
    epsilon: float = 0.5,
    hot_clusters: int = 2,
    epoch_queries: int = 12,
    config: AdaptConfig | None = None,
) -> list[AdaptationRow]:
    """Run both arms; returns ``[clean row, adapted row]``.

    ``config`` overrides the adapted arm's full operating point;
    otherwise the default :class:`AdaptConfig` runs with the given
    ``epoch_queries`` cadence. Construction happens under
    ``adapt_scope(None)`` so an ambient ``--adapt`` flag cannot leak
    into the clean arm.
    """
    seed = int(rng)
    adapted_config = config or AdaptConfig(epoch_queries=epoch_queries)
    rows: list[AdaptationRow] = []
    for mode in ("clean", "adapted"):
        with adapt_scope(None):
            workload, __ = build_markov_network(
                n_peers=n_peers,
                items_per_peer=items_per_peer,
                dimensionality=dimensionality,
                config=HyperMConfig(
                    levels_used=levels_used, n_clusters=n_clusters
                ),
                rng=seed,
                publish=False,
            )
        network = workload.network
        if mode == "adapted":
            network.enable_adaptation(adapted_config)
        queries = skewed_query_points(
            workload.data, hot_clusters, n_queries, seed
        )
        network.publish_all()
        items = 0
        for query in queries:
            items += len(network.range_query(query, epsilon).items)
        zone_bytes = build_loadmap(network)["skew"]["zone_bytes"]
        decisions = (
            network.adaptation.snapshot()["decisions"]
            if network.adaptation is not None
            else {"split": 0, "boost": 0, "shed": 0}
        )
        rows.append(AdaptationRow(
            mode=mode,
            zone_gini=float(zone_bytes["gini"]),
            zone_max_over_mean=float(zone_bytes["max_over_mean"]),
            max_zone_bytes=int(zone_bytes["max"]),
            total_bytes=int(network.fabric.metrics.total_bytes),
            splits=decisions["split"],
            boosts=decisions["boost"],
            sheds=decisions["shed"],
            items_returned=items,
        ))
    return rows
