"""Figure 11 — clustering quality across wavelet subspaces.

Measures the cohesion/separation ratio of k-means clusterings run in the
original vector space and in each wavelet subspace. The paper finds the
first three wavelet spaces cluster *better* (lower ratio) than the
original space, then quality deteriorates at finer detail levels — the
observation that motivates using only four levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clustering.kmeans import kmeans
from repro.clustering.quality import cluster_quality, cohesion, separation
from repro.datasets.histograms import generate_histograms
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.wavelets.multiresolution import decompose_dataset, levels_for


@dataclass(frozen=True)
class Fig11Row:
    """Clustering quality in one vector space."""

    space: str
    dimensionality: int
    cohesion: float
    separation: float
    ratio: float


def run_fig11(
    *,
    n_objects: int = 150,
    views_per_object: int = 10,
    n_bins: int = 64,
    n_clusters: int = 12,
    max_levels: int | None = None,
    rng=None,
) -> list[Fig11Row]:
    """Cohesion/separation ratio per vector space (lower is better).

    Returns one row for the original space followed by each wavelet
    subspace coarse-to-fine (``A, D0, D1, …``). ``max_levels`` truncates
    how many detail spaces are measured.
    """
    generator = ensure_rng(rng)
    data_rng, *cluster_rngs = spawn_rngs(generator, 2 + len(levels_for(n_bins)))
    dataset = generate_histograms(
        n_objects, views_per_object, n_bins, rng=data_rng
    )
    data = dataset.data

    rows = []
    result = kmeans(data, n_clusters, rng=cluster_rngs[0])
    rows.append(
        Fig11Row(
            space="original",
            dimensionality=data.shape[1],
            cohesion=cohesion(data, result),
            separation=separation(result),
            ratio=cluster_quality(data, result),
        )
    )
    decomposition = decompose_dataset(data)
    levels = levels_for(n_bins)
    if max_levels is not None:
        levels = levels[:max_levels]
    for level, level_rng in zip(levels, cluster_rngs[1:]):
        coeffs = decomposition[level]
        result = kmeans(coeffs, n_clusters, rng=level_rng)
        rows.append(
            Fig11Row(
                space=str(level),
                dimensionality=level.dimensionality,
                cohesion=cohesion(coeffs, result),
                separation=separation(result),
                ratio=cluster_quality(coeffs, result),
            )
        )
    return rows


@dataclass(frozen=True)
class WaveletFamilyRow:
    """Clustering quality in one subspace under one wavelet family."""

    wavelet: str
    space: str
    dimensionality: int
    ratio: float


def run_wavelet_family_ablation(
    *,
    wavelets: tuple[str, ...] = ("haar", "db2", "db3", "db4"),
    n_objects: int = 120,
    views_per_object: int = 8,
    n_bins: int = 64,
    n_clusters: int = 10,
    coarse_levels: int = 4,
    rng=None,
) -> list[WaveletFamilyRow]:
    """Figure 11's question for other wavelet families (paper footnote 2).

    The paper proves Theorem 3.1 for Haar and notes "similar, though more
    laborious proofs can be done for other wavelets". This ablation
    measures whether the *clustering advantage* of coarse subspaces also
    carries over: for each orthonormal family, the dataset is decomposed
    with the filter-bank DWT and the cohesion/separation ratio is measured
    in each of the ``coarse_levels`` coarsest subspaces.
    """
    from repro.wavelets.transform import wavedec

    generator = ensure_rng(rng)
    data_rng, cluster_seed_rng = spawn_rngs(generator, 2)
    dataset = generate_histograms(
        n_objects, views_per_object, n_bins, rng=data_rng
    )
    data = dataset.data

    rows: list[WaveletFamilyRow] = []
    baseline = kmeans(data, n_clusters, rng=cluster_seed_rng)
    rows.append(
        WaveletFamilyRow(
            wavelet="(none)",
            space="original",
            dimensionality=n_bins,
            ratio=cluster_quality(data, baseline),
        )
    )
    for family in wavelets:
        approx, details = wavedec(data, family)
        # Coarse-to-fine: approximation then the first detail bands.
        subspaces = [("A", approx)] + [
            (f"D{i}", detail) for i, detail in enumerate(details)
        ]
        for name, coeffs in subspaces[:coarse_levels]:
            result = kmeans(coeffs, n_clusters, rng=cluster_seed_rng)
            rows.append(
                WaveletFamilyRow(
                    wavelet=family,
                    space=name,
                    dimensionality=int(coeffs.shape[1]),
                    ratio=cluster_quality(coeffs, result),
                )
            )
    return rows


def normalized_ratios(rows: list[Fig11Row]) -> dict[str, float]:
    """Each space's ratio relative to the original space (1.0 = original).

    Values below 1.0 mean the subspace clusters better than the original —
    the paper's expectation for the first few wavelet spaces.
    """
    baseline = next(row.ratio for row in rows if row.space == "original")
    if baseline == 0 or not np.isfinite(baseline):
        baseline = 1.0
    return {row.space: row.ratio / baseline for row in rows}
