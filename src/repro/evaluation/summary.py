"""One-call full evaluation: every experiment, structured + renderable.

``run_full_report`` executes every figure's runner and returns structured
:class:`ExperimentReport` objects; ``render_markdown`` turns them into an
EXPERIMENTS.md-style document. Powers ``python -m repro all --output``.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, is_dataclass

from repro.evaluation.dissemination import (
    run_fig8a,
    run_fig8b,
    run_fig8c,
    run_fig9,
)
from repro.evaluation.effectiveness import (
    run_c_knob,
    run_fig10a,
    run_fig10b,
    run_fig10c,
)
from repro.evaluation.quality import run_fig11
from repro.evaluation.reporting import (
    metrics_to_table,
    rows_to_table,
    series_to_table,
)
from repro.obs import trace as obs_trace
from repro.obs.registry import metrics_scope
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass
class ExperimentReport:
    """One experiment's structured outcome.

    Attributes
    ----------
    name / title:
        Machine id (``fig8a``) and human heading.
    records:
        Plain-dict rows (JSON-safe) for programmatic consumption.
    table:
        The rendered ASCII table, as the benchmarks print it.
    metrics:
        Observability snapshot (counters/gauges/histograms) collected
        while this experiment ran — publish/query totals that make report
        diffs quantitative, not just table-shaped.
    """

    name: str
    title: str
    records: list = field(default_factory=list)
    table: str = ""
    metrics: dict = field(default_factory=dict)


def _scoped(name: str, thunk):
    """Run ``thunk`` under a fresh metrics scope and an experiment span.

    Returns ``(result, metrics snapshot)`` so each experiment's report
    carries only its own publish/query counters.
    """
    recorder = obs_trace.state.recorder
    with metrics_scope() as scoped:
        with recorder.span(f"experiment[{name}]"):
            result = thunk()
    return result, scoped.snapshot()


def _rows_report(name, title, rows) -> ExperimentReport:
    records = [
        asdict(row) if is_dataclass(row) else dict(row) for row in rows
    ]
    return ExperimentReport(
        name=name, title=title, records=records,
        table=rows_to_table(rows, title=title),
    )


#: Per-experiment parameter presets (scaled for a full-report run).
_QUICK = dict(n_peers=12, items_per_peer=80, n_objects=60,
              views_per_object=8, n_queries=6)
_PAPER = dict(n_peers=50, items_per_peer=1000, n_objects=500,
              views_per_object=12, n_queries=25)


def run_full_report(*, scale: str = "quick", rng=0) -> list[ExperimentReport]:
    """Run every experiment; returns one report per figure/table.

    ``scale`` is ``"quick"`` (about a minute) or ``"paper"``
    (paper-proportioned sizes; substantially longer).
    """
    if scale not in ("quick", "paper"):
        raise ValueError(f"scale must be 'quick' or 'paper', got {scale!r}")
    params = dict(_QUICK if scale == "quick" else _PAPER)
    seeds = spawn_rngs(ensure_rng(rng), 9)

    def pick(func, extra=None):
        import inspect

        accepted = set(inspect.signature(func).parameters)
        merged = dict(params)
        if extra:
            merged.update(extra)
        return {k: v for k, v in merged.items() if k in accepted}

    reports = []

    def add(report: ExperimentReport, metrics: dict) -> None:
        report.metrics = metrics
        reports.append(report)

    rows, captured = _scoped(
        "fig8a", lambda: run_fig8a(**pick(run_fig8a), rng=seeds[0])
    )
    add(_rows_report(
        "fig8a", "Figure 8a — replication overhead", rows,
    ), captured)
    rows, captured = _scoped(
        "fig8b", lambda: run_fig8b(**pick(run_fig8b), rng=seeds[1])
    )
    add(_rows_report(
        "fig8b", "Figure 8b — hops per item vs volume", rows,
    ), captured)
    (fig8c_rows, fig8c_base), captured = _scoped(
        "fig8c", lambda: run_fig8c(**pick(run_fig8c), rng=seeds[2])
    )
    fig8c = _rows_report(
        "fig8c", "Figure 8c — hops per item vs levels", fig8c_rows
    )
    fig8c.records.append({
        "baseline_can": fig8c_base.can_hops_per_item,
        "baseline_can2d": fig8c_base.can2d_hops_per_item,
    })
    add(fig8c, captured)
    rows, captured = _scoped(
        "fig9", lambda: run_fig9(**pick(run_fig9), rng=seeds[3])
    )
    add(_rows_report(
        "fig9", "Figure 9 — load distribution under skew", rows,
    ), captured)

    fig10a, captured = _scoped(
        "fig10a", lambda: run_fig10a(**pick(run_fig10a), rng=seeds[4])
    )
    series = {f"K_p={k}": v for k, v in fig10a.items()}
    add(ExperimentReport(
        name="fig10a",
        title="Figure 10a — range recall vs peers contacted",
        records=[
            {"series": label, "x": p.x, "mean": p.mean,
             "min": p.min, "max": p.max}
            for label, points in series.items()
            for p in points
        ],
        table=series_to_table(
            series, x_name="peers",
            title="Figure 10a — range recall vs peers contacted",
        ),
    ), captured)
    rows, captured = _scoped(
        "fig10b", lambda: run_fig10b(**pick(run_fig10b), rng=seeds[5])
    )
    add(_rows_report(
        "fig10b", "Figure 10b — k-NN precision/recall", rows,
    ), captured)
    rows, captured = _scoped(
        "cknob", lambda: run_c_knob(**pick(run_c_knob), rng=seeds[6])
    )
    add(_rows_report("cknob", "§6.1 — the C knob", rows), captured)
    rows, captured = _scoped(
        "fig10c", lambda: run_fig10c(**pick(run_fig10c), rng=seeds[7])
    )
    add(_rows_report("fig10c", "Figure 10c — staleness", rows), captured)
    rows, captured = _scoped(
        "fig11", lambda: run_fig11(**pick(run_fig11), rng=seeds[8])
    )
    add(_rows_report(
        "fig11", "Figure 11 — clustering quality per space", rows,
    ), captured)
    return reports


def render_markdown(reports: list[ExperimentReport]) -> str:
    """Render a full report as a Markdown document, with shape sketches."""
    parts = ["# Hyper-M — full experiment report", ""]
    for report in reports:
        parts.append(f"## {report.title}")
        parts.append("")
        parts.append("```")
        parts.append(report.table)
        chart = _chart_for(report)
        if chart:
            parts.append("")
            parts.append(chart)
        if report.metrics.get("counters") or report.metrics.get("histograms"):
            parts.append("")
            parts.append(metrics_to_table(
                report.metrics, title="observability snapshot"
            ))
        parts.append("```")
        parts.append("")
    return "\n".join(parts)


def _chart_for(report: ExperimentReport) -> str | None:
    """An ASCII sketch of the figure's shape, where one applies."""
    from repro.utils.ascii_plot import line_chart

    try:
        if report.name == "fig8b":
            return line_chart(
                {
                    "Hyper-M": [r["hyperm_hops_per_item"] for r in report.records],
                    "CAN": [r["can_hops_per_item"] for r in report.records],
                },
                x_labels=[r["total_items"] for r in report.records],
                title="hops/item vs total items",
                height=8,
            )
        if report.name == "fig10a":
            series: dict[str, list] = {}
            xs: list = []
            for record in report.records:
                series.setdefault(record["series"], []).append(record["mean"])
            xs = sorted({record["x"] for record in report.records})
            return line_chart(
                series, x_labels=xs,
                title="mean recall vs peers contacted", height=8,
            )
        if report.name == "fig10c":
            return line_chart(
                {"recall": [r["mean"] for r in report.records]},
                x_labels=[r["x"] for r in report.records],
                title="recall vs new-document fraction",
                height=8,
            )
    except (KeyError, ValueError):
        return None
    return None
