"""§6 retrieval-effectiveness experiments (Figures 10a, 10b, 10c, C-knob).

All runners follow the paper's methodology: ground truth comes from a
centralized flat index over the original vectors; the figures report
averages with min/max error bounds, where the variation comes from testing
different radii (range queries) or different ``k`` (k-NN queries).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.network import HyperMConfig
from repro.core.queries import index_phase
from repro.core.scoring import rank_peers
from repro.evaluation.metrics import precision_recall
from repro.evaluation.workloads import (
    build_histogram_network,
    insert_post_hoc,
    sample_queries,
)
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass(frozen=True)
class RecallSeries:
    """Mean recall with min/max error bounds at one x-axis point."""

    x: float
    mean: float
    min: float
    max: float


@dataclass(frozen=True)
class PrSeries:
    """Precision and recall summary at one configuration point."""

    label: str
    precision_mean: float
    precision_min: float
    precision_max: float
    recall_mean: float
    recall_min: float
    recall_max: float


def _series(x: float, values: list[float]) -> RecallSeries:
    arr = np.asarray(values, dtype=np.float64)
    return RecallSeries(
        x=x, mean=float(arr.mean()), min=float(arr.min()), max=float(arr.max())
    )


def _pr_series(label: str, pairs: list) -> PrSeries:
    precisions = np.asarray([p.precision for p in pairs])
    recalls = np.asarray([p.recall for p in pairs])
    return PrSeries(
        label=label,
        precision_mean=float(precisions.mean()),
        precision_min=float(precisions.min()),
        precision_max=float(precisions.max()),
        recall_mean=float(recalls.mean()),
        recall_min=float(recalls.min()),
        recall_max=float(recalls.max()),
    )


# --------------------------------------------------------------------------
# Figure 10a — range-query recall vs peers contacted
# --------------------------------------------------------------------------


def run_fig10a(
    *,
    n_peers: int = 20,
    n_objects: int = 120,
    views_per_object: int = 12,
    n_bins: int = 64,
    cluster_counts: tuple[int, ...] = (5, 10, 20),
    peers_contacted_sweep: tuple[int, ...] = (1, 2, 4, 6, 8, 10, 14, 18),
    radii: tuple[float, ...] = (0.08, 0.12, 0.16),
    n_queries: int = 12,
    levels_used: int = 4,
    rng=None,
) -> dict[int, list[RecallSeries]]:
    """Range recall vs number of peers contacted, per clusters-per-peer.

    Returns ``{clusters_per_peer: [RecallSeries per P]}``. The index phase
    runs once per (query, radius); each P value reuses the same ranking —
    exactly what varying the contact budget means. Precision is 100% by
    construction (contacted peers filter with the original query), so only
    recall is reported, matching the paper.
    """
    generator = ensure_rng(rng)
    out: dict[int, list[RecallSeries]] = {}
    for n_clusters, child in zip(
        cluster_counts, spawn_rngs(generator, len(cluster_counts))
    ):
        build_rng, query_rng = spawn_rngs(child, 2)
        config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)
        workload = build_histogram_network(
            n_peers=n_peers,
            n_objects=n_objects,
            views_per_object=views_per_object,
            n_bins=n_bins,
            config=config,
            rng=build_rng,
        )
        network = workload.network
        queries = sample_queries(
            workload.ground_truth.data, n_queries, rng=query_rng
        )
        recalls_by_p: dict[int, list[float]] = {
            p: [] for p in peers_contacted_sweep
        }
        origin = next(iter(network.peers))
        for query in queries:
            for radius in radii:
                truth = workload.ground_truth.range_search(query, radius)
                if not truth:
                    continue
                aggregated, __ = index_phase(
                    network, query, radius, origin_peer=origin
                )
                ranked = rank_peers(aggregated)
                for p in peers_contacted_sweep:
                    got: set = set()
                    for peer_id, __score in ranked[:p]:
                        got |= {
                            item.item_id
                            for item in network.peers[peer_id].range_search(
                                query, radius
                            )
                        }
                    recalls_by_p[p].append(
                        precision_recall(got, truth).recall
                    )
        out[n_clusters] = [
            _series(p, recalls_by_p[p] or [0.0])
            for p in peers_contacted_sweep
        ]
    return out


# --------------------------------------------------------------------------
# Figure 10b — k-NN precision/recall
# --------------------------------------------------------------------------


def run_fig10b(
    *,
    n_peers: int = 20,
    n_objects: int = 120,
    views_per_object: int = 12,
    n_bins: int = 64,
    cluster_counts: tuple[int, ...] = (5, 10, 20),
    k_values: tuple[int, ...] = (5, 10, 20),
    n_queries: int = 10,
    c: float = 1.0,
    levels_used: int = 4,
    rng=None,
) -> list[PrSeries]:
    """k-NN precision/recall per clusters-per-peer (variation over ``k``).

    Retrieval is evaluated over the full returned set (``C*k`` items split
    across peers) against the exact ``k`` nearest neighbours — this is why
    k-NN precision is below 100% even though range precision isn't.
    """
    generator = ensure_rng(rng)
    rows = []
    for n_clusters, child in zip(
        cluster_counts, spawn_rngs(generator, len(cluster_counts))
    ):
        build_rng, query_rng = spawn_rngs(child, 2)
        config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)
        workload = build_histogram_network(
            n_peers=n_peers,
            n_objects=n_objects,
            views_per_object=views_per_object,
            n_bins=n_bins,
            config=config,
            rng=build_rng,
        )
        network = workload.network
        queries = sample_queries(
            workload.ground_truth.data, n_queries, rng=query_rng
        )
        pairs = []
        for query in queries:
            for k in k_values:
                truth = workload.ground_truth.knn(query, k)
                result = network.knn_query(query, k, c=c)
                pairs.append(precision_recall(result.item_ids, truth))
        rows.append(_pr_series(f"K_p={n_clusters}", pairs))
    return rows


# --------------------------------------------------------------------------
# §6.1 C-knob — recall/precision trade-off
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CKnobRow:
    """Mean precision/recall at one C, with deltas vs the previous C."""

    c: float
    precision: float
    recall: float
    recall_gain_pct: float
    precision_drop_pct: float


def run_c_knob(
    *,
    n_peers: int = 20,
    n_objects: int = 120,
    views_per_object: int = 12,
    n_bins: int = 64,
    n_clusters: int = 10,
    k: int = 10,
    c_values: tuple[float, ...] = (1.0, 1.5, 2.0),
    n_queries: int = 15,
    levels_used: int = 4,
    rng=None,
) -> list[CKnobRow]:
    """The paper's C sensitivity: C=1→1.5 buys recall, costs precision.

    Paper numbers: +14.51% recall / −21.05% precision at C=1.5, then
    +4.23% / −6.67% more at C=2.
    """
    generator = ensure_rng(rng)
    build_rng, query_rng = spawn_rngs(generator, 2)
    config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)
    workload = build_histogram_network(
        n_peers=n_peers,
        n_objects=n_objects,
        views_per_object=views_per_object,
        n_bins=n_bins,
        config=config,
        rng=build_rng,
    )
    network = workload.network
    queries = sample_queries(workload.ground_truth.data, n_queries, rng=query_rng)
    rows: list[CKnobRow] = []
    previous: tuple[float, float] | None = None
    for c in c_values:
        pairs = []
        for query in queries:
            truth = workload.ground_truth.knn(query, k)
            result = network.knn_query(query, k, c=c)
            pairs.append(precision_recall(result.item_ids, truth))
        precision = float(np.mean([p.precision for p in pairs]))
        recall = float(np.mean([p.recall for p in pairs]))
        if previous is None:
            gain = drop = 0.0
        else:
            prev_precision, prev_recall = previous
            gain = 100.0 * (recall - prev_recall) / max(prev_recall, 1e-12)
            drop = 100.0 * (prev_precision - precision) / max(prev_precision, 1e-12)
        rows.append(
            CKnobRow(
                c=c,
                precision=precision,
                recall=recall,
                recall_gain_pct=gain,
                precision_drop_pct=drop,
            )
        )
        previous = (precision, recall)
    return rows


# --------------------------------------------------------------------------
# Figure 10c — recall loss from post-creation inserts
# --------------------------------------------------------------------------


def run_fig10c(
    *,
    n_peers: int = 20,
    n_objects: int = 60,
    views_per_object: int = 20,
    n_bins: int = 64,
    n_clusters: int = 10,
    new_fraction_steps: tuple[float, ...] = (0.0, 0.15, 0.30, 0.45),
    radii: tuple[float, ...] = (0.12, 0.16),
    n_queries: int = 12,
    max_peers: int = 6,
    levels_used: int = 4,
    republish: str = "none",
    rng=None,
) -> list[RecallSeries]:
    """Recall (vs the *growing* ground truth) as unpublished items arrive.

    ``new_fraction_steps`` are fractions of the *published* corpus added
    post-hoc to random peers without republishing (the paper inserts up to
    3,600 new items over 8,400 existing — 45% — and loses ≤ ~33% recall).
    The x of each series point is the cumulative new fraction.

    ``republish`` selects the staleness remedy applied after each insert
    step: ``"none"`` (the paper's scenario — summaries go stale),
    ``"delta"`` (each mutated peer runs one epoch-delta round, the cheap
    remedy this reproduction adds), or ``"full"`` (every mutated peer
    withdraws and republishes from scratch — the expensive baseline).
    With either remedy the recall series should stay flat instead of
    degrading.
    """
    if republish not in ("none", "delta", "full"):
        raise ValueError(
            f"republish must be 'none', 'delta' or 'full', got {republish!r}"
        )
    generator = ensure_rng(rng)
    build_rng, insert_rng, query_rng = spawn_rngs(generator, 3)
    config = HyperMConfig(levels_used=levels_used, n_clusters=n_clusters)
    max_fraction = max(new_fraction_steps)
    holdout_fraction = max_fraction / (1.0 + max_fraction)
    workload = build_histogram_network(
        n_peers=n_peers,
        n_objects=n_objects,
        views_per_object=views_per_object,
        n_bins=n_bins,
        config=config,
        rng=build_rng,
        holdout_fraction=holdout_fraction,
    )
    network = workload.network
    published = workload.ground_truth.n_items
    queries = sample_queries(workload.ground_truth.data, n_queries, rng=query_rng)

    rows = []
    added = 0
    for fraction in sorted(new_fraction_steps):
        target = int(round(fraction * published))
        if target > added:
            added += insert_post_hoc(workload, target - added, rng=insert_rng)
        if republish != "none" and workload.dirty_peers:
            for peer_id in sorted(workload.dirty_peers):
                network.republish_peer(peer_id, full=republish == "full")
            workload.dirty_peers.clear()
        recalls = []
        for query in queries:
            for radius in radii:
                truth = workload.ground_truth.range_search(query, radius)
                if not truth:
                    continue
                result = network.range_query(query, radius, max_peers=max_peers)
                recalls.append(precision_recall(result.item_ids, truth).recall)
        rows.append(_series(fraction, recalls or [0.0]))
    return rows
