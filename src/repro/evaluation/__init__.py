"""Experiment harness: one runner per paper figure/table.

Modules
-------
* :mod:`repro.evaluation.metrics` — precision/recall/F1 and distribution
  statistics (Gini, participation).
* :mod:`repro.evaluation.workloads` — standard network/dataset/query
  builders shared by experiments and benchmarks.
* :mod:`repro.evaluation.dissemination` — §5 speed experiments
  (Figures 8a, 8b, 8c) and the Figure 9 distribution study.
* :mod:`repro.evaluation.effectiveness` — §6 retrieval experiments
  (Figures 10a, 10b, 10c and the C-knob table).
* :mod:`repro.evaluation.quality` — the Figure 11 clustering-quality study.
* :mod:`repro.evaluation.resilience` — recall under message loss and
  abrupt peer crashes (the :mod:`repro.faults` evaluation scenario).
* :mod:`repro.evaluation.serving` — batched serving-tier throughput and
  open-loop latency (the ``repro serve-bench`` runner).
* :mod:`repro.evaluation.reporting` — paper-style series/table rendering.
"""

from repro.evaluation.metrics import (
    PrecisionRecall,
    f1_score,
    gini_coefficient,
    precision_recall,
)
from repro.evaluation.resilience import FaultRecallRow, run_fault_recall
from repro.evaluation.serving import run_serve_bench
from repro.evaluation.workloads import (
    HistogramWorkload,
    MarkovWorkload,
    build_histogram_network,
    build_markov_network,
    sample_queries,
)

__all__ = [
    "PrecisionRecall",
    "precision_recall",
    "f1_score",
    "gini_coefficient",
    "HistogramWorkload",
    "MarkovWorkload",
    "build_histogram_network",
    "build_markov_network",
    "sample_queries",
    "FaultRecallRow",
    "run_fault_recall",
    "run_serve_bench",
]
