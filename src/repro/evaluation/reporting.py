"""Render experiment rows (and metrics snapshots) as paper-style tables."""

from __future__ import annotations

from dataclasses import fields, is_dataclass

from repro.utils.tables import format_table


def rows_to_table(rows, *, title: str | None = None, precision: int = 3) -> str:
    """Format a list of (same-type) dataclass rows as an ASCII table."""
    if not rows:
        return title or "(no rows)"
    first = rows[0]
    if not is_dataclass(first):
        raise TypeError("rows_to_table expects dataclass instances")
    names = [f.name for f in fields(first)]
    body = [[getattr(row, name) for name in names] for row in rows]
    return format_table(names, body, title=title, precision=precision)


def series_to_table(
    series_by_label: dict, *, x_name: str = "x", title: str | None = None,
    precision: int = 3,
) -> str:
    """Format ``{label: [RecallSeries]}`` as one table, mean (min–max)."""
    labels = list(series_by_label)
    if not labels:
        return title or "(no series)"
    xs = [point.x for point in series_by_label[labels[0]]]
    headers = [x_name] + [str(label) for label in labels]
    rows = []
    for i, x in enumerate(xs):
        cells = [x]
        for label in labels:
            point = series_by_label[label][i]
            cells.append(
                f"{point.mean:.{precision}f} "
                f"({point.min:.{precision}f}-{point.max:.{precision}f})"
            )
        rows.append(cells)
    return format_table(headers, rows, title=title, precision=precision)


def metrics_to_table(
    snapshot: dict, *, title: str | None = None, precision: int = 3
) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as one ASCII table.

    Counters and gauges fill the ``value`` column; histograms additionally
    report count/mean/max. Row order follows the snapshot's (already
    sorted) key order, so report diffs are stable.
    """
    rows = []
    for key, value in snapshot.get("counters", {}).items():
        rows.append([key, "counter", value, "", "", ""])
    for key, value in snapshot.get("gauges", {}).items():
        rows.append([key, "gauge", value, "", "", ""])
    for key, hist in snapshot.get("histograms", {}).items():
        rows.append([
            key, "histogram", hist["total"], hist["count"],
            hist["mean"], hist["max"],
        ])
    if not rows:
        return (title or "metrics") + ": (no metrics recorded)"
    headers = ["metric", "type", "value", "count", "mean", "max"]
    return format_table(headers, rows, title=title, precision=precision)
