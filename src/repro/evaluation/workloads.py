"""Standard workload builders shared by experiments and benchmarks.

The defaults are scaled-down (seconds, not hours) versions of the paper's
configurations; every knob accepts the full paper-scale values:

* §5 dissemination — 100 nodes, 1,000 Markov items each, 512-d;
* §6 effectiveness — 50 nodes, ~200 ALOI histograms each.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.baselines import CentralizedIndex
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.datasets.histograms import generate_histograms
from repro.datasets.markov import generate_markov_vectors
from repro.datasets.partition import partition_among_peers
from repro.exceptions import ValidationError
from repro.utils.rng import ensure_rng, spawn_rngs


@dataclass
class MarkovWorkload:
    """A built §5-style network plus its raw data."""

    network: HyperMNetwork
    data: np.ndarray
    item_ids: np.ndarray
    parts: list


@dataclass
class HistogramWorkload:
    """A built §6-style network plus its data, labels and ground truth."""

    network: HyperMNetwork
    data: np.ndarray
    labels: np.ndarray
    item_ids: np.ndarray
    ground_truth: CentralizedIndex
    parts: list = field(default_factory=list)
    #: Peers mutated since their last publication (maintained by
    #: :func:`insert_post_hoc`; consumed by republish-enabled experiments).
    dirty_peers: set = field(default_factory=set)


def build_markov_network(
    *,
    n_peers: int = 20,
    items_per_peer: int = 100,
    dimensionality: int = 64,
    config: HyperMConfig | None = None,
    rng=None,
    publish: bool = True,
    overlay_factory=None,
) -> tuple[MarkovWorkload, object]:
    """Build and publish a Markov-data Hyper-M network.

    Returns ``(workload, dissemination_report)``; the report is ``None``
    when ``publish`` is false. ``overlay_factory`` selects the overlay
    backend (default: the ambient ``--overlay`` choice, else CAN).
    """
    generator = ensure_rng(rng)
    data_rng, part_rng, net_rng = spawn_rngs(generator, 3)
    n_items = n_peers * items_per_peer
    data = generate_markov_vectors(n_items, dimensionality, rng=data_rng)
    item_ids = np.arange(n_items, dtype=np.int64)
    parts = partition_among_peers(
        data,
        n_peers,
        clusters_per_peer=(config or HyperMConfig()).n_clusters,
        item_ids=item_ids,
        rng=part_rng,
    )
    network = HyperMNetwork(
        dimensionality, config, rng=net_rng, overlay_factory=overlay_factory
    )
    for peer_data, peer_ids in parts:
        network.add_peer(peer_data, peer_ids)
    report = network.publish_all() if publish else None
    workload = MarkovWorkload(
        network=network, data=data, item_ids=item_ids, parts=parts
    )
    return workload, report


def build_histogram_network(
    *,
    n_peers: int = 20,
    n_objects: int = 120,
    views_per_object: int = 12,
    n_bins: int = 64,
    config: HyperMConfig | None = None,
    rng=None,
    publish: bool = True,
    holdout_fraction: float = 0.0,
    overlay_factory=None,
) -> HistogramWorkload:
    """Build and publish an ALOI-style histogram network.

    ``holdout_fraction`` reserves that fraction of items *outside* the
    network for the Figure 10c staleness experiment (they are inserted
    post-hoc via :func:`insert_post_hoc`); held-out rows are the workload's
    ``parts[-1]`` equivalent, returned on the workload as extra fields.
    """
    if not 0.0 <= holdout_fraction < 1.0:
        raise ValidationError(
            f"holdout_fraction must be in [0, 1), got {holdout_fraction}"
        )
    generator = ensure_rng(rng)
    data_rng, part_rng, net_rng, holdout_rng = spawn_rngs(generator, 4)
    dataset = generate_histograms(
        n_objects, views_per_object, n_bins, rng=data_rng
    )
    n_items = dataset.n_items
    item_ids = np.arange(n_items, dtype=np.int64)

    holdout = int(round(holdout_fraction * n_items))
    order = holdout_rng.permutation(n_items)
    held_idx, used_idx = order[:holdout], order[holdout:]

    parts = partition_among_peers(
        dataset.data[used_idx],
        n_peers,
        clusters_per_peer=(config or HyperMConfig()).n_clusters,
        item_ids=item_ids[used_idx],
        rng=part_rng,
    )
    network = HyperMNetwork(
        n_bins, config, rng=net_rng, overlay_factory=overlay_factory
    )
    for peer_data, peer_ids in parts:
        network.add_peer(peer_data, peer_ids)
    if publish:
        network.publish_all()
    workload = HistogramWorkload(
        network=network,
        data=dataset.data,
        labels=dataset.labels,
        item_ids=item_ids,
        ground_truth=CentralizedIndex(
            dataset.data[used_idx], item_ids[used_idx]
        ),
        parts=parts,
    )
    workload.held_out_data = dataset.data[held_idx]
    workload.held_out_ids = item_ids[held_idx]
    return workload


def insert_post_hoc(
    workload: HistogramWorkload, count: int, *, rng=None
) -> int:
    """Distribute ``count`` held-out items to random peers *unpublished*.

    Models documents arriving after overlay creation (Figure 10c). Updates
    the workload's ground truth to include them (queries should find them;
    the published index does not know them) and records the receiving
    peers in ``workload.dirty_peers`` so republish-enabled experiments can
    run a delta round over exactly the mutated peers. Returns how many
    were added.
    """
    generator = ensure_rng(rng)
    available = workload.held_out_data.shape[0]
    count = min(count, available)
    if count == 0:
        return 0
    network = workload.network
    peer_ids = list(network.peers)
    for i in range(count):
        peer = network.peers[int(generator.choice(peer_ids))]
        peer.add_items(
            workload.held_out_data[i : i + 1], workload.held_out_ids[i : i + 1]
        )
        workload.dirty_peers.add(peer.peer_id)
    workload.held_out_data = workload.held_out_data[count:]
    workload.held_out_ids = workload.held_out_ids[count:]
    workload.ground_truth = CentralizedIndex.from_network(network)
    return count


def sample_queries(
    data: np.ndarray, n_queries: int, *, rng=None, jitter: float = 0.0
) -> np.ndarray:
    """Draw query vectors from the dataset (optionally jittered).

    Sampling real items as queries matches the paper's methodology (find
    things similar to something you have).
    """
    if n_queries < 1:
        raise ValidationError(f"n_queries must be >= 1, got {n_queries}")
    generator = ensure_rng(rng)
    idx = generator.integers(0, data.shape[0], size=n_queries)
    queries = np.array(data[idx], dtype=np.float64)
    if jitter > 0:
        queries = queries + generator.normal(0.0, jitter, size=queries.shape)
        queries = np.clip(queries, 0.0, 1.0)
    return queries
