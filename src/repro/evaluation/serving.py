"""Serving-tier throughput and latency: the ``repro serve-bench`` runner.

Three arms over one published Markov-corpus network:

* **Sequential** — the baseline query plane:
  :func:`repro.core.queries.range_query` once per request, each paying
  its own per-level overlay walk and BLAS pass.
* **Batched** — the same request stream through
  :meth:`repro.serve.ServeEngine.execute_batch` in fixed-size batches:
  one stacked intersection GEMM per level per batch, generation-keyed
  candidate/translation caches, query-log mining. Measured twice: a
  *steady-state* arm (warm engine on a Zipf-skewed hot stream — the
  serving tier as deployed) and a *cold* arm (fresh engine, distinct
  queries — pure batching with every cache missing).
* **Open loop** — the async engine under an arrival schedule at a fixed
  fraction of measured capacity (:func:`repro.serve.run_open_loop`),
  yielding QPS and coordinated-omission-free p50/p99 latency.

Result parity between the arms is asserted here (identical item sets),
and property-tested at 1e-9 in ``tests/test_serve_batch.py`` — the
speedups are pure execution strategy, never a different answer.
"""

from __future__ import annotations

import gc

import numpy as np

from repro.core.network import HyperMConfig
from repro.evaluation.workloads import build_markov_network, sample_queries
from repro.exceptions import ValidationError
from repro.obs import registry as obs_registry
from repro.serve import RangeRequest, ServeConfig, ServeEngine, run_open_loop


def _build(cfg: dict):
    workload, __ = build_markov_network(
        n_peers=cfg["n_peers"],
        items_per_peer=cfg["items_per_peer"],
        dimensionality=cfg["dimensionality"],
        config=HyperMConfig(
            levels_used=cfg["levels_used"], n_clusters=cfg["n_clusters"]
        ),
        rng=cfg["seed"],
        publish=True,
    )
    return workload


def _query_streams(workload, cfg: dict):
    """(distinct queries, Zipf-skewed hot stream over them)."""
    rng = np.random.default_rng(cfg["seed"] + 11)
    distinct = sample_queries(workload.data, cfg["n_distinct"], rng=rng)
    weights = 1.0 / np.arange(1, cfg["n_distinct"] + 1, dtype=np.float64)
    weights /= weights.sum()
    picks = rng.choice(cfg["n_distinct"], size=cfg["n_queries"], p=weights)
    return distinct, distinct[picks]


def _requests(queries, cfg: dict) -> list[RangeRequest]:
    return [
        RangeRequest(
            query=query, epsilon=cfg["epsilon"], max_peers=cfg["max_peers"]
        )
        for query in queries
    ]


def _timed(body, clock=None) -> float:
    """Wall-time one arm, GC-quiesced, on the ambient metrics clock.

    The clock comes from the injectable-clock idiom
    (:class:`repro.obs.registry.MetricsRegistry`, same as ``obs.trace``
    and ``obs.flight``): ``metrics().clock`` is ``time.perf_counter``
    in production and a fake in tests, making bench timings — and the
    speedup ratios built from them — deterministic under test.
    """
    if clock is None:
        clock = obs_registry.metrics().clock
    gc.collect()
    gc.disable()
    try:
        start = clock()
        body()
        return clock() - start
    finally:
        gc.enable()


def _run_batches(engine: ServeEngine, requests, batch_size: int):
    results = []
    for start in range(0, len(requests), batch_size):
        results.extend(
            engine.execute_batch(requests[start:start + batch_size])
        )
    return results


def run_serve_bench(
    n_peers: int = 20,
    items_per_peer: int = 100,
    dimensionality: int = 64,
    n_clusters: int = 6,
    levels_used: int = 3,
    seed: int = 3,
    n_distinct: int = 24,
    n_queries: int = 96,
    epsilon: float = 0.25,
    max_peers: int = 3,
    batch_size: int = 16,
    repeats: int = 3,
    load_fraction: float = 0.8,
    serve_config: ServeConfig | None = None,
) -> dict:
    """Run the three serving arms; returns the JSON-safe report.

    ``load_fraction`` sets the open-loop offered rate as a fraction of
    the measured steady-state capacity, so the latency run exercises a
    busy-but-stable engine on any machine.
    """
    if batch_size < 1:
        raise ValidationError(f"batch_size must be >= 1, got {batch_size}")
    if repeats < 1:
        raise ValidationError(f"repeats must be >= 1, got {repeats}")
    cfg = {
        "n_peers": n_peers, "items_per_peer": items_per_peer,
        "dimensionality": dimensionality, "n_clusters": n_clusters,
        "levels_used": levels_used, "seed": seed,
        "n_distinct": n_distinct, "n_queries": n_queries,
        "epsilon": epsilon, "max_peers": max_peers,
    }
    workload = _build(cfg)
    network = workload.network
    distinct, hot_stream = _query_streams(workload, cfg)
    hot_requests = _requests(hot_stream, cfg)
    distinct_requests = _requests(distinct, cfg)
    base_serve = serve_config or ServeConfig()

    # Steady-state engine: caches warm across repeats (that *is* the
    # tier's deployed state); parity asserted on the first pass.
    engine = ServeEngine(network, base_serve)
    batched_results = _run_batches(engine, hot_requests, batch_size)
    sequential_results = [
        network.range_query(
            request.query, request.epsilon, max_peers=request.max_peers
        )
        for request in hot_requests
    ]
    for served, sequential in zip(batched_results, sequential_results):
        served_ids = sorted(item.item_id for item in served.items)
        sequential_ids = sorted(item.item_id for item in sequential.items)
        if served_ids != sequential_ids:
            raise ValidationError(
                "batched and sequential arms disagree on result items"
            )

    # Pairwise timing, alternating order, minimum ratio (conservative):
    # adjacent runs share the machine's load regime, so the cleanest
    # pair gives the honest speedup.
    speedups, cold_speedups = [], []
    seq_s, batched_s, cold_seq_s, cold_batched_s = [], [], [], []
    for repeat in range(repeats):
        sequential_first = repeat % 2 == 0
        pair = {}
        for arm in ((0, 1) if sequential_first else (1, 0)):
            if arm == 0:
                pair["seq"] = _timed(lambda: [
                    network.range_query(
                        r.query, r.epsilon, max_peers=r.max_peers
                    )
                    for r in hot_requests
                ])
            else:
                pair["batched"] = _timed(
                    lambda: _run_batches(engine, hot_requests, batch_size)
                )
        cold_engine = ServeEngine(
            network,
            ServeConfig(
                max_queue=base_serve.max_queue,
                max_inflight=base_serve.max_inflight,
                max_batch=base_serve.max_batch,
                batch_window=base_serve.batch_window,
                mine_queries=False,
            ),
        )
        pair["cold_seq"] = _timed(lambda: [
            network.range_query(r.query, r.epsilon, max_peers=r.max_peers)
            for r in distinct_requests
        ])
        pair["cold_batched"] = _timed(
            lambda: _run_batches(cold_engine, distinct_requests, batch_size)
        )
        seq_s.append(pair["seq"])
        batched_s.append(pair["batched"])
        cold_seq_s.append(pair["cold_seq"])
        cold_batched_s.append(pair["cold_batched"])
        speedups.append(pair["seq"] / pair["batched"])
        cold_speedups.append(pair["cold_seq"] / pair["cold_batched"])

    # Open-loop latency at a fixed fraction of measured capacity.
    capacity_qps = len(hot_requests) / min(batched_s)
    offered = max(load_fraction * capacity_qps, 1.0)
    load_engine = ServeEngine(network, base_serve)
    load_report = run_open_loop(load_engine, hot_requests, rate=offered)

    snapshot = engine.snapshot()
    return {
        "benchmark": "query_serve",
        **cfg,
        "batch_size": batch_size,
        "repeats": repeats,
        "speedup": min(speedups),
        "cold_speedup": min(cold_speedups),
        "sequential_s": min(seq_s),
        "batched_s": min(batched_s),
        "cold_sequential_s": min(cold_seq_s),
        "cold_batched_s": min(cold_batched_s),
        "sequential_qps": len(hot_requests) / min(seq_s),
        "batched_qps": capacity_qps,
        "load": load_report.to_dict(),
        "engine": {
            "batches": snapshot["batches"],
            "served": snapshot["served"],
            "prewarmed": snapshot["prewarmed"],
            "candidate_cache": snapshot["candidate_cache"],
            "translation_cache": snapshot["translation_cache"],
        },
        "hot_regions": snapshot.get("miner", {}).get("hot_regions", []),
    }
