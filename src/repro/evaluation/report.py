"""The fused run report: metrics + traces + loadmap + benches in one place.

``repro report`` runs one fig8-style workload — build a Markov network,
publish every peer, issue a batch of range queries — with the **full**
observability plane enabled (metrics registry, span tracing, flight
recording), then fuses every signal into a single JSON document:

* ``meta`` — command line, seed, scale knobs, fault plan;
* ``stats`` — :meth:`repro.core.network.HyperMNetwork.stats`;
* ``metrics`` — registry snapshot plus the fabric's per-kind counters;
* ``energy`` — the :class:`repro.net.energy.EnergyLedger` snapshot;
* ``loadmap`` — :func:`repro.obs.loadmap.build_loadmap` (per-zone /
  per-peer rows, hotspot top-k, Gini/max-mean skew);
* ``operations`` — per-op hop/byte histograms from the flight recorder;
* ``flight`` — ring-buffer health (edges kept/evicted, sampling rate);
* ``phases`` — the span-tree flame rows (self vs total time);
* ``resources`` — peak RSS via :func:`repro.obs.rss.rss_snapshot`;
* ``bench`` — any ``BENCH_*.json`` files found in ``--bench-dir``.

The document validates against :func:`repro.obs.schema.check_report`,
and :func:`render_markdown` renders the human-readable twin.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.evaluation.workloads import build_markov_network
from repro.obs.flight import FlightRecorder, flight_recording
from repro.obs.loadmap import build_loadmap
from repro.obs.profile import phase_rows
from repro.obs.registry import metrics_scope
from repro.obs.rss import rss_snapshot
from repro.obs.trace import TraceRecorder, tracing
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table


def collect_bench_reports(bench_dir) -> dict:
    """Load every ``BENCH_*.json`` in ``bench_dir`` keyed by bench name."""
    out: dict = {}
    root = Path(bench_dir)
    if not root.is_dir():
        return out
    for path in sorted(root.glob("BENCH_*.json")):
        name = path.stem[len("BENCH_"):]
        try:
            with open(path) as handle:
                out[name] = json.load(handle)
        except (OSError, json.JSONDecodeError):
            out[name] = {"error": f"unreadable bench report: {path.name}"}
    return out


def run_report(
    *,
    n_peers: int = 15,
    items_per_peer: int = 100,
    dimensionality: int = 64,
    n_queries: int = 8,
    epsilon: float = 0.5,
    rng=None,
    seed: int = 0,
    top_k: int = 10,
    flight_capacity: int = 200_000,
    bench_dir=None,
    trace_out=None,
    flight_out=None,
) -> dict:
    """Run the instrumented fig8-style workload; returns the fused report.

    ``trace_out``/``flight_out``, when given, also export the raw span
    and flight JSONL artefacts next to the report (the files CI archives
    and schema-checks).
    """
    generator = ensure_rng(seed if rng is None else rng)
    recorder = TraceRecorder()
    flight = FlightRecorder(capacity=flight_capacity)
    with metrics_scope() as registry, tracing(recorder), \
            flight_recording(flight):
        workload, dissemination = build_markov_network(
            n_peers=n_peers,
            items_per_peer=items_per_peer,
            dimensionality=dimensionality,
            rng=generator,
        )
        network = workload.network
        query_rows = generator.integers(
            0, len(workload.data), size=max(n_queries, 0)
        )
        for row in query_rows:
            network.range_query(
                np.asarray(workload.data[int(row)]), epsilon
            )
        stats = network.stats()
        loadmap = build_loadmap(network, top_k=top_k)
    report = {
        "meta": {
            "command": "report",
            "generated_by": "repro report",
            "seed": seed,
            "n_peers": n_peers,
            "items_per_peer": items_per_peer,
            "dimensionality": dimensionality,
            "n_queries": int(n_queries),
            "epsilon": float(epsilon),
            "items_published": (
                dissemination.items_published if dissemination else 0
            ),
        },
        "stats": stats,
        "metrics": {
            "registry": registry.snapshot(),
            "fabric": network.fabric.metrics.snapshot(),
        },
        "energy": network.fabric.energy.snapshot(),
        "loadmap": loadmap,
        "operations": flight.per_op_histograms(),
        "flight": flight.snapshot(),
        "phases": phase_rows(recorder.spans),
        "resources": rss_snapshot(),
    }
    if bench_dir is not None:
        report["bench"] = collect_bench_reports(bench_dir)
    if trace_out is not None:
        recorder.write_jsonl(trace_out)
    if flight_out is not None:
        flight.write_jsonl(flight_out)
    return report


def _hotspot_rows(loadmap: dict) -> list[list]:
    return [
        [
            row["level"], row["node"],
            "-" if row["peer"] is None else row["peer"],
            row["bytes"], row["store_rows"], row["query_hits"],
        ]
        for row in loadmap["hotspots"]["zones"]
    ]


def render_markdown(report: dict) -> str:
    """Human-readable twin of the fused report (Markdown-ish tables)."""
    meta = report["meta"]
    lines = [
        "# Hyper-M run report",
        "",
        f"- peers: {meta['n_peers']} × {meta['items_per_peer']} items, "
        f"{meta['dimensionality']}-d, seed {meta['seed']}",
        f"- queries: {meta['n_queries']} range queries at "
        f"epsilon {meta['epsilon']}",
        "",
    ]
    fabric = report["stats"]["fabric"]
    lines.append(format_table(
        ["metric", "value"],
        [
            ["messages", fabric["messages"]],
            ["hops", fabric["hops"]],
            ["bytes", fabric["bytes"]],
            ["retransmits", fabric["retransmits"]],
            ["duplicates", fabric["duplicates"]],
            ["energy (µJ)", f"{fabric['energy']:.0f}"],
            ["energy max/mean", f"{report['energy']['max_over_mean']:.2f}"],
            ["peak RSS (MiB)", report.get("resources", {}).get(
                "peak_rss_mb", "-")],
        ],
        title="fabric totals",
    ))
    lines.append("")
    op_rows = [
        [
            kind, row["ops"], f"{row['hops']['mean']:.1f}",
            int(row["hops"]["max"]), f"{row['bytes']['mean']:.0f}",
            row["drops"], row["retransmits"], row["duplicates"],
        ]
        for kind, row in report["operations"].items()
    ]
    lines.append(format_table(
        [
            "operation", "ops", "hops/op", "max", "bytes/op",
            "drops", "retx", "dup",
        ],
        op_rows,
        title="per-operation routing cost (flight recorder)",
    ))
    lines.append("")
    skew = report["loadmap"]["skew"]
    lines.append(format_table(
        ["dimension", "gini", "max/mean"],
        [
            [name, f"{block['gini']:.3f}", f"{block['max_over_mean']:.2f}"]
            for name, block in skew.items()
        ],
        title="load skew",
    ))
    lines.append("")
    lines.append(format_table(
        ["level", "node", "peer", "bytes", "rows", "query hits"],
        _hotspot_rows(report["loadmap"]),
        title=f"hottest zones (top {len(report['loadmap']['hotspots']['zones'])})",
    ))
    phases = report.get("phases") or []
    if phases:
        lines.append("")
        phase_table_rows = [
            [
                row["phase"], row["calls"],
                f"{row['total_s']:.3f}", f"{row['self_s']:.3f}",
            ]
            for row in phases[:12]
        ]
        lines.append(format_table(
            ["phase", "count", "total s", "self s"],
            phase_table_rows,
            title="phase flame (top rows)",
        ))
    bench = report.get("bench") or {}
    if bench:
        lines.append("")
        lines.append(format_table(
            ["bench", "fields"],
            [[name, len(doc)] for name, doc in sorted(bench.items())],
            title="fused bench reports",
        ))
    return "\n".join(lines)
