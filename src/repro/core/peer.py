"""A Hyper-M peer: local items, summaries, and direct-retrieval handlers."""

from __future__ import annotations

import numpy as np

from repro.clustering.incremental import (
    EpochClusterState,
    LevelDelta,
    SummaryDelta,
)
from repro.clustering.summaries import PeerSummary, summarize_peer_data
from repro.core.results import RetrievedItem, distances_to_query
from repro.exceptions import ValidationError
from repro.utils.validation import check_matrix, check_unit_cube, check_vector


class HyperMPeer:
    """One participant: owns items, publishes summaries, serves retrievals.

    Parameters
    ----------
    peer_id:
        Network-unique identifier.
    data:
        ``(n, d)`` item matrix, ``d`` a power of two, coordinates in the
        unit cube.
    item_ids:
        Global item identifiers (defaults to ``range(n)``; must be unique
        across the network for meaningful precision/recall).
    """

    def __init__(
        self,
        peer_id: int,
        data: np.ndarray,
        item_ids: np.ndarray | None = None,
    ):
        data = check_unit_cube(check_matrix(data, "data"), "data")
        if item_ids is None:
            item_ids = np.arange(data.shape[0], dtype=np.int64)
        item_ids = np.asarray(item_ids, dtype=np.int64)
        if item_ids.shape[0] != data.shape[0]:
            raise ValidationError(
                f"item_ids has {item_ids.shape[0]} entries for "
                f"{data.shape[0]} items"
            )
        self.peer_id = int(peer_id)
        self.data = data
        self.item_ids = item_ids
        self.summary: PeerSummary | None = None
        #: Items added after publication (Figure 10c staleness experiments):
        #: visible to direct retrieval, invisible to the published index.
        self.unpublished_from = data.shape[0]
        #: Publication epoch: bumps whenever a publish round actually
        #: changed the peer's published state (delta or full).
        self.epoch = 0
        #: Live incremental clustering of the published prefix (None until
        #: the first publication); drives the epoch/delta publish path.
        self.epoch_state: EpochClusterState | None = None
        #: MANET churn: an offline peer's published summaries linger in the
        #: overlays, but direct retrieval from it fails.
        self.online = True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "online" if self.online else "offline"
        published = self.unpublished_from
        return (
            f"HyperMPeer(id={self.peer_id}, items={self.n_items}, "
            f"published={published}, {state})"
        )

    # -- summaries -----------------------------------------------------------

    @property
    def n_items(self) -> int:
        """Number of items currently held (published + post-hoc)."""
        return int(self.data.shape[0])

    @property
    def dimensionality(self) -> int:
        """Item dimensionality."""
        return int(self.data.shape[1])

    def build_summary(
        self, *, n_clusters: int, levels_used: int, rng=None, n_init: int = 1
    ) -> PeerSummary:
        """Decompose + cluster the peer's *published* items (steps i1–i2)."""
        published = self.data[: self.unpublished_from]
        if published.shape[0] == 0:
            raise ValidationError(f"peer {self.peer_id} has no items to summarise")
        self.summary = summarize_peer_data(
            published,
            n_clusters=n_clusters,
            levels_used=levels_used,
            rng=rng,
            n_init=n_init,
        )
        return self.summary

    def adopt_full_summary(self, summary: PeerSummary) -> None:
        """Reset epoch bookkeeping around a freshly built *full* summary.

        Called after a full clustering round (first publication, forced
        republish, restored summary): the incremental epoch state restarts
        from this summary, continuing the per-level sid numbering so
        sphere ids never collide across epochs. A summary whose labels do
        not cover the published prefix (e.g. restored from a foreign
        snapshot) leaves ``epoch_state`` unset — the next delta round
        simply bootstraps with a full re-clustering.
        """
        self.summary = summary
        sid_start = self.epoch_state.sid_high if self.epoch_state else 0
        try:
            state = EpochClusterState(summary, sid_start=sid_start)
        except (ValidationError, KeyError):
            state = None
        if state is not None and state.n_published != self.unpublished_from:
            state = None
        self.epoch_state = state
        self.epoch += 1

    def build_delta(
        self,
        *,
        n_clusters: int,
        levels_used: int,
        rng=None,
        n_init: int = 1,
        force_full: bool = False,
    ) -> SummaryDelta:
        """Fold every pending mutation into the clustering; return the diff.

        Advances the publication horizon over all currently held items.
        The first call (or one after epoch bookkeeping was lost) runs a
        full clustering and returns a degenerate insert-everything delta;
        later calls return the incremental diff maintained by
        :class:`repro.clustering.incremental.EpochClusterState`, falling
        back to a full re-clustering past the drift threshold or when
        ``force_full`` is set.
        """
        horizon = self.n_items
        if horizon == 0:
            raise ValidationError(
                f"peer {self.peer_id} has no items to summarise"
            )
        state = self.epoch_state
        if (
            state is None
            or len(state.levels) != levels_used
            or state.dimensionality != self.dimensionality
        ):
            self.unpublished_from = horizon
            summary = summarize_peer_data(
                self.data,
                n_clusters=n_clusters,
                levels_used=levels_used,
                rng=rng,
                n_init=n_init,
            )
            self.adopt_full_summary(summary)
            state = self.epoch_state
            per_level = {
                level: LevelDelta(
                    updated={},
                    inserted=dict(state.spheres[level]),
                    removed=(),
                )
                for level in state.levels
            }
            return SummaryDelta(
                dimensionality=self.dimensionality,
                levels=state.levels,
                per_level=per_level,
                full=True,
                items_covered=horizon,
                items_added=horizon,
                items_removed=0,
            )
        delta = state.build_delta(
            self.data[:horizon],
            self.unpublished_from,
            n_clusters=n_clusters,
            rng=rng,
            n_init=n_init,
            force_full=force_full,
        )
        self.summary = state.to_summary()
        self.unpublished_from = horizon
        if not delta.is_empty:
            self.epoch += 1
        return delta

    def add_items(
        self, new_data: np.ndarray, new_ids: np.ndarray
    ) -> None:
        """Append items *without republishing* (post-creation inserts).

        Models the paper's Figure 10c scenario: during the network's short
        lifetime new items arrive after the overlay is built; summaries go
        stale and recall degrades for those items. Rejects item ids the
        peer already holds — a silent duplicate would double-count the
        item in precision/recall accounting.
        """
        new_data = check_unit_cube(
            check_matrix(new_data, "new_data", dim=self.dimensionality), "new_data"
        )
        new_ids = np.asarray(new_ids, dtype=np.int64)
        if new_ids.shape[0] != new_data.shape[0]:
            raise ValidationError("new_ids length does not match new_data rows")
        if np.unique(new_ids).shape[0] != new_ids.shape[0]:
            raise ValidationError("new_ids contains duplicate item ids")
        collisions = np.intersect1d(new_ids, self.item_ids)
        if collisions.size:
            raise ValidationError(
                f"peer {self.peer_id} already holds item id(s) "
                f"{collisions[:5].tolist()}"
            )
        self.data = np.vstack([self.data, new_data])
        self.item_ids = np.concatenate([self.item_ids, new_ids])

    def remove_items(self, item_ids) -> int:
        """Drop held items by id; returns how many were removed.

        Removals of *published* items are recorded in the epoch state so
        the next delta publication round shrinks (or retires) the spheres
        that summarised them; unpublished items simply vanish. Unknown
        ids raise.
        """
        ids = np.unique(np.asarray(item_ids, dtype=np.int64))
        if ids.size == 0:
            return 0
        positions = np.flatnonzero(np.isin(self.item_ids, ids))
        if positions.size != ids.size:
            missing = np.setdiff1d(ids, self.item_ids[positions])
            raise ValidationError(
                f"peer {self.peer_id} does not hold item id(s) "
                f"{missing[:5].tolist()}"
            )
        published = positions[positions < self.unpublished_from]
        if self.epoch_state is not None and published.size:
            self.epoch_state.note_removals(published)
        self.data = np.delete(self.data, positions, axis=0)
        self.item_ids = np.delete(self.item_ids, positions)
        self.unpublished_from -= int(published.size)
        return int(positions.size)

    # -- direct retrieval (query phase s3) -------------------------------------

    def range_search(self, query: np.ndarray, radius: float) -> list[RetrievedItem]:
        """Exact local range search over *all* held items.

        This is the second query phase: once a peer is contacted directly,
        it filters with the original query, which is why Hyper-M's range
        precision is 100%.
        """
        query = check_vector(query, "query", dim=self.dimensionality)
        dists = distances_to_query(self.data, query)
        hits = np.flatnonzero(dists <= radius + 1e-12)
        return [
            RetrievedItem(
                item_id=int(self.item_ids[i]),
                peer_id=self.peer_id,
                distance=float(dists[i]),
            )
            for i in hits
        ]

    def nearest_items(self, query: np.ndarray, count: int) -> list[RetrievedItem]:
        """The peer's ``count`` closest items to ``query`` (Figure 5 step 9)."""
        query = check_vector(query, "query", dim=self.dimensionality)
        if count <= 0:
            return []
        dists = distances_to_query(self.data, query)
        count = min(count, dists.shape[0])
        order = np.argpartition(dists, count - 1)[:count]
        order = order[np.argsort(dists[order])]
        return [
            RetrievedItem(
                item_id=int(self.item_ids[i]),
                peer_id=self.peer_id,
                distance=float(dists[i]),
            )
            for i in order
        ]
