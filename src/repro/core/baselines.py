"""Baselines the paper compares against.

* :class:`NaiveCANPublisher` — conventional CAN usage: every individual
  item is routed into an overlay whose key space is the item's original
  space (512-d in the paper's tests). This is the "CAN" series in
  Figures 8b/8c.
* :class:`TwoDimCANPublisher` — the paper's illustrative 2-d CAN that
  indexes only two of the item's coordinates ("though it cannot be used to
  retrieve meaningful data, it shows the magnitude of the performance
  gap").
* :class:`CentralizedIndex` — the exact flat-file index used as ground
  truth for precision/recall in Section 6.
"""

from __future__ import annotations

import numpy as np

from repro.core.results import RetrievedItem, distances_to_query
from repro.exceptions import ValidationError
from repro.net.network import Network
from repro.overlay.can import CANNetwork
from repro.utils.validation import check_matrix, check_unit_cube, check_vector


class ItemCANPublisher:
    """Publish raw items into a CAN keyed on their first ``key_dims`` coords.

    The general machinery behind both paper baselines: per-item greedy
    insertion, no summarisation, optional dimensionality truncation.
    """

    def __init__(
        self,
        dimensionality: int,
        key_dims: int | None = None,
        *,
        fabric: Network | None = None,
        rng=None,
    ):
        self.dimensionality = int(dimensionality)
        self.key_dims = int(key_dims) if key_dims is not None else self.dimensionality
        if not 1 <= self.key_dims <= self.dimensionality:
            raise ValidationError(
                f"key_dims must be in [1, {self.dimensionality}], got {self.key_dims}"
            )
        self.fabric = fabric if fabric is not None else Network()
        self.overlay = CANNetwork(self.key_dims, fabric=self.fabric, rng=rng)
        self._peer_node: dict[int, int] = {}

    def add_peer(self, peer_id: int) -> int:
        """Join one overlay node on behalf of ``peer_id``."""
        node_id = self.overlay.join()
        self._peer_node[peer_id] = node_id
        return node_id

    def publish_items(
        self, peer_id: int, data: np.ndarray, item_ids: np.ndarray
    ) -> tuple[int, int]:
        """Insert every item individually; returns (items, total hops)."""
        data = check_unit_cube(
            check_matrix(data, "data", dim=self.dimensionality), "data"
        )
        item_ids = np.asarray(item_ids, dtype=np.int64)
        origin = self._peer_node[peer_id]
        hops = 0
        for row, item_id in zip(data, item_ids):
            receipt = self.overlay.insert(
                origin, row[: self.key_dims], (peer_id, int(item_id))
            )
            hops += receipt.total_hops
        return data.shape[0], hops

    def range_query(
        self, origin_peer: int, query: np.ndarray, epsilon: float
    ) -> tuple[set, int]:
        """Overlay range query on the truncated key; returns (item ids, hops).

        With ``key_dims == dimensionality`` results are exact; with fewer
        key dims they are a superset filtered client-side — mirroring why
        the paper calls the 2-d CAN unusable for meaningful retrieval.
        """
        query = check_vector(query, "query", dim=self.dimensionality)
        origin = self._peer_node[origin_peer]
        receipt = self.overlay.range_query(
            origin, query[: self.key_dims], epsilon
        )
        ids = {entry.value[1] for entry in receipt.entries}
        return ids, receipt.total_hops


class NaiveCANPublisher(ItemCANPublisher):
    """Conventional CAN: one insertion per item, full dimensionality."""

    def __init__(self, dimensionality: int, *, fabric=None, rng=None):
        super().__init__(dimensionality, None, fabric=fabric, rng=rng)


class TwoDimCANPublisher(ItemCANPublisher):
    """The paper's 2-d CAN baseline: index only the first two coordinates."""

    def __init__(self, dimensionality: int, *, fabric=None, rng=None):
        if dimensionality < 2:
            raise ValidationError("TwoDimCANPublisher needs >= 2-d items")
        super().__init__(dimensionality, 2, fabric=fabric, rng=rng)


class CentralizedIndex:
    """Exact flat index over the global dataset — the recall ground truth."""

    def __init__(self, data: np.ndarray, item_ids: np.ndarray, peer_ids=None):
        self.data = check_matrix(data, "data")
        self.item_ids = np.asarray(item_ids, dtype=np.int64)
        if self.item_ids.shape[0] != self.data.shape[0]:
            raise ValidationError("item_ids length does not match data rows")
        if len(set(self.item_ids.tolist())) != self.item_ids.shape[0]:
            raise ValidationError("item_ids must be unique")
        if peer_ids is None:
            peer_ids = np.full(self.data.shape[0], -1, dtype=np.int64)
        self.peer_ids = np.asarray(peer_ids, dtype=np.int64)

    @classmethod
    def from_network(cls, network) -> "CentralizedIndex":
        """Build the ground-truth index over everything peers currently hold."""
        return cls._from_peers(network.peers.values())

    @classmethod
    def from_network_online_only(cls, network) -> "CentralizedIndex":
        """Ground truth restricted to *online* peers' items.

        After churn, items on departed peers are unreachable by any means;
        recall should be judged against what a perfect system could still
        retrieve.
        """
        return cls._from_peers(
            peer for peer in network.peers.values() if peer.online
        )

    @classmethod
    def _from_peers(cls, peers) -> "CentralizedIndex":
        blocks, ids, owners = [], [], []
        for peer in peers:
            blocks.append(peer.data)
            ids.append(peer.item_ids)
            owners.append(np.full(peer.n_items, peer.peer_id, dtype=np.int64))
        if not blocks:
            raise ValidationError("network has no (matching) peers")
        return cls(np.vstack(blocks), np.concatenate(ids), np.concatenate(owners))

    @property
    def n_items(self) -> int:
        """Number of indexed items."""
        return int(self.data.shape[0])

    def range_search(self, query: np.ndarray, epsilon: float) -> set:
        """Ids of all items within ``epsilon`` of ``query`` (exact)."""
        query = check_vector(query, "query", dim=self.data.shape[1])
        dists = distances_to_query(self.data, query)
        return {int(i) for i in self.item_ids[dists <= epsilon + 1e-12]}

    def knn(self, query: np.ndarray, k: int) -> set:
        """Ids of the ``k`` exact nearest neighbours (distance, id ties)."""
        query = check_vector(query, "query", dim=self.data.shape[1])
        if k < 1:
            raise ValidationError(f"k must be >= 1, got {k}")
        dists = distances_to_query(self.data, query)
        k = min(k, dists.shape[0])
        order = np.lexsort((self.item_ids, dists))[:k]
        return {int(i) for i in self.item_ids[order]}

    def knn_items(self, query: np.ndarray, k: int) -> list[RetrievedItem]:
        """The ``k`` nearest neighbours with distances and owners."""
        query = check_vector(query, "query", dim=self.data.shape[1])
        dists = distances_to_query(self.data, query)
        k = min(max(k, 1), dists.shape[0])
        order = np.lexsort((self.item_ids, dists))[:k]
        return [
            RetrievedItem(
                item_id=int(self.item_ids[i]),
                peer_id=int(self.peer_ids[i]),
                distance=float(dists[i]),
            )
            for i in order
        ]
