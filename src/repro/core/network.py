"""The Hyper-M network: per-level overlays, peers, publication, queries."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.peer import HyperMPeer
from repro.core.results import ClusterRecord, DisseminationReport
from repro.engine.registry import active_engine_config, create_engine
from repro.exceptions import ValidationError
from repro.net.network import Network
from repro.obs import flight as obs_flight
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.overlay.adapt import AdaptationController, active_adapt_config
from repro.overlay.base import maintenance_plane
from repro.overlay.can import CANNetwork
from repro.overlay.registry import active_overlay_factory
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.wavelets.bounds import key_space_radius, to_unit_cube
from repro.wavelets.multiresolution import Level, publication_levels

#: Id stride separating each level's overlay nodes on the shared fabric.
_LEVEL_ID_STRIDE = 1_000_000


@dataclass(frozen=True)
class HyperMConfig:
    """Operating point of a Hyper-M deployment.

    Attributes
    ----------
    levels_used:
        Number of coarsest wavelet subspaces published (the paper settles
        on 4: more levels add overhead without precision/recall gains).
    n_clusters:
        The paper's ``K_p``: clusters per peer per subspace.
    aggregation:
        Cross-level score policy: ``"min"`` (paper), ``"sum"``, ``"product"``.
    kmeans_restarts:
        k-means++ restarts per clustering run.
    """

    levels_used: int = 4
    n_clusters: int = 10
    aggregation: str = "min"
    kmeans_restarts: int = 1

    def __post_init__(self) -> None:
        if self.levels_used < 1:
            raise ValidationError(
                f"levels_used must be >= 1, got {self.levels_used}"
            )
        if self.n_clusters < 1:
            raise ValidationError(
                f"n_clusters must be >= 1, got {self.n_clusters}"
            )
        if self.aggregation not in ("min", "sum", "product"):
            raise ValidationError(
                f"unknown aggregation {self.aggregation!r}"
            )
        if self.kmeans_restarts < 1:
            raise ValidationError(
                f"kmeans_restarts must be >= 1, got {self.kmeans_restarts}"
            )


class HyperMNetwork:
    """One overlay per wavelet level, plus the peers publishing into them.

    Parameters
    ----------
    dimensionality:
        Item dimensionality ``d`` (a power of two).
    config:
        :class:`HyperMConfig`; defaults to the paper's operating point.
    fabric:
        Shared MANET fabric for hop/energy accounting across all levels.
    rng:
        Seed or generator; child streams drive each overlay and each
        peer's clustering.
    overlay_factory:
        Callable ``(dimensionality, *, fabric, rng, node_id_offset) ->
        Overlay``. When ``None``, the ambient factory installed by the
        CLI's ``--overlay`` flag (:mod:`repro.overlay.registry`) wins,
        then :class:`repro.overlay.can.CANNetwork`. Any registered
        backend (ring, BATON, VBI, Kademlia) demonstrates overlay
        independence.

    Examples
    --------
    >>> import numpy as np
    >>> net = HyperMNetwork(16, HyperMConfig(levels_used=3, n_clusters=4), rng=0)
    >>> rng = np.random.default_rng(0)
    >>> for __ in range(4):
    ...     _ = net.add_peer(rng.random((30, 16)))
    >>> report = net.publish_all()
    >>> report.items_published
    120
    """

    def __init__(
        self,
        dimensionality: int,
        config: HyperMConfig | None = None,
        *,
        fabric: Network | None = None,
        rng=None,
        overlay_factory=None,
        engine_config=None,
    ):
        self.config = config or HyperMConfig()
        self.levels: list[Level] = publication_levels(
            dimensionality, self.config.levels_used
        )
        self.dimensionality = int(dimensionality)
        #: Execution engine (``repro.engine``): explicit argument, else
        #: the ambient ``--engine`` selection, else serial. The engine
        #: provides the fabric's scheduler and, when parallel, the
        #: per-level shard fan-out for the index phase.
        self.engine = create_engine(
            engine_config
            if engine_config is not None
            else active_engine_config()
        )
        self.fabric = (
            fabric
            if fabric is not None
            else Network(scheduler=self.engine.create_scheduler())
        )
        self._rng = ensure_rng(rng)
        factory = overlay_factory or active_overlay_factory() or CANNetwork
        overlay_rngs = spawn_rngs(self._rng, len(self.levels))
        self.overlays = {
            level: factory(
                level.dimensionality,
                fabric=self.fabric,
                rng=level_rng,
                node_id_offset=(index + 1) * _LEVEL_ID_STRIDE,
            )
            for index, (level, level_rng) in enumerate(
                zip(self.levels, overlay_rngs)
            )
        }
        if self.engine.parallel:
            for index, level in enumerate(self.levels):
                store = getattr(self.overlays[level], "level_store", None)
                if store is not None:
                    self.engine.register_store(index, store)
        self.peers: dict[int, HyperMPeer] = {}
        #: Optional load-adaptation controller (``repro.overlay.adapt``);
        #: installed by :meth:`enable_adaptation` or ambiently by the
        #: CLI's ``--adapt`` flag via :func:`adapt_scope`.
        self.adaptation: AdaptationController | None = None
        ambient = active_adapt_config()
        if ambient is not None:
            self.enable_adaptation(ambient)
        self._overlay_node: dict[tuple[Level, int], int] = {}
        #: ``(level, peer_id) -> {sid -> entry_id}``: which overlay entry
        #: each published sphere (by its epoch-state sphere id) lives at.
        #: The delta pipeline patches/retracts these entries in place.
        self._published_entries: dict[tuple[Level, int], dict[int, int]] = {}

    def close(self) -> None:
        """Release the execution engine (workers + shared memory).

        A no-op for the serial engine; sharded networks should be closed
        (or used via ``with``-style engine scopes) so worker processes
        and shm blocks never outlive the experiment.
        """
        self.engine.close()

    def enable_adaptation(self, config=None) -> AdaptationController:
        """Attach a load-adaptation controller (idempotent per config).

        The controller consumes one loadmap snapshot per epoch and
        reacts with zone rebalances, replication boosts/sheds, and
        quality-scored retrieval multicast — see
        :mod:`repro.overlay.adapt`. Returns the controller.
        """
        self.adaptation = AdaptationController(self, config)
        return self.adaptation

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        overlay = type(next(iter(self.overlays.values()))).__name__
        return (
            f"HyperMNetwork(d={self.dimensionality}, "
            f"levels={[str(l) for l in self.levels]}, "
            f"peers={self.n_peers}, overlay={overlay})"
        )

    # -- membership -----------------------------------------------------------

    def add_peer(
        self, data: np.ndarray, item_ids: np.ndarray | None = None
    ) -> HyperMPeer:
        """Create a peer holding ``data`` and join it to every level overlay."""
        peer_id = len(self.peers)
        peer = HyperMPeer(peer_id, data, item_ids)
        if peer.dimensionality != self.dimensionality:
            raise ValidationError(
                f"peer data is {peer.dimensionality}-d; network expects "
                f"{self.dimensionality}-d"
            )
        self.peers[peer_id] = peer
        for level, overlay in self.overlays.items():
            node_id = overlay.join()
            self._overlay_node[(level, peer_id)] = node_id
        return peer

    def depart(
        self, peer_id: int, *, withdraw_summaries: bool = False
    ) -> None:
        """A peer's *graceful* departure (MANET churn, clean-only).

        This is always an orderly exit: the peer's overlay nodes leave
        via the overlay's hand-off protocol — their zones/arcs and the
        index entries they stored transfer to remaining nodes, so routing
        and index queries keep working. The peer itself then goes
        offline: direct retrieval from it fails and queries lose access
        to its items.

        This method never models an *abrupt* failure (battery death,
        radio silence, walking out of range). A crashed device cannot
        run a hand-off protocol; that case is modelled exclusively by
        :func:`repro.faults.resilience.crash_peer`, which flips the peer
        offline *without* any overlay cleanup and leaves its zones and
        stored entries dangling for the resilience machinery (retries,
        failure detection, tombstoning) to cope with.

        Parameters
        ----------
        withdraw_summaries:
            When true, the peer's own published cluster summaries are
            also dropped from every overlay before it leaves (the peer
            says goodbye properly); the default leaves them dangling —
            even a graceful departure may not bother unpublishing — so
            queries may waste contact attempts on it.
        """
        peer = self.peers.get(peer_id)
        if peer is None:
            raise ValidationError(f"unknown peer {peer_id}")
        peer.online = False
        for level in self.levels:
            overlay = self.overlays[level]
            node_id = self._overlay_node[(level, peer_id)]
            if node_id in overlay.node_ids:
                overlay.leave(node_id)
        if withdraw_summaries:
            self.withdraw_summaries(peer_id)

    def remove_peer(
        self, peer_id: int, *, withdraw_summaries: bool = False
    ) -> None:
        """Backwards-compatible alias for :meth:`depart` (clean-only)."""
        self.depart(peer_id, withdraw_summaries=withdraw_summaries)

    def withdraw_summaries(self, peer_id: int, *, charge: bool = False) -> int:
        """Drop every published cluster record of ``peer_id``; returns the
        number of node-level removals (one per membership dropped).

        The peer's rows come from one vectorized scan of the level store's
        peer-id column; each holding node releases its membership of those
        rows, the last release tombstones the row, and the store compacts
        if the tombstone threshold is passed — so a withdrawn sphere can
        never be scored again (any outstanding
        :class:`repro.index.CandidateSet` turns stale).

        With ``charge=True`` the withdrawal traffic is accounted: one
        message from the peer to each holder of each of its entries — the
        deletions retrace the replica paths publication used. The default
        leaves withdrawal free, matching the dissemination experiments
        (which measure publication only).
        """
        from repro.net.messages import MessageKind, vector_message_size

        removed = 0
        for level in self.levels:
            self._published_entries.pop((level, peer_id), None)
        for level, overlay in self.overlays.items():
            store = overlay.level_store
            doomed = store.rows_for_peer(peer_id)
            if doomed.size == 0:
                continue
            holders_by_entry: dict[int, list[int]] = {}
            for node_id in overlay.node_ids:
                node = overlay.node(node_id)
                held = np.intersect1d(
                    doomed, node.membership.rows(), assume_unique=True
                )
                if held.size == 0:
                    continue
                for row in held:
                    holders_by_entry.setdefault(
                        store.entry_id_of(row), []
                    ).append(node_id)
                removed += node.membership.discard_many(held)
            origin = self._overlay_node.get((level, peer_id))
            if charge and origin is not None:
                size = vector_message_size(level.dimensionality, scalars=1)
                for holders in holders_by_entry.values():
                    prev = origin
                    for holder in holders:
                        if holder == prev:
                            continue
                        self.fabric.transmit(
                            prev, holder, MessageKind.REPLICATE, size
                        )
                        prev = holder
            store.maybe_compact()
        return removed

    def overlay_node(self, level: Level, peer_id: int) -> int:
        """Overlay node id of ``peer_id`` at ``level``."""
        try:
            return self._overlay_node[(level, peer_id)]
        except KeyError:
            raise ValidationError(
                f"peer {peer_id} has no node at level {level}"
            ) from None

    @property
    def n_peers(self) -> int:
        """Number of member peers."""
        return len(self.peers)

    @property
    def total_items(self) -> int:
        """Items held across all peers (published or not)."""
        return sum(peer.n_items for peer in self.peers.values())

    # -- publication (paper Figure 2) -------------------------------------------

    def _sphere_payload(self, peer_id: int, sphere, level: Level):
        """Key-space key, radius, and record of one sphere at ``level``."""
        key = np.clip(to_unit_cube(sphere.centroid, level), 0.0, 1.0)
        radius = key_space_radius(sphere.radius, level)
        record = ClusterRecord(
            peer_id=peer_id, items=sphere.items, level_name=str(level)
        )
        return key, radius, record

    def _insert_sphere(
        self, overlay, origin: int, peer_id: int, sphere, level: Level
    ):
        """Insert one sphere; returns ``(receipt, entry_id)``.

        The store assigns the next monotonic id to the inserted row, so
        capturing ``next_entry_id`` beforehand pins the id the delta
        pipeline will later patch or retract.
        """
        key, radius, record = self._sphere_payload(peer_id, sphere, level)
        entry_id = overlay.level_store.next_entry_id
        receipt = overlay.insert(origin, key, record, radius=radius)
        return receipt, entry_id

    def publish_peer(
        self, peer_id: int, *, summary=None
    ) -> DisseminationReport:
        """Summarise and publish one peer's items in full (steps i1–i3).

        The degenerate full-epoch case of the delta pipeline: one fresh
        clustering of the published prefix, every sphere inserted, and the
        peer's epoch state reset around the new summary so later
        :meth:`publish_delta` rounds can diff against it.

        A prebuilt ``summary`` (e.g. restored via
        :mod:`repro.core.serialization` from a previous session) skips the
        decomposition/clustering step entirely — it must match this
        network's dimensionality and levels.
        """
        peer = self.peers[peer_id]
        recorder = obs_trace.state.recorder
        with recorder.span(
            "publish", peer=peer_id
        ) as publish_span, obs_flight.state.recorder.operation(
            "publish", peer=peer_id
        ) as flight_op:
            if summary is None:
                summary = peer.build_summary(
                    n_clusters=self.config.n_clusters,
                    levels_used=self.config.levels_used,
                    rng=self._rng,
                    n_init=self.config.kmeans_restarts,
                )
            else:
                if summary.dimensionality != self.dimensionality:
                    raise ValidationError(
                        f"summary is {summary.dimensionality}-d; network "
                        f"expects {self.dimensionality}-d"
                    )
                if list(summary.levels) != list(self.levels):
                    raise ValidationError(
                        "summary levels do not match the network's levels"
                    )
            peer.adopt_full_summary(summary)
            state = peer.epoch_state
            report = DisseminationReport(items_published=peer.unpublished_from)
            bytes_before = self.fabric.metrics.total_bytes
            energy_before = self.fabric.energy.total
            for level in self.levels:
                overlay = self.overlays[level]
                origin = self.overlay_node(level, peer_id)
                # Fresh-state sids are slot-aligned (sid = start + slot),
                # so iterating the summary in slot order pairs each sphere
                # with its sid for the entry mapping.
                sids = (
                    sorted(state.spheres[level]) if state is not None else None
                )
                mapping: dict[int, int] = {}
                with recorder.span(
                    f"can_insert[{level}]", level=str(level)
                ) as level_span:
                    routing = replicas = 0
                    for slot, sphere in enumerate(summary.spheres[level]):
                        receipt, entry_id = self._insert_sphere(
                            overlay, origin, peer_id, sphere, level
                        )
                        if sids is not None:
                            mapping[sids[slot]] = entry_id
                        report.spheres_inserted += 1
                        routing += receipt.routing_hops
                        replicas += receipt.replicas
                    report.routing_hops += routing
                    report.replica_hops += replicas
                    level_span.set(
                        spheres=len(summary.spheres[level]),
                        routing_hops=routing,
                        replica_hops=replicas,
                    )
                self._published_entries[(level, peer_id)] = mapping
            report.bytes_sent = self.fabric.metrics.total_bytes - bytes_before
            report.energy = self.fabric.energy.total - energy_before
            publish_span.set(
                items=report.items_published,
                spheres=report.spheres_inserted,
                routing_hops=report.routing_hops,
                replica_hops=report.replica_hops,
                bytes=report.bytes_sent,
            )
            flight_op.set(
                items=report.items_published,
                spheres=report.spheres_inserted,
            )
        metrics = obs_registry.metrics()
        metrics.counter("publish.operations").inc()
        metrics.counter("publish.items").inc(report.items_published)
        metrics.counter("publish.spheres").inc(report.spheres_inserted)
        metrics.counter("publish.routing_hops").inc(report.routing_hops)
        metrics.counter("publish.replica_hops").inc(report.replica_hops)
        metrics.counter("publish.bytes").inc(report.bytes_sent)
        metrics.histogram("publish.hops_per_sphere").observe(
            report.hops_per_sphere
        )
        return report

    def publish_delta(
        self, peer_id: int, *, force_full: bool = False
    ) -> DisseminationReport:
        """Publish one peer's *mutations* since its last publication.

        The epoch-based delta pipeline: the peer folds every pending
        add/remove into its incrementally maintained clustering
        (:meth:`HyperMPeer.build_delta`), and only the diff touches the
        overlays — updated spheres patch their existing entry ids in
        place (one batched scalar ``PUBLISH_DELTA`` message per holder),
        retired spheres ride the tombstone machinery, and only genuinely
        new spheres pay the full routed-insert price. A peer with no
        pending mutations costs zero spheres and zero bytes. Past the
        drift threshold (or with ``force_full``) the round degenerates to
        a full re-clustering expressed as remove-all + insert-all.
        """
        peer = self.peers[peer_id]
        recorder = obs_trace.state.recorder
        metrics = obs_registry.metrics()
        with recorder.span(
            "publish_delta", peer=peer_id
        ) as delta_span, obs_flight.state.recorder.operation(
            "publish_delta", peer=peer_id
        ) as flight_op:
            with recorder.span("delta_build", peer=peer_id) as build_span:
                delta = peer.build_delta(
                    n_clusters=self.config.n_clusters,
                    levels_used=self.config.levels_used,
                    rng=self._rng,
                    n_init=self.config.kmeans_restarts,
                    force_full=force_full,
                )
                build_span.set(
                    full=delta.full,
                    items_added=delta.items_added,
                    items_removed=delta.items_removed,
                    updated=delta.spheres_updated,
                    inserted=delta.spheres_inserted,
                    removed=delta.spheres_removed,
                )
            if delta.full:
                items_changed = delta.items_covered
            else:
                items_changed = delta.items_added + delta.items_removed
            report = DisseminationReport(items_published=items_changed)
            bytes_before = self.fabric.metrics.total_bytes
            energy_before = self.fabric.energy.total
            self._apply_delta(peer_id, delta, report, recorder, flight_op)
            report.bytes_sent = self.fabric.metrics.total_bytes - bytes_before
            report.energy = self.fabric.energy.total - energy_before
            delta_span.set(
                items=report.items_published,
                inserted=report.spheres_inserted,
                updated=report.spheres_updated,
                removed=report.spheres_removed,
                routing_hops=report.routing_hops,
                replica_hops=report.replica_hops,
                bytes=report.bytes_sent,
                full=delta.full,
            )
        metrics.counter("publish.delta.operations").inc()
        metrics.counter("publish.delta.items").inc(report.items_published)
        metrics.counter("publish.delta.spheres_inserted").inc(
            report.spheres_inserted
        )
        metrics.counter("publish.delta.spheres_updated").inc(
            report.spheres_updated
        )
        metrics.counter("publish.delta.spheres_removed").inc(
            report.spheres_removed
        )
        metrics.counter("publish.delta.routing_hops").inc(report.routing_hops)
        metrics.counter("publish.delta.replica_hops").inc(report.replica_hops)
        metrics.counter("publish.delta.bytes").inc(report.bytes_sent)
        if delta.full:
            metrics.counter("publish.delta.full_fallbacks").inc()
        return report

    def _apply_delta(
        self, peer_id: int, delta, report: DisseminationReport, recorder,
        flight_op,
    ) -> None:
        """Apply one :class:`SummaryDelta` to every level overlay.

        Per level, in tombstone-safe order: retired spheres are retracted
        first (batched per holder), surviving updated spheres patch their
        entries in place, and new spheres are inserted with fresh entry
        ids. Spheres whose mapped entry died underneath them — withdrawn
        while the peer was away, or tombstoned by the failure detector —
        are *revived* with a normal insert, so a delta round always leaves
        the overlays covering the peer's full published state.

        Maintenance operations dispatch through
        :func:`repro.overlay.base.maintenance_plane`. A backend without
        the plane degrades to store-direct (uncharged) updates — and
        that degradation is metered, never silent: the
        ``publish.delta.fallback_full`` counter is bumped and the
        publish-delta flight operation is annotated with the backend
        class.
        """
        peer = self.peers[peer_id]
        state = peer.epoch_state
        for level in self.levels:
            overlay = self.overlays[level]
            plane = maintenance_plane(overlay)
            store = overlay.level_store
            origin = self.overlay_node(level, peer_id)
            level_delta = delta.per_level[level]
            mapping = self._published_entries.setdefault((level, peer_id), {})
            with recorder.span(
                f"delta_apply[{level}]", level=str(level)
            ) as level_span:
                # 1. removals (a full delta replaces everything mapped).
                if delta.full:
                    doomed_sids = list(mapping)
                else:
                    doomed_sids = [
                        sid for sid in level_delta.removed if sid in mapping
                    ]
                doomed_entries = [mapping.pop(sid) for sid in doomed_sids]
                live_doomed = [
                    eid for eid in doomed_entries if store.has_entry(eid)
                ]
                retract_hops = 0
                if live_doomed:
                    if plane is not None:
                        retract_hops = plane.retract_entries(
                            origin, live_doomed
                        )
                        report.routing_hops += retract_hops
                    else:
                        self._note_delta_fallback(flight_op, overlay)
                        for eid in live_doomed:
                            store.remove_entry(eid)
                        store.maybe_compact()
                report.spheres_removed += len(level_delta.removed)

                # 2. in-place updates; dead entries fall through to revival.
                patches = []
                revive = []
                for sid in sorted(level_delta.updated):
                    sphere = level_delta.updated[sid]
                    eid = mapping.get(sid)
                    if eid is None or not store.has_entry(eid):
                        revive.append((sid, sphere))
                        continue
                    __, radius, record = self._sphere_payload(
                        peer_id, sphere, level
                    )
                    patches.append((eid, radius, record))
                patch_hops = extend_hops = 0
                if patches:
                    if plane is not None:
                        patch_hops, extend_hops = plane.patch_entries(
                            origin, patches
                        )
                        report.routing_hops += patch_hops
                        report.replica_hops += extend_hops
                    else:
                        self._note_delta_fallback(flight_op, overlay)
                        for eid, radius, record in patches:
                            store.update_entry(
                                eid, radius=radius, value=record
                            )
                    report.spheres_updated += len(patches)

                # 3. inserts: new spheres, plus revivals of dead entries.
                to_insert = [
                    (sid, level_delta.inserted[sid])
                    for sid in sorted(level_delta.inserted)
                ]
                to_insert.extend(revive)
                # Resync sweep: unchanged spheres whose entries vanished
                # (withdrawn or tombstoned while the peer was away).
                if state is not None and not delta.full:
                    for sid in sorted(state.spheres[level]):
                        if (
                            sid in level_delta.updated
                            or sid in level_delta.inserted
                        ):
                            continue
                        eid = mapping.get(sid)
                        if eid is not None and store.has_entry(eid):
                            continue
                        to_insert.append((sid, state.spheres[level][sid]))
                routing = replicas = 0
                for sid, sphere in to_insert:
                    receipt, entry_id = self._insert_sphere(
                        overlay, origin, peer_id, sphere, level
                    )
                    mapping[sid] = entry_id
                    report.spheres_inserted += 1
                    routing += receipt.routing_hops
                    replicas += receipt.replicas
                report.routing_hops += routing
                report.replica_hops += replicas
                level_span.set(
                    removed=len(doomed_sids),
                    updated=len(patches),
                    inserted=len(to_insert),
                    retract_hops=retract_hops,
                    patch_hops=patch_hops,
                    routing_hops=routing,
                    replica_hops=extend_hops + replicas,
                )

    @staticmethod
    def _note_delta_fallback(flight_op, overlay) -> None:
        """Meter a maintenance-plane miss during delta application.

        Bumps ``publish.delta.fallback_full`` and annotates the current
        publish-delta flight operation so a deployment quietly running
        degraded maintenance shows up in every metrics snapshot and
        flight export.
        """
        obs_registry.metrics().counter("publish.delta.fallback_full").inc()
        flight_op.set(
            fallback_full=True, overlay=type(overlay).__name__
        )

    def republish_peer(
        self, peer_id: int, *, full: bool = False
    ) -> DisseminationReport:
        """Bring one peer's published index state up to date.

        The staleness remedy for Figure 10c's scenario: items added (or
        removed) after the last publication become visible to the index
        again. By default this is one :meth:`publish_delta` round — only
        the changed spheres touch the overlays, and a call with no
        pending mutations is **idempotent**: zero spheres moved, zero
        bytes sent. With ``full=True`` the legacy behaviour runs instead:
        withdraw every published summary (charged) and re-publish a fresh
        clustering of all items — the baseline the delta path is measured
        against.
        """
        if full:
            peer = self.peers[peer_id]
            self.withdraw_summaries(peer_id, charge=True)
            peer.unpublished_from = peer.n_items
            return self.publish_peer(peer_id)
        return self.publish_delta(peer_id)

    def publish_all(self) -> DisseminationReport:
        """Publish every peer; returns the merged dissemination report."""
        report = DisseminationReport()
        for peer_id in self.peers:
            report = report.merge(self.publish_peer(peer_id))
        return report

    # -- item-level conveniences ---------------------------------------------------

    def locate_item(self, item_id: int) -> tuple[HyperMPeer, np.ndarray]:
        """Find which peer holds ``item_id``; returns (peer, vector).

        A global-view convenience (the simulator knows all peers); in a
        real deployment the caller already holds the item it queries with.
        """
        for peer in self.peers.values():
            matches = np.flatnonzero(peer.item_ids == item_id)
            if matches.size:
                return peer, peer.data[int(matches[0])]
        raise ValidationError(f"no peer holds item {item_id}")

    def find_similar(self, item_id: int, k: int = 10, **kwargs):
        """'More like this': k-NN from an item already in the network.

        The holding peer issues the query (it has the vector), and the
        item itself is excluded from the result list.
        """
        peer, vector = self.locate_item(item_id)
        result = self.knn_query(
            vector, k + 1, origin_peer=peer.peer_id, **kwargs
        )
        result.items = [
            item for item in result.items if item.item_id != item_id
        ]
        return result

    # -- queries (delegates) -----------------------------------------------------

    def range_query(self, query: np.ndarray, epsilon: float, **kwargs):
        """Similarity range query — see :func:`repro.core.queries.range_query`."""
        from repro.core.queries import range_query

        return range_query(self, query, epsilon, **kwargs)

    def point_query(self, query: np.ndarray, **kwargs):
        """Exact-match query — see :func:`repro.core.queries.point_query`."""
        from repro.core.queries import point_query

        return point_query(self, query, **kwargs)

    def knn_query(self, query: np.ndarray, k: int, **kwargs):
        """k-nearest-neighbour query — see :func:`repro.core.knn.knn_query`."""
        from repro.core.knn import knn_query

        return knn_query(self, query, k, **kwargs)

    # -- introspection --------------------------------------------------------------

    def level_loads(self) -> dict[Level, dict[int, int]]:
        """Per-level ``{node_id: stored entries}`` (Figure 9's metric)."""
        return {level: overlay.loads() for level, overlay in self.overlays.items()}

    def stats(self) -> dict:
        """Structured network health summary.

        One call for dashboards and debugging: membership, publication
        state per level (spheres, replication factor, level-store health),
        and fabric totals. Replication accounting runs on the level
        store's stable entry ids: every live row is one distinct sphere
        (it exists exactly while some node holds it), and the replication
        factor is total memberships over live rows.
        """
        online = sum(1 for peer in self.peers.values() if peer.online)
        per_level = {}
        for level, overlay in self.overlays.items():
            loads = overlay.loads()
            stored = sum(loads.values())
            store = overlay.level_store
            distinct = store.n_live
            per_level[str(level)] = {
                "nodes": len(overlay.node_ids),
                "stored_entries": stored,
                "distinct_spheres": distinct,
                "replication_factor": (
                    stored / distinct if distinct else 0.0
                ),
                "store": store.health(),
            }
        summary = {
            "peers": self.n_peers,
            "online_peers": online,
            "total_items": self.total_items,
            "levels": per_level,
            "fabric": {
                "messages": self.fabric.metrics.total_messages,
                "hops": self.fabric.metrics.total_hops,
                "bytes": self.fabric.metrics.total_bytes,
                "energy": self.fabric.energy.total,
                "retransmits": self.fabric.metrics.total_retransmits,
                "duplicates": self.fabric.metrics.total_duplicates,
            },
            "energy": self.fabric.energy.snapshot(),
        }
        if self.adaptation is not None:
            summary["adaptation"] = self.adaptation.snapshot()
        return summary
