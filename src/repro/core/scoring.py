"""Peer relevance scoring (paper Eq. 1) and cross-level aggregation.

At each level ``l``, a peer's score sums, over its clusters found by the
index query, the volume fraction of the cluster sphere covered by the query
sphere times the cluster's item count::

    Score_l(p) = sum_c  Vol(sphere_c ∩ sphere_q) / Vol(sphere_c) * items_c

:func:`level_scores` evaluates this with the vectorized kernels in
:mod:`repro.geometry.batch`: one level's candidate entries are stacked into
key/radius/item arrays (cached across calls for an unchanged candidate
set — see :func:`_stack_entries`), centre distances come from one BLAS
matvec, every cluster sphere is scored in a single
``intersection_fraction_batch`` call, and the per-peer sums reduce with a
``bincount`` over unique peer ids. :func:`level_scores_scalar` keeps the
original one-sphere-at-a-time path as the numerical oracle — the property
tests and the scoring microbenchmark pin the two to 1e-9, with identical
candidate/pruned/surviving accounting.

Cross-level aggregation uses the paper's *minimum-score* policy by default
(Section 3.2): a peer must look relevant at **every** level; Theorem 4.1
guarantees this prunes no true range-query answers. ``sum`` and
``product`` aggregators are provided for the ablation benchmarks.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry.batch import (
    intersection_fraction_batch,
    spheres_intersect_batch,
)
from repro.geometry.intersection import intersection_fraction, spheres_intersect

#: Floor applied to the per-cluster fraction of an *intersecting* cluster so
#: a tangential touch never zeroes a peer out of the min-aggregation (which
#: would break the Theorem 4.1 no-false-dismissal guarantee). With the
#: log-space volume ratios, positive-volume overlaps always score their true
#: (possibly tiny) fraction; the floor only catches zero-volume tangencies
#: inside the shared :data:`repro.geometry.intersection.INTERSECTION_SLACK`
#: band.
MIN_INTERSECTING_FRACTION = 1e-9


def _fill_stats(stats: dict | None, candidates: int, pruned: int) -> None:
    if stats is not None:
        stats["candidates"] = candidates
        stats["pruned"] = pruned
        stats["surviving"] = candidates - pruned


@dataclass
class _EntryBlock:
    """One candidate set's fields stacked into arrays, plus the entry list
    itself (a strong reference: the cache below keys blocks by the entries'
    ``id()``s, which stay valid exactly as long as the objects are alive)."""

    entries: list
    keys: np.ndarray
    radii: np.ndarray
    items: np.ndarray
    peer_ids: np.ndarray
    key_sq: np.ndarray  # per-row squared norms, for the BLAS distance form


#: Stacking 10k+ entries costs one Python-loop pass over the candidate set
#: — more than the vectorized scoring itself. Entries are immutable once
#: stored, so an unchanged candidate set (the same level re-scored across a
#: query batch, an evaluation sweep, or the microbenchmark's repeats) can
#: reuse its arrays. Keyed by the tuple of entry ids; bounded LRU.
_STACK_CACHE: OrderedDict[tuple, _EntryBlock] = OrderedDict()
_STACK_CACHE_SIZE = 4


def _stack_entries(entries: list, d: int) -> _EntryBlock:
    token = tuple(map(id, entries))
    block = _STACK_CACHE.get(token)
    if block is not None:
        _STACK_CACHE.move_to_end(token)
        return block
    n = len(entries)
    keys = np.empty((n, d), dtype=np.float64)
    radii = np.empty(n, dtype=np.float64)
    items = np.empty(n, dtype=np.float64)
    peer_ids = np.empty(n, dtype=np.int64)
    for i, entry in enumerate(entries):
        keys[i] = entry.key
        radii[i] = entry.radius
        record = entry.value
        items[i] = record.items
        peer_ids[i] = record.peer_id
    block = _EntryBlock(
        entries=entries,
        keys=keys,
        radii=radii,
        items=items,
        peer_ids=peer_ids,
        key_sq=np.einsum("ij,ij->i", keys, keys),
    )
    _STACK_CACHE[token] = block
    while len(_STACK_CACHE) > _STACK_CACHE_SIZE:
        _STACK_CACHE.popitem(last=False)
    return block


def level_scores(
    entries: list,
    query_center: np.ndarray,
    query_radius: float,
    *,
    stats: dict | None = None,
) -> dict[int, float]:
    """Eq. 1 scores per peer for one level's index-query results (batched).

    Parameters
    ----------
    entries:
        :class:`repro.overlay.base.StoredEntry` objects returned by the
        overlay range query at this level; each ``value`` must be a
        :class:`repro.core.results.ClusterRecord`.
    query_center / query_radius:
        The query sphere, already translated into this level's key space.
    stats:
        Optional dict the function fills with this level's Theorem 4.1
        filter accounting: ``candidates`` spheres examined, ``pruned``
        (genuinely disjoint from the query ball) and ``surviving``
        (``candidates - pruned``) — the pruning-power numbers traces and
        Figure-style analyses report per level.
    """
    query_center = np.asarray(query_center, dtype=np.float64)
    d = int(query_center.shape[0])
    n = len(entries)
    if n == 0:
        _fill_stats(stats, 0, 0)
        return {}

    block = _stack_entries(entries, d)
    # ||k - q||^2 = ||k||^2 - 2 k.q + ||q||^2 — one BLAS matvec instead of
    # materialising the (n, d) difference matrix (at d = 512 the subtraction
    # alone costs more than the whole Eq. 1 kernel).
    d2 = block.key_sq - 2.0 * (block.keys @ query_center)
    d2 += float(query_center @ query_center)
    np.maximum(d2, 0.0, out=d2)
    dists = np.sqrt(d2)
    intersecting = spheres_intersect_batch(block.radii, query_radius, dists)
    pruned = n - int(np.count_nonzero(intersecting))
    _fill_stats(stats, n, pruned)
    if pruned == n:
        return {}

    fractions = intersection_fraction_batch(
        block.radii[intersecting], query_radius, dists[intersecting], d
    )
    np.maximum(fractions, MIN_INTERSECTING_FRACTION, where=fractions <= 0.0,
               out=fractions)
    contributions = fractions * block.items[intersecting]
    unique_peers, inverse = np.unique(
        block.peer_ids[intersecting], return_inverse=True
    )
    totals = np.bincount(inverse, weights=contributions)
    return {
        int(peer): float(total)
        for peer, total in zip(unique_peers, totals)
    }


def level_scores_scalar(
    entries: list,
    query_center: np.ndarray,
    query_radius: float,
    *,
    stats: dict | None = None,
) -> dict[int, float]:
    """One-sphere-at-a-time Eq. 1 — the oracle for :func:`level_scores`.

    Same contract and same accounting as the batched path; kept as the
    ground truth for the parity tests and the scoring microbenchmark.
    """
    query_center = np.asarray(query_center, dtype=np.float64)
    d = query_center.shape[0]
    scores: dict[int, float] = {}
    pruned = 0
    for entry in entries:
        record = entry.value
        b = float(np.linalg.norm(entry.key - query_center))
        if not spheres_intersect(entry.radius, query_radius, b):
            pruned += 1
            continue  # genuinely disjoint: contributes nothing
        fraction = intersection_fraction(entry.radius, query_radius, b, d)
        if fraction <= 0.0:
            fraction = MIN_INTERSECTING_FRACTION
        scores[record.peer_id] = (
            scores.get(record.peer_id, 0.0) + fraction * record.items
        )
    _fill_stats(stats, len(entries), pruned)
    return scores


def aggregate_scores(
    per_level: dict, *, policy: str = "min"
) -> dict[int, float]:
    """Combine per-level score dicts into one global peer score.

    Parameters
    ----------
    per_level:
        Mapping ``level -> {peer_id: score}``.
    policy:
        ``"min"`` (paper default — peer must appear at every level),
        ``"sum"`` or ``"product"`` (ablations; both also require presence
        at every level to stay comparable with ``min``'s pruning).
    """
    if not per_level:
        return {}
    if policy not in ("min", "sum", "product"):
        raise ValidationError(
            f"unknown aggregation policy {policy!r}; use min, sum or product"
        )
    level_dicts = list(per_level.values())
    common = set(level_dicts[0])
    for scores in level_dicts[1:]:
        common &= set(scores)
    aggregated: dict[int, float] = {}
    for peer_id in common:
        values = [scores[peer_id] for scores in level_dicts]
        if policy == "min":
            aggregated[peer_id] = min(values)
        elif policy == "sum":
            aggregated[peer_id] = sum(values)
        else:
            aggregated[peer_id] = math.prod(values)
    return aggregated


def rank_peers(aggregated: dict[int, float]) -> list[tuple[int, float]]:
    """Peers by descending score (ties broken by peer id for determinism)."""
    return sorted(aggregated.items(), key=lambda kv: (-kv[1], kv[0]))
