"""Peer relevance scoring (paper Eq. 1) and cross-level aggregation.

At each level ``l``, a peer's score sums, over its clusters found by the
index query, the volume fraction of the cluster sphere covered by the query
sphere times the cluster's item count::

    Score_l(p) = sum_c  Vol(sphere_c ∩ sphere_q) / Vol(sphere_c) * items_c

:func:`level_scores` evaluates this with the vectorized kernels in
:mod:`repro.geometry.batch`. Overlay range queries return a
:class:`repro.index.CandidateSet` — row indices into the level's shared
columnar store — so the key/radius/item arrays are gathered straight from
the store columns with no per-entry Python loop and no re-stacking cache
(the columnar block *is*
the store, and the candidate set's generation tag raises
:class:`repro.exceptions.StaleCandidateError` instead of silently scoring
withdrawn entries). Centre distances come from one BLAS matvec, every
cluster sphere is scored in a single ``intersection_fraction_batch`` call,
and the per-peer sums reduce with a ``bincount`` over unique peer ids.
Plain entry lists are still accepted (stacked fresh per call) for tests
and legacy callers. :func:`level_scores_scalar` keeps the original
one-sphere-at-a-time path as the numerical oracle — the property tests
and the scoring microbenchmark pin the two to 1e-9, with identical
candidate/pruned/surviving accounting.

Cross-level aggregation uses the paper's *minimum-score* policy by default
(Section 3.2): a peer must look relevant at **every** level; Theorem 4.1
guarantees this prunes no true range-query answers. ``sum`` and
``product`` aggregators are provided for the ablation benchmarks.
:func:`aggregate_scores` stacks the per-level dicts into aligned arrays
once and reduces them with one vectorized min/sum/product pass over the
common-peer intersection.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry.batch import (
    intersection_fraction_batch,
    spheres_intersect_batch,
)
from repro.geometry.intersection import intersection_fraction, spheres_intersect
from repro.index import CandidateSet, ColumnBlock

#: Floor applied to the per-cluster fraction of an *intersecting* cluster so
#: a tangential touch never zeroes a peer out of the min-aggregation (which
#: would break the Theorem 4.1 no-false-dismissal guarantee). With the
#: log-space volume ratios, positive-volume overlaps always score their true
#: (possibly tiny) fraction; the floor only catches zero-volume tangencies
#: inside the shared :data:`repro.geometry.intersection.INTERSECTION_SLACK`
#: band.
MIN_INTERSECTING_FRACTION = 1e-9


def _fill_stats(stats: dict | None, candidates: int, pruned: int) -> None:
    if stats is not None:
        stats["candidates"] = candidates
        stats["pruned"] = pruned
        stats["surviving"] = candidates - pruned


def _candidate_columns(entries, d: int):
    """``(keys, radii, items, peer_ids, key_sq)`` for a candidate set.

    A :class:`repro.index.CandidateSet` yields its store columns zero-copy
    (one memoized fancy-index gather; raises ``StaleCandidateError`` when
    the store has mutated since the range query). A plain entry list is
    stacked fresh per call — no caching, so dropped entries can never be
    scored from a stale block.
    """
    if isinstance(entries, CandidateSet):
        return entries.columns()
    if isinstance(entries, ColumnBlock):
        return entries.columns()
    n = len(entries)
    keys = np.empty((n, d), dtype=np.float64)
    radii = np.empty(n, dtype=np.float64)
    items = np.empty(n, dtype=np.float64)
    peer_ids = np.empty(n, dtype=np.int64)
    for i, entry in enumerate(entries):
        keys[i] = entry.key
        radii[i] = entry.radius
        record = entry.value
        items[i] = record.items
        peer_ids[i] = record.peer_id
    return keys, radii, items, peer_ids, np.einsum("ij,ij->i", keys, keys)


def level_scores(
    entries: list,
    query_center: np.ndarray,
    query_radius: float,
    *,
    stats: dict | None = None,
) -> dict[int, float]:
    """Eq. 1 scores per peer for one level's index-query results (batched).

    Parameters
    ----------
    entries:
        The overlay range query's results at this level: a
        :class:`repro.index.CandidateSet` (consumed zero-copy from the
        shared level store) or a plain list of entries whose ``value``
        is a :class:`repro.core.results.ClusterRecord`.
    query_center / query_radius:
        The query sphere, already translated into this level's key space.
    stats:
        Optional dict the function fills with this level's Theorem 4.1
        filter accounting: ``candidates`` spheres examined, ``pruned``
        (genuinely disjoint from the query ball) and ``surviving``
        (``candidates - pruned``) — the pruning-power numbers traces and
        Figure-style analyses report per level.
    """
    query_center = np.asarray(query_center, dtype=np.float64)
    d = int(query_center.shape[0])
    n = len(entries)
    if n == 0:
        _fill_stats(stats, 0, 0)
        return {}

    keys, radii, items, peer_ids, key_sq = _candidate_columns(entries, d)
    # ||k - q||^2 = ||k||^2 - 2 k.q + ||q||^2 — one BLAS matvec instead of
    # materialising the (n, d) difference matrix (at d = 512 the subtraction
    # alone costs more than the whole Eq. 1 kernel).
    d2 = key_sq - 2.0 * (keys @ query_center)
    d2 += float(query_center @ query_center)
    np.maximum(d2, 0.0, out=d2)
    dists = np.sqrt(d2)
    intersecting = spheres_intersect_batch(radii, query_radius, dists)
    pruned = n - int(np.count_nonzero(intersecting))
    _fill_stats(stats, n, pruned)
    if pruned == n:
        return {}

    fractions = intersection_fraction_batch(
        radii[intersecting], query_radius, dists[intersecting], d
    )
    np.maximum(fractions, MIN_INTERSECTING_FRACTION, where=fractions <= 0.0,
               out=fractions)
    contributions = fractions * items[intersecting]
    unique_peers, inverse = np.unique(
        peer_ids[intersecting], return_inverse=True
    )
    totals = np.bincount(inverse, weights=contributions)
    return {
        int(peer): float(total)
        for peer, total in zip(unique_peers, totals)
    }


def level_scores_scalar(
    entries: list,
    query_center: np.ndarray,
    query_radius: float,
    *,
    stats: dict | None = None,
) -> dict[int, float]:
    """One-sphere-at-a-time Eq. 1 — the oracle for :func:`level_scores`.

    Same contract and same accounting as the batched path; kept as the
    ground truth for the parity tests and the scoring microbenchmark.
    """
    query_center = np.asarray(query_center, dtype=np.float64)
    d = query_center.shape[0]
    scores: dict[int, float] = {}
    pruned = 0
    for entry in entries:
        record = entry.value
        b = float(np.linalg.norm(entry.key - query_center))
        if not spheres_intersect(entry.radius, query_radius, b):
            pruned += 1
            continue  # genuinely disjoint: contributes nothing
        fraction = intersection_fraction(entry.radius, query_radius, b, d)
        if fraction <= 0.0:
            fraction = MIN_INTERSECTING_FRACTION
        scores[record.peer_id] = (
            scores.get(record.peer_id, 0.0) + fraction * record.items
        )
    _fill_stats(stats, len(entries), pruned)
    return scores


def aggregate_scores(
    per_level: dict, *, policy: str = "min"
) -> dict[int, float]:
    """Combine per-level score dicts into one global peer score.

    Parameters
    ----------
    per_level:
        Mapping ``level -> {peer_id: score}``.
    policy:
        ``"min"`` (paper default — peer must appear at every level),
        ``"sum"`` or ``"product"`` (ablations; both also require presence
        at every level to stay comparable with ``min``'s pruning).
    """
    if not per_level:
        return {}
    if policy not in ("min", "sum", "product"):
        raise ValidationError(
            f"unknown aggregation policy {policy!r}; use min, sum or product"
        )
    # Stack each level's dict into sorted (peers, scores) arrays once, then
    # reduce over the common-peer intersection in one vectorized pass.
    levels = []
    for scores in per_level.values():
        n = len(scores)
        peers = np.fromiter(scores.keys(), dtype=np.int64, count=n)
        values = np.fromiter(scores.values(), dtype=np.float64, count=n)
        order = np.argsort(peers)
        levels.append((peers[order], values[order]))
    common = levels[0][0]
    for peers, __ in levels[1:]:
        common = np.intersect1d(common, peers, assume_unique=True)
        if common.size == 0:
            return {}
    stacked = np.empty((len(levels), common.size), dtype=np.float64)
    for i, (peers, values) in enumerate(levels):
        stacked[i] = values[np.searchsorted(peers, common)]
    if policy == "min":
        reduced = stacked.min(axis=0)
    elif policy == "sum":
        reduced = stacked.sum(axis=0)
    else:
        reduced = np.prod(stacked, axis=0)
    return {
        int(peer): float(score) for peer, score in zip(common, reduced)
    }


def rank_peers(aggregated: dict[int, float]) -> list[tuple[int, float]]:
    """Peers by descending score (ties broken by peer id for determinism)."""
    return sorted(aggregated.items(), key=lambda kv: (-kv[1], kv[0]))


def partial_confidence(
    levels_answered: int,
    levels_total: int,
    peers_answered: int,
    peers_attempted: int,
) -> float:
    """Confidence fraction of a partially-answered query (fault contract).

    Under message loss a query no longer gets all the evidence it asked
    for; instead of raising, the query pipeline scores what arrived and
    reports ``confidence = (levels_answered / levels_total) *
    (peers_answered / peers_attempted)`` — 1.0 exactly when nothing was
    lost. A denominator of zero contributes 1.0 (nothing was attempted,
    so nothing was missed).

    Losing index levels keeps the Theorem 4.1 direction of error safe:
    min-aggregation over *fewer* levels can only admit extra candidate
    peers, never prune a true answer's peer. Losing peer responses is
    the lossy part — recall degrades in proportion, which is what the
    resilience evaluation scenario measures.
    """
    if levels_answered > levels_total or peers_answered > peers_attempted:
        raise ValidationError(
            "answered counts cannot exceed attempted counts"
        )
    level_frac = (
        levels_answered / levels_total if levels_total > 0 else 1.0
    )
    peer_frac = (
        peers_answered / peers_attempted if peers_attempted > 0 else 1.0
    )
    return float(level_frac * peer_frac)
