"""Peer relevance scoring (paper Eq. 1) and cross-level aggregation.

At each level ``l``, a peer's score sums, over its clusters found by the
index query, the volume fraction of the cluster sphere covered by the query
sphere times the cluster's item count::

    Score_l(p) = sum_c  Vol(sphere_c ∩ sphere_q) / Vol(sphere_c) * items_c

Cross-level aggregation uses the paper's *minimum-score* policy by default
(Section 3.2): a peer must look relevant at **every** level; Theorem 4.1
guarantees this prunes no true range-query answers. ``sum`` and
``product`` aggregators are provided for the ablation benchmarks.
"""

from __future__ import annotations

import math

import numpy as np

from repro.exceptions import ValidationError
from repro.geometry.intersection import intersection_fraction

#: Floor applied to the per-cluster fraction of an *intersecting* cluster so
#: a tangential touch never zeroes a peer out of the min-aggregation (which
#: would break the Theorem 4.1 no-false-dismissal guarantee).
MIN_INTERSECTING_FRACTION = 1e-9


def level_scores(
    entries: list,
    query_center: np.ndarray,
    query_radius: float,
    *,
    stats: dict | None = None,
) -> dict[int, float]:
    """Eq. 1 scores per peer for one level's index-query results.

    Parameters
    ----------
    entries:
        :class:`repro.overlay.base.StoredEntry` objects returned by the
        overlay range query at this level; each ``value`` must be a
        :class:`repro.core.results.ClusterRecord`.
    query_center / query_radius:
        The query sphere, already translated into this level's key space.
    stats:
        Optional dict the function fills with this level's Theorem 4.1
        filter accounting: ``candidates`` spheres examined, ``pruned``
        (genuinely disjoint from the query ball) and ``surviving``
        (``candidates - pruned``) — the pruning-power numbers traces and
        Figure-style analyses report per level.
    """
    query_center = np.asarray(query_center, dtype=np.float64)
    d = query_center.shape[0]
    scores: dict[int, float] = {}
    pruned = 0
    for entry in entries:
        record = entry.value
        b = float(np.linalg.norm(entry.key - query_center))
        fraction = intersection_fraction(entry.radius, query_radius, b, d)
        if fraction <= 0.0:
            if b > entry.radius + query_radius + 1e-12:
                pruned += 1
                continue  # genuinely disjoint: contributes nothing
            fraction = MIN_INTERSECTING_FRACTION
        scores[record.peer_id] = (
            scores.get(record.peer_id, 0.0) + fraction * record.items
        )
    if stats is not None:
        stats["candidates"] = len(entries)
        stats["pruned"] = pruned
        stats["surviving"] = len(entries) - pruned
    return scores


def aggregate_scores(
    per_level: dict, *, policy: str = "min"
) -> dict[int, float]:
    """Combine per-level score dicts into one global peer score.

    Parameters
    ----------
    per_level:
        Mapping ``level -> {peer_id: score}``.
    policy:
        ``"min"`` (paper default — peer must appear at every level),
        ``"sum"`` or ``"product"`` (ablations; both also require presence
        at every level to stay comparable with ``min``'s pruning).
    """
    if not per_level:
        return {}
    if policy not in ("min", "sum", "product"):
        raise ValidationError(
            f"unknown aggregation policy {policy!r}; use min, sum or product"
        )
    level_dicts = list(per_level.values())
    common = set(level_dicts[0])
    for scores in level_dicts[1:]:
        common &= set(scores)
    aggregated: dict[int, float] = {}
    for peer_id in common:
        values = [scores[peer_id] for scores in level_dicts]
        if policy == "min":
            aggregated[peer_id] = min(values)
        elif policy == "sum":
            aggregated[peer_id] = sum(values)
        else:
            aggregated[peer_id] = math.prod(values)
    return aggregated


def rank_peers(aggregated: dict[int, float]) -> list[tuple[int, float]]:
    """Peers by descending score (ties broken by peer id for determinism)."""
    return sorted(aggregated.items(), key=lambda kv: (-kv[1], kv[0]))
