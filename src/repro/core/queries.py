"""Range and point query processing (paper Section 4.1).

A range query runs in two phases:

* **Index phase** — the query is translated into each published wavelet
  subspace (Theorem 3.1 scales its radius by ``2^-(log d - l)/2``), an
  overlay range query collects every cluster sphere the scaled query
  intersects, and Eq. 1 scores each peer; scores aggregate across levels
  by minimum. Theorem 4.1 guarantees no true answer's peer is pruned.
* **Retrieval phase** — the top-scoring peers are contacted directly and
  filter their items with the *original* query, so precision is 100%;
  recall is bounded only by how many peers are contacted.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.core.results import RangeQueryResult, sort_items_by_distance
from repro.core.scoring import (
    aggregate_scores,
    level_scores,
    partial_confidence,
    rank_peers,
)
from repro.exceptions import EmptyNetworkError, QueryError
from repro.faults.resilience import reliable_send, tombstone_peer
from repro.net.messages import MessageKind, vector_message_size
from repro.obs import flight as obs_flight
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.utils.validation import check_positive, check_vector
from repro.wavelets.bounds import key_space_radius, radius_scale, to_unit_cube
from repro.wavelets.multiresolution import decompose


@lru_cache(maxsize=512)
def _translate_query_cached(levels: tuple, query_bytes: bytes) -> tuple:
    """Decompose a query and map it into each level's key space, memoized.

    The key is the raw query bytes plus the level tuple, so repeated
    queries with the same vector — the k-NN heuristic followed by its
    exact refinement, recall sweeps re-running one query against many
    ``max_peers`` settings — skip the DWT and affine mapping entirely.
    Cached arrays are marked read-only: every consumer treats them as
    values, and the flag turns an accidental in-place edit into an error
    instead of silent cache corruption.
    """
    query = np.frombuffer(query_bytes, dtype=np.float64)
    decomposition = decompose(query)
    keys = []
    for level in levels:
        key = np.clip(to_unit_cube(decomposition[level], level), 0.0, 1.0)
        key.setflags(write=False)
        keys.append(key)
    return tuple(keys)


def _query_keys(network, query: np.ndarray) -> dict:
    """Translate ``query`` into each published level's key space.

    Shared by the range and k-NN paths (and by the k-NN exact refinement's
    repeated range queries) through a per-query LRU cache.
    """
    query = np.ascontiguousarray(query, dtype=np.float64)
    levels = tuple(network.levels)
    return dict(zip(levels, _translate_query_cached(levels, query.tobytes())))


def _default_origin(network) -> int:
    for peer_id, peer in network.peers.items():
        if peer.online:
            return peer_id
    raise EmptyNetworkError("network has no online peers")


def _level_query_with_retries(overlay, origin_node, key, radius, injector):
    """One level's overlay range query under a fault injector.

    The overlay walk itself is synchronous; what loss can claim is the
    aggregated reply flowing back to the querier. Each lost reply costs a
    timeout, a capped-backoff wait, and a full re-query (hops re-charged)
    until the retry budget runs out. Returns ``(receipt_or_None, hops,
    attempts)`` — ``None`` means the level went unanswered and the query
    must degrade.
    """
    policy = injector.plan.retry
    hops = 0
    for attempt in range(1, policy.max_attempts + 1):
        wait = policy.wait_before_attempt(attempt)
        if wait > 0.0:
            injector.count("retries")
            scheduler = overlay.fabric.scheduler
            scheduler.run_until(scheduler.now + wait)
        receipt = overlay.range_query(origin_node, key, radius)
        hops += receipt.total_hops
        if not injector.index_response_lost():
            return receipt, hops, attempt
        injector.count("timeouts")
    return None, hops, policy.max_attempts


def _premask_levels(network, keys, epsilon: float) -> dict | None:
    """Fan the per-level intersection masks out to the shard workers.

    Returns ``{level index: mask}`` when the network runs a parallel
    engine, else ``None`` (the serial path computes masks inline inside
    each overlay — byte-identical to the pre-engine code). One batched
    exchange covers every mask-capable level, so the whole index phase
    costs a single epoch barrier; the masks are consumed by the same
    flood walk either way, and min-aggregation stays the only join
    point, running after this barrier.

    Skipped under an active fault injector: the faulted path re-runs
    level queries with retries, and a premask computed before the
    retry loop could go stale against mid-query store mutations.
    """
    engine = getattr(network, "engine", None)
    if engine is None or not engine.parallel:
        return None
    injector = getattr(network.fabric, "faults", None)
    if injector is not None and not injector.passthrough:
        return None
    tasks = []
    task_levels = []
    for index, level in enumerate(network.levels):
        overlay = network.overlays[level]
        if not getattr(overlay, "supports_premask", False):
            continue
        scaled = epsilon * radius_scale(network.dimensionality, level)
        radius = key_space_radius(scaled, level)
        tasks.append((index, keys[level], radius))
        task_levels.append(index)
    if not tasks:
        return None
    masks = engine.masks(tasks)
    return dict(zip(task_levels, masks))


def index_phase(
    network,
    query: np.ndarray,
    epsilon: float,
    *,
    origin_peer: int,
    aggregation: str | None = None,
    info: dict | None = None,
) -> tuple[dict[int, float], int]:
    """Run the index phase; returns (aggregated peer scores, index hops).

    ``info``, when given, is filled with the degradation accounting the
    fault-aware callers need: ``levels_total``, ``levels_answered`` (a
    level goes unanswered when its index reply is lost despite retries),
    and ``index_attempts``. On a clean fabric every level answers on the
    first attempt and the behaviour is identical to the pre-fault code.
    """
    recorder = obs_trace.state.recorder
    injector = getattr(network.fabric, "faults", None)
    with recorder.span("translate", levels=len(network.levels)):
        keys = _query_keys(network, query)
    premasks = _premask_levels(network, keys, epsilon)
    per_level: dict = {}
    hops = 0
    levels_answered = 0
    index_attempts = 0
    for index, level in enumerate(network.levels):
        overlay = network.overlays[level]
        origin_node = network.overlay_node(level, origin_peer)
        scaled = epsilon * radius_scale(network.dimensionality, level)
        radius = key_space_radius(scaled, level)
        with recorder.span(
            f"sphere_filter[{level}]", level=str(level)
        ) as span:
            if injector is None or injector.passthrough:
                if premasks is not None and index in premasks:
                    receipt = overlay.range_query(
                        origin_node, keys[level], radius,
                        mask=premasks[index],
                    )
                else:
                    receipt = overlay.range_query(
                        origin_node, keys[level], radius
                    )
                level_hops, attempts = receipt.total_hops, 1
            else:
                receipt, level_hops, attempts = _level_query_with_retries(
                    overlay, origin_node, keys[level], radius, injector
                )
            hops += level_hops
            index_attempts += attempts
            if receipt is None:
                # Level reply lost despite retries: score without it.
                # Min-aggregation over fewer levels only *admits* extra
                # candidates (Theorem 4.1 direction stays safe).
                span.set(radius=radius, unanswered=True, attempts=attempts)
                continue
            levels_answered += 1
            stats: dict = {}
            per_level[level] = level_scores(
                receipt.entries, keys[level], radius, stats=stats
            )
            span.set(
                radius=radius,
                candidates=stats["candidates"],
                pruned=stats["pruned"],
                surviving=stats["surviving"],
                peers=len(per_level[level]),
                routing_hops=receipt.routing_hops,
                flood_hops=receipt.flood_hops,
            )
    if info is not None:
        info["levels_total"] = len(network.levels)
        info["levels_answered"] = levels_answered
        info["index_attempts"] = index_attempts
    policy = aggregation or network.config.aggregation
    with recorder.span("score", policy=policy) as span:
        aggregated = aggregate_scores(per_level, policy=policy)
        if recorder.enabled:
            candidates = set()
            for scores in per_level.values():
                candidates.update(scores)
            values = sorted(aggregated.values())
            span.set(
                peers_scored=len(aggregated),
                peers_pruned=len(candidates) - len(aggregated),
                score_min=values[0] if values else 0.0,
                score_max=values[-1] if values else 0.0,
                score_mean=(
                    sum(values) / len(values) if values else 0.0
                ),
            )
    return aggregated, hops


def contact_peers(
    network,
    ranked: list[tuple[int, float]],
    *,
    origin_peer: int,
    max_peers: int | None,
) -> tuple[list[int], int, list[int]]:
    """Charge direct-contact requests to the fabric.

    Returns ``(reached peer ids, request messages, failed peer ids)``.
    Direct retrieval is modelled as one request per contacted peer over
    the MANET radio (peers in a Hyper-M scenario are within a shared
    space; no overlay routing is needed once the address is known).
    Offline peers (MANET churn) still consume a contact attempt — the
    querier learns of the failure only after the request times out — but
    return nothing. Response traffic is charged separately, sized by the
    items actually returned (:func:`charge_response`).

    Under a fault injector each request goes through
    :func:`repro.faults.resilience.reliable_send` (timeout, capped
    backoff, retry budget), failures feed the injector's failure
    detector, and peers past the consecutive-failure threshold get their
    dangling spheres tombstoned out of the index
    (:func:`repro.faults.resilience.tombstone_peer`).

    With an :class:`~repro.overlay.adapt.AdaptationController` attached
    (``network.adaptation``), the flat unicast fan-out becomes a
    quality-scored relay tree: the origin contacts the top-quality
    peers, each of which forwards the request to its assigned children —
    the origin's radio pays for ``relay_fanout`` frames instead of one
    per target. A relay that cannot be reached (lost request or offline
    device) degrades gracefully: its children fall back to direct
    contact from the origin, so the reached set never shrinks versus the
    flat scheme. Retrieval endpoints may also move off level 0 to each
    peer's least-loaded overlay interface.
    """
    injector = getattr(network.fabric, "faults", None)
    controller = getattr(network, "adaptation", None)
    attempts = [peer_id for peer_id, __ in ranked]
    if max_peers is not None:
        attempts = attempts[:max_peers]
    level0 = network.levels[0]
    if controller is not None and controller.config.balance_interfaces:
        node_of = controller.retrieval_node
    else:
        def node_of(peer_id: int) -> int:
            return network.overlay_node(level0, peer_id)

    origin_node = node_of(origin_peer)
    request_size = vector_message_size(network.dimensionality, scalars=2)
    messages = 0
    reached: list[int] = []
    failed: list[int] = []

    def deliver(source_node: int, peer_id: int, size: int) -> bool:
        """Send one request frame; returns delivery, accrues messages."""
        nonlocal messages
        target_node = node_of(peer_id)
        if target_node == source_node:
            return True
        if injector is None:
            network.fabric.transmit(
                source_node, target_node, MessageKind.RETRIEVE, size
            )
            messages += 1
            return True
        outcome = reliable_send(
            network.fabric, source_node, target_node,
            MessageKind.RETRIEVE, size,
        )
        messages += outcome.attempts
        return outcome.delivered

    def settle(peer_id: int, delivered: bool) -> bool:
        """Classify one contact attempt after its request transmission."""
        if not delivered:
            failed.append(peer_id)  # request never got through
            if injector is not None:
                injector.note_contact_failure(peer_id)
            return False
        if not network.peers[peer_id].online:
            failed.append(peer_id)  # request lost to a departed device
            if injector is not None:
                injector.note_contact_failure(peer_id)
            return False
        reached.append(peer_id)
        if injector is not None:
            injector.note_contact_success(peer_id)
        return True

    if controller is None:
        for peer_id in attempts:
            settle(peer_id, deliver(origin_node, peer_id, request_size))
    else:
        for relay_id, children in controller.relay_plan(attempts):
            relay_size = vector_message_size(
                network.dimensionality, scalars=2 + len(children)
            )
            relay_ok = settle(
                relay_id, deliver(origin_node, relay_id, relay_size)
            )
            relay_node = node_of(relay_id)
            for child_id in children:
                source = relay_node if relay_ok else origin_node
                settle(child_id, deliver(source, child_id, request_size))
    if injector is not None:
        for suspect in injector.drain_suspects():
            tombstone_peer(network, suspect)
    return reached, messages, failed


def charge_response(network, origin_peer: int, peer_id: int, n_items: int) -> int:
    """Charge one response message carrying ``n_items`` result vectors.

    Each item ships its full vector plus id/distance metadata; an empty
    response is still an acknowledgement (header-sized). Returns how many
    messages were charged (0 when the peer answers itself).
    """
    level0 = network.levels[0]
    origin_node = network.overlay_node(level0, origin_peer)
    target_node = network.overlay_node(level0, peer_id)
    if target_node == origin_node:
        return 0
    size = vector_message_size(
        network.dimensionality * max(n_items, 0), scalars=2 * n_items
    )
    network.fabric.transmit(target_node, origin_node, MessageKind.DATA, size)
    return 1


def send_response(
    network, origin_peer: int, peer_id: int, n_items: int, *, items=None
) -> tuple[bool, int]:
    """Fault-aware :func:`charge_response`: ``(delivered, messages)``.

    With no injector installed this is exactly one charged response
    message (always delivered). With one, the responding peer retries per
    the plan's :class:`~repro.faults.plan.RetryPolicy`; an undelivered
    response means the querier never sees the items — the caller drops
    them and degrades the query's confidence.

    With an adaptation controller attached and ``items`` provided, the
    response is *delta-encoded* per (responder, querier) pair: item
    vectors the querier already received from this responder ship as
    scalar ids + distances only (the querier re-uses its cached copies),
    so a hot peer answering the same hot queries repeatedly stops
    re-paying the full vector payload every round. Delivery is recorded
    only when the frame actually arrives.
    """
    injector = getattr(network.fabric, "faults", None)
    controller = getattr(network, "adaptation", None)
    level0 = network.levels[0]
    if controller is not None and controller.config.balance_interfaces:
        origin_node = controller.retrieval_node(origin_peer)
        target_node = controller.retrieval_node(peer_id)
    else:
        origin_node = network.overlay_node(level0, origin_peer)
        target_node = network.overlay_node(level0, peer_id)
    if target_node == origin_node:
        return True, 0
    vectors = max(n_items, 0)
    new_ids = None
    if (
        controller is not None
        and controller.config.dedup_responses
        and items is not None
    ):
        new_ids = controller.filter_new(
            peer_id, origin_peer, [int(item.item_id) for item in items]
        )
        vectors = len(new_ids)
    size = vector_message_size(
        network.dimensionality * vectors, scalars=2 * max(n_items, 0)
    )
    if injector is None:
        network.fabric.transmit(
            target_node, origin_node, MessageKind.DATA, size
        )
        delivered, attempts = True, 1
    else:
        outcome = reliable_send(
            network.fabric, target_node, origin_node, MessageKind.DATA, size
        )
        delivered, attempts = outcome.delivered, outcome.attempts
    if delivered and new_ids is not None:
        controller.mark_delivered(peer_id, origin_peer, new_ids)
    return delivered, attempts


def retrieval_phase(
    network,
    ranked: list[tuple[int, float]],
    query: np.ndarray,
    epsilon: float,
    *,
    origin_peer: int,
    max_peers: int | None,
) -> tuple[list, list[int], list[int], int, int]:
    """Contact ranked peers and collect their locally-filtered items.

    The retrieval half of a range query, shared verbatim between
    :func:`range_query` and the batched serving tier
    (:mod:`repro.serve`), so both paths charge identical traffic and
    return identical item sets. Returns ``(items, answered, failed,
    messages, attempted)``.
    """
    recorder = obs_trace.state.recorder
    injector = getattr(network.fabric, "faults", None)
    items = []
    answered: list[int] = []
    with recorder.span("contact_peers") as contact_span:
        contacted, messages, failed = contact_peers(
            network, ranked, origin_peer=origin_peer, max_peers=max_peers
        )
        attempted = len(contacted) + len(failed)
        for peer_id in contacted:
            found = network.peers[peer_id].range_search(query, epsilon)
            delivered, response_messages = send_response(
                network, origin_peer, peer_id, len(found), items=found
            )
            messages += response_messages
            if not delivered:
                # Request arrived, but the reply was lost despite
                # retries: the items never reach the querier.
                failed.append(peer_id)
                injector.note_contact_failure(peer_id)
                continue
            answered.append(peer_id)
            items.extend(found)
        contact_span.set(
            ranked=len(ranked),
            reached=len(answered),
            failed=len(failed),
            messages=messages,
            items=len(items),
        )
    return items, answered, failed, messages, attempted


def range_query(
    network,
    query: np.ndarray,
    epsilon: float,
    *,
    max_peers: int | None = None,
    origin_peer: int | None = None,
    aggregation: str | None = None,
) -> RangeQueryResult:
    """Retrieve all items within ``epsilon`` of ``query`` (best effort).

    Parameters
    ----------
    network:
        A published :class:`repro.core.network.HyperMNetwork`.
    query:
        Query vector in the original ``d``-dimensional unit cube.
    epsilon:
        Query radius in the original space.
    max_peers:
        Contact at most this many of the top-scoring peers (the paper's
        Figure 10a x-axis); ``None`` contacts every positive-score peer.
    origin_peer:
        Peer issuing the query (defaults to the first peer).
    aggregation:
        Override the cross-level score policy for this query.
    """
    query = check_vector(query, "query", dim=network.dimensionality)
    check_positive(epsilon, "epsilon", strict=False)
    origin = _default_origin(network) if origin_peer is None else origin_peer
    if origin not in network.peers:
        raise QueryError(f"unknown origin peer {origin}")
    if not network.peers[origin].online:
        raise QueryError(f"origin peer {origin} has left the network")

    recorder = obs_trace.state.recorder
    injector = getattr(network.fabric, "faults", None)
    fault_info: dict = {}
    with recorder.span(
        "query", type="range", epsilon=float(epsilon), origin=origin
    ) as query_span, obs_flight.state.recorder.operation(
        "query", type="range", origin=origin
    ) as flight_op:
        aggregated, index_hops = index_phase(
            network, query, epsilon, origin_peer=origin,
            aggregation=aggregation, info=fault_info,
        )
        ranked = rank_peers(aggregated)
        items, answered, failed, messages, attempted = retrieval_phase(
            network, ranked, query, epsilon,
            origin_peer=origin, max_peers=max_peers,
        )
        confidence = partial_confidence(
            fault_info.get("levels_answered", len(network.levels)),
            fault_info.get("levels_total", len(network.levels)),
            len(answered),
            attempted,
        )
        degraded = confidence < 1.0
        query_span.set(
            index_hops=index_hops,
            items=len(items),
            peers_contacted=len(answered),
        )
        flight_op.set(
            index_hops=index_hops,
            items=len(items),
            peers_contacted=len(answered),
        )
    metrics = obs_registry.metrics()
    metrics.counter("query.range.count").inc()
    metrics.counter("query.range.items").inc(len(items))
    metrics.counter("query.range.failed_contacts").inc(len(failed))
    metrics.histogram("query.range.index_hops").observe(index_hops)
    metrics.histogram("query.range.peers_contacted").observe(len(answered))
    metrics.histogram("query.range.retrieval_messages").observe(messages)
    if injector is not None and not injector.passthrough:
        # Fault-only telemetry: recorded solely when faults can actually
        # fire, so null-plan metric snapshots stay byte-identical.
        metrics.histogram("query.range.confidence").observe(confidence)
        if degraded:
            metrics.counter("query.range.degraded").inc()
    controller = getattr(network, "adaptation", None)
    if controller is not None:
        # Epoch tick last: any zone rebalance or replication retune the
        # controller triggers can no longer affect this query's results.
        controller.note_query()
    return RangeQueryResult(
        items=sort_items_by_distance(items),
        peer_scores=aggregated,
        peers_contacted=answered,
        failed_contacts=failed,
        index_hops=index_hops,
        retrieval_messages=messages,
        confidence=confidence,
        degraded=degraded,
    )


def point_query(
    network,
    query: np.ndarray,
    *,
    origin_peer: int | None = None,
    max_peers: int | None = None,
) -> RangeQueryResult:
    """Exact-match query: a range query of radius zero.

    Index-phase clusters must *contain* the query point at every level;
    contacted peers return items at distance 0.
    """
    return range_query(
        network, query, 0.0, max_peers=max_peers, origin_peer=origin_peer
    )
