"""Hyper-M core: publish cluster-sphere summaries, answer similarity queries.

The flow (paper Figures 2 and 3):

1. :class:`repro.core.peer.HyperMPeer` holds a peer's items.
2. :class:`repro.core.network.HyperMNetwork` runs one overlay per wavelet
   level; :meth:`~repro.core.network.HyperMNetwork.publish_all` decomposes,
   clusters, and inserts each peer's summaries (steps *i1*–*i3*).
3. :mod:`repro.core.queries` resolves point/range queries and
   :mod:`repro.core.knn` the k-NN heuristic (steps *s1*–*s3*), scoring
   peers with Eq. 1 via :mod:`repro.core.scoring`.

Baselines used in the paper's comparisons live in
:mod:`repro.core.baselines`.
"""

from repro.core.baselines import CentralizedIndex, NaiveCANPublisher, TwoDimCANPublisher
from repro.core.network import HyperMConfig, HyperMNetwork
from repro.core.peer import HyperMPeer
from repro.core.results import (
    ClusterRecord,
    DisseminationReport,
    KnnResult,
    RangeQueryResult,
    RetrievedItem,
)
from repro.core.scoring import aggregate_scores, level_scores
from repro.core.serialization import load_summary, save_summary

__all__ = [
    "HyperMPeer",
    "HyperMNetwork",
    "HyperMConfig",
    "ClusterRecord",
    "RetrievedItem",
    "RangeQueryResult",
    "KnnResult",
    "DisseminationReport",
    "level_scores",
    "aggregate_scores",
    "NaiveCANPublisher",
    "TwoDimCANPublisher",
    "CentralizedIndex",
    "save_summary",
    "load_summary",
]
