"""Persist and restore peer summaries (JSON).

Building a summary — the wavelet decomposition plus one k-means run per
subspace — is the only computationally heavy step on a mobile device. The
paper's scenarios recur (the same commuters meet every morning; the same
attendees return after the coffee break), so a peer that persists its
summaries can rejoin a fresh overlay and publish *immediately*, skipping
step *i1*/*i2* entirely.

The format is plain JSON (no pickle: summaries may be exchanged between
untrusted devices).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.clustering.spheres import ClusterSphere
from repro.clustering.summaries import PeerSummary
from repro.exceptions import ValidationError
from repro.wavelets.multiresolution import Level

#: Format tag written into every file; bump on incompatible changes.
FORMAT_VERSION = 1


def _level_to_token(level: Level) -> str:
    return str(level)


def _level_from_token(token: str) -> Level:
    if token == "A":
        return Level.approximation()
    if token.startswith("D") and token[1:].isdigit():
        return Level.detail(int(token[1:]))
    raise ValidationError(f"unknown level token {token!r}")


def summary_to_dict(summary: PeerSummary) -> dict:
    """Convert a :class:`PeerSummary` into a JSON-safe dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "dimensionality": summary.dimensionality,
        "levels": [_level_to_token(level) for level in summary.levels],
        "spheres": {
            _level_to_token(level): [
                {
                    "centroid": sphere.centroid.tolist(),
                    "radius": sphere.radius,
                    "items": sphere.items,
                }
                for sphere in spheres
            ]
            for level, spheres in summary.spheres.items()
        },
        "labels": {
            _level_to_token(level): labels.tolist()
            for level, labels in summary.labels.items()
        },
    }


def summary_from_dict(payload: dict) -> PeerSummary:
    """Rebuild a :class:`PeerSummary` from :func:`summary_to_dict` output."""
    if not isinstance(payload, dict):
        raise ValidationError("summary payload must be a dict")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported summary format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        levels = tuple(
            _level_from_token(token) for token in payload["levels"]
        )
        spheres = {
            _level_from_token(token): [
                ClusterSphere(
                    centroid=np.asarray(record["centroid"], dtype=np.float64),
                    radius=float(record["radius"]),
                    items=int(record["items"]),
                )
                for record in records
            ]
            for token, records in payload["spheres"].items()
        }
        labels = {
            _level_from_token(token): np.asarray(values, dtype=np.int64)
            for token, values in payload["labels"].items()
        }
        summary = PeerSummary(
            dimensionality=int(payload["dimensionality"]),
            levels=levels,
            spheres=spheres,
            labels=labels,
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed summary payload: {exc}") from exc
    _validate_summary(summary)
    return summary


def _validate_summary(summary: PeerSummary) -> None:
    """Consistency checks on a deserialised summary."""
    for level in summary.levels:
        if level not in summary.spheres:
            raise ValidationError(f"summary missing spheres for {level}")
        for sphere in summary.spheres[level]:
            if sphere.dimensionality != level.dimensionality:
                raise ValidationError(
                    f"sphere dimensionality {sphere.dimensionality} does "
                    f"not match level {level}"
                )


def save_summary(summary: PeerSummary, path) -> None:
    """Write a summary to ``path`` as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(summary_to_dict(summary)))


def load_summary(path) -> PeerSummary:
    """Read a summary previously written by :func:`save_summary`."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    return summary_from_dict(payload)
