"""Persist and restore peer summaries and level-store snapshots (JSON).

Building a summary — the wavelet decomposition plus one k-means run per
subspace — is the only computationally heavy step on a mobile device. The
paper's scenarios recur (the same commuters meet every morning; the same
attendees return after the coffee break), so a peer that persists its
summaries can rejoin a fresh overlay and publish *immediately*, skipping
step *i1*/*i2* entirely.

:func:`level_store_to_dict` / :func:`level_store_from_dict` snapshot one
level's columnar :class:`repro.index.LevelStore`. The stable entry ids are
part of the format: replication is multi-membership of one row, and the
network's dedup accounting is keyed by entry id, so a restored store must
present the same ids (``LevelStore.restore``) — not freshly minted ones —
for cross-snapshot references to stay valid.

The format is plain JSON (no pickle: summaries may be exchanged between
untrusted devices).
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.clustering.spheres import ClusterSphere
from repro.clustering.summaries import PeerSummary
from repro.core.results import ClusterRecord
from repro.exceptions import ValidationError
from repro.index import LevelStore
from repro.wavelets.multiresolution import Level

#: Format tag written into every file; bump on incompatible changes.
FORMAT_VERSION = 1

#: Format tag for level-store snapshots; bump on incompatible changes.
STORE_FORMAT_VERSION = 1


def _level_to_token(level: Level) -> str:
    return str(level)


def _level_from_token(token: str) -> Level:
    if token == "A":
        return Level.approximation()
    if token.startswith("D") and token[1:].isdigit():
        return Level.detail(int(token[1:]))
    raise ValidationError(f"unknown level token {token!r}")


def summary_to_dict(summary: PeerSummary) -> dict:
    """Convert a :class:`PeerSummary` into a JSON-safe dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "dimensionality": summary.dimensionality,
        "levels": [_level_to_token(level) for level in summary.levels],
        "spheres": {
            _level_to_token(level): [
                {
                    "centroid": sphere.centroid.tolist(),
                    "radius": sphere.radius,
                    "items": sphere.items,
                }
                for sphere in spheres
            ]
            for level, spheres in summary.spheres.items()
        },
        "labels": {
            _level_to_token(level): labels.tolist()
            for level, labels in summary.labels.items()
        },
    }


def summary_from_dict(payload: dict) -> PeerSummary:
    """Rebuild a :class:`PeerSummary` from :func:`summary_to_dict` output."""
    if not isinstance(payload, dict):
        raise ValidationError("summary payload must be a dict")
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValidationError(
            f"unsupported summary format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    try:
        levels = tuple(
            _level_from_token(token) for token in payload["levels"]
        )
        spheres = {
            _level_from_token(token): [
                ClusterSphere(
                    centroid=np.asarray(record["centroid"], dtype=np.float64),
                    radius=float(record["radius"]),
                    items=int(record["items"]),
                )
                for record in records
            ]
            for token, records in payload["spheres"].items()
        }
        labels = {
            _level_from_token(token): np.asarray(values, dtype=np.int64)
            for token, values in payload["labels"].items()
        }
        summary = PeerSummary(
            dimensionality=int(payload["dimensionality"]),
            levels=levels,
            spheres=spheres,
            labels=labels,
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed summary payload: {exc}") from exc
    _validate_summary(summary)
    return summary


def _validate_summary(summary: PeerSummary) -> None:
    """Consistency checks on a deserialised summary."""
    for level in summary.levels:
        if level not in summary.spheres:
            raise ValidationError(f"summary missing spheres for {level}")
        for sphere in summary.spheres[level]:
            if sphere.dimensionality != level.dimensionality:
                raise ValidationError(
                    f"sphere dimensionality {sphere.dimensionality} does "
                    f"not match level {level}"
                )


def _record_to_dict(value: object) -> dict:
    if isinstance(value, ClusterRecord):
        return {
            "kind": "cluster",
            "peer_id": value.peer_id,
            "items": value.items,
            "level_name": value.level_name,
        }
    raise ValidationError(
        f"cannot serialise entry value of type {type(value).__name__}; "
        "level-store snapshots carry ClusterRecord payloads"
    )


def _record_from_dict(payload: dict) -> ClusterRecord:
    if payload.get("kind") != "cluster":
        raise ValidationError(
            f"unknown entry value kind {payload.get('kind')!r}"
        )
    return ClusterRecord(
        peer_id=int(payload["peer_id"]),
        items=int(payload["items"]),
        level_name=str(payload["level_name"]),
    )


def level_store_to_dict(store: LevelStore) -> dict:
    """Snapshot one level's live entries as a JSON-safe dictionary.

    Tombstoned rows are dropped (a snapshot is implicitly compacted);
    live rows keep their stable entry ids so references keyed by entry id
    (replication dedup, charge accounting) survive the round trip.
    """
    entries = []
    for row in store.live_rows():
        entries.append(
            {
                "entry_id": store.entry_id_of(int(row)),
                "key": store.key_of(int(row)).tolist(),
                "radius": store.radius_of(int(row)),
                "value": _record_to_dict(store.value_of(int(row))),
            }
        )
    return {
        "store_format_version": STORE_FORMAT_VERSION,
        "dimensionality": store.dimensionality,
        "next_entry_id": store.next_entry_id,
        "entries": entries,
    }


def level_store_from_dict(payload: dict) -> LevelStore:
    """Rebuild a :class:`LevelStore` from :func:`level_store_to_dict` output.

    Entry ids are restored verbatim via :meth:`LevelStore.restore`, and the
    id allocator resumes past the snapshot's high-water mark so new entries
    can never collide with restored ones. Restored rows start with no
    memberships; overlay reconstruction re-attaches holders.
    """
    if not isinstance(payload, dict):
        raise ValidationError("level-store payload must be a dict")
    version = payload.get("store_format_version")
    if version != STORE_FORMAT_VERSION:
        raise ValidationError(
            f"unsupported level-store format version {version!r} "
            f"(expected {STORE_FORMAT_VERSION})"
        )
    try:
        store = LevelStore(int(payload["dimensionality"]))
        for record in payload["entries"]:
            store.restore(
                int(record["entry_id"]),
                np.asarray(record["key"], dtype=np.float64),
                float(record["radius"]),
                _record_from_dict(record["value"]),
            )
        floor = int(payload.get("next_entry_id", 0))
    except (KeyError, TypeError) as exc:
        raise ValidationError(
            f"malformed level-store payload: {exc}"
        ) from exc
    store.reserve_ids_through(floor)
    return store


def save_level_store(store: LevelStore, path) -> None:
    """Write a level-store snapshot to ``path`` as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(level_store_to_dict(store)))


def load_level_store(path) -> LevelStore:
    """Read a snapshot previously written by :func:`save_level_store`."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    return level_store_from_dict(payload)


def save_summary(summary: PeerSummary, path) -> None:
    """Write a summary to ``path`` as JSON."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(summary_to_dict(summary)))


def load_summary(path) -> PeerSummary:
    """Read a summary previously written by :func:`save_summary`."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ValidationError(f"{path} is not valid JSON: {exc}") from exc
    return summary_from_dict(payload)
