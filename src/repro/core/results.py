"""Result and record types shared across the Hyper-M core."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class ClusterRecord:
    """What a published cluster-sphere entry carries as its payload.

    Attributes
    ----------
    peer_id:
        The peer whose items the cluster summarises — the unit of the
        relevance score (Eq. 1) and the address for direct retrieval.
    items:
        Item count (the paper's ``items_c``).
    level_name:
        The wavelet subspace name (``"A"``, ``"D0"``, …) for tracing.
    """

    peer_id: int
    items: int
    level_name: str


@dataclass(frozen=True)
class RetrievedItem:
    """An item returned by a query, with its true distance to the query."""

    item_id: int
    peer_id: int
    distance: float


@dataclass
class RangeQueryResult:
    """Outcome of a Hyper-M range query.

    ``items`` are exact matches retrieved from the contacted peers (the
    paper's precision is 100% by construction: peers filter locally with
    the original query). Recall depends on which peers were contacted.

    Under an installed fault plan the query *degrades* instead of
    raising: ``confidence`` is the answered fraction of the evidence the
    query wanted — ``(levels answered / levels published) × (peers
    answered / peers attempted)`` — and ``degraded`` flags any query that
    lost index levels or peer responses despite retries. On clean
    fabrics both keep their defaults (1.0 / False) and results are
    bit-identical to the pre-fault code.
    """

    items: list = field(default_factory=list)
    peer_scores: dict = field(default_factory=dict)
    peers_contacted: list = field(default_factory=list)
    failed_contacts: list = field(default_factory=list)
    index_hops: int = 0
    retrieval_messages: int = 0
    confidence: float = 1.0
    degraded: bool = False

    @property
    def item_ids(self) -> set:
        """Ids of all retrieved items."""
        return {item.item_id for item in self.items}

    def describe(self, *, top: int = 5) -> str:
        """A human-readable trace of how this query was answered.

        Shows the top-scoring peers, which were contacted/failed, and the
        retrieval outcome — the first place to look when recall surprises.
        """
        extra = []
        if self.degraded:
            extra.append(
                f"DEGRADED under faults: confidence {self.confidence:.2f}"
            )
        return _describe_query(
            "range query", self, top=top, extra_lines=extra
        )


@dataclass
class KnnResult:
    """Outcome of the k-NN heuristic (paper Figure 5)."""

    items: list = field(default_factory=list)
    requested_k: int = 0
    epsilon_per_level: dict = field(default_factory=dict)
    peer_scores: dict = field(default_factory=dict)
    peers_contacted: list = field(default_factory=list)
    failed_contacts: list = field(default_factory=list)
    index_hops: int = 0
    retrieval_messages: int = 0

    @property
    def item_ids(self) -> set:
        """Ids of all retrieved items (the full, possibly > k, set)."""
        return {item.item_id for item in self.items}

    def top_k_ids(self) -> set:
        """Ids of the k closest retrieved items."""
        ordered = sorted(self.items, key=lambda item: item.distance)
        return {item.item_id for item in ordered[: self.requested_k]}

    def describe(self, *, top: int = 5) -> str:
        """A human-readable trace of how this k-NN query was answered."""
        eps = ", ".join(
            f"{level}: {value:.4f}"
            for level, value in sorted(
                self.epsilon_per_level.items(), key=lambda kv: str(kv[0])
            )
        )
        return _describe_query(
            f"k-NN query (k={self.requested_k})",
            self,
            top=top,
            extra_lines=[f"estimated per-level radii: {eps}"],
        )


def _describe_query(kind: str, result, *, top: int, extra_lines: list) -> str:
    """Shared rendering behind the ``describe`` methods."""
    ranked = sorted(
        result.peer_scores.items(), key=lambda kv: (-kv[1], kv[0])
    )
    contacted = set(result.peers_contacted)
    failed = set(result.failed_contacts)
    lines = [
        f"{kind}: {len(result.items)} item(s) retrieved from "
        f"{len(contacted)} peer(s)",
        f"index traffic: {result.index_hops} hops; retrieval: "
        f"{result.retrieval_messages} messages"
        + (f"; {len(failed)} contact(s) failed" if failed else ""),
    ]
    lines.extend(extra_lines)
    lines.append(f"top {min(top, len(ranked))} candidate peers by score:")
    for peer_id, score in ranked[:top]:
        status = (
            "contacted"
            if peer_id in contacted
            else "unreachable"
            if peer_id in failed
            else "not contacted"
        )
        supplied = sum(1 for item in result.items if item.peer_id == peer_id)
        lines.append(
            f"  peer {peer_id:>4}  score {score:10.3f}  [{status}]"
            + (f"  supplied {supplied}" if supplied else "")
        )
    return "\n".join(lines)


@dataclass
class DisseminationReport:
    """Accounting for publishing one or many peers' summaries.

    The paper's Figure 8 metrics derive from these counters: hops per item
    is ``total_hops / items_published`` (the averaging that makes values
    below 1 possible — summaries, not items, are inserted).
    """

    items_published: int = 0
    spheres_inserted: int = 0
    #: Spheres patched in place on their existing entry ids (delta rounds).
    spheres_updated: int = 0
    #: Spheres retired from the overlays (delta rounds).
    spheres_removed: int = 0
    routing_hops: int = 0
    replica_hops: int = 0
    bytes_sent: int = 0
    energy: float = 0.0

    @property
    def total_hops(self) -> int:
        """Routing plus replication hops."""
        return self.routing_hops + self.replica_hops

    @property
    def hops_per_item(self) -> float:
        """The paper's headline dissemination metric."""
        if self.items_published == 0:
            return 0.0
        return self.total_hops / self.items_published

    @property
    def hops_per_sphere(self) -> float:
        """Average overlay cost per inserted summary."""
        if self.spheres_inserted == 0:
            return 0.0
        return self.total_hops / self.spheres_inserted

    def merge(self, other: "DisseminationReport") -> "DisseminationReport":
        """Combine two reports."""
        return DisseminationReport(
            items_published=self.items_published + other.items_published,
            spheres_inserted=self.spheres_inserted + other.spheres_inserted,
            spheres_updated=self.spheres_updated + other.spheres_updated,
            spheres_removed=self.spheres_removed + other.spheres_removed,
            routing_hops=self.routing_hops + other.routing_hops,
            replica_hops=self.replica_hops + other.replica_hops,
            bytes_sent=self.bytes_sent + other.bytes_sent,
            energy=self.energy + other.energy,
        )


def sort_items_by_distance(items: list) -> list:
    """Order retrieved items by ascending true distance (Figure 5 step 10)."""
    return sorted(items, key=lambda item: (item.distance, item.item_id))


def distances_to_query(
    data: np.ndarray, query: np.ndarray
) -> np.ndarray:
    """Euclidean distances of each row of ``data`` to ``query``."""
    return np.linalg.norm(
        np.asarray(data, dtype=np.float64) - np.asarray(query, dtype=np.float64),
        axis=1,
    )
