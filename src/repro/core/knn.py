"""k-nearest-neighbour heuristic (paper Section 4.2, Figure 5).

Summaries cannot pinpoint the k closest items, so Hyper-M estimates, per
wavelet level, the range-query radius ``ε_l`` whose *expected* retrieval is
``k`` items (inverting Eq. 8 numerically over the reachable cluster
spheres), runs those range queries, merges the per-level peer scores, and
requests from each of the top ``P`` peers a number of items proportional to
its normalised score, scaled by the tuning constant ``C`` (Figure 5,
step 8: ``no_items_p = C * k * score_p / sum``).

Reachability: the query initiator cannot see every cluster in the network
a-priori. We discover clusters with geometrically expanding overlay range
queries until the discovered spheres are expected to supply ``k`` items
(or the query covers the whole key space), then invert Eq. 8 over what was
found — every probe's hops are charged to the index cost.

Query translation (the per-level DWT + key-space mapping) is shared with
the range path through :func:`repro.core.queries._query_keys`'s per-query
cache, so the exact-refinement follow-up range queries reuse the k-NN
query's translated spheres instead of re-decomposing the vector.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clustering.spheres import ClusterSphere
from repro.core.queries import (
    _default_origin,
    _query_keys,
    contact_peers,
    send_response,
)
from repro.core.results import KnnResult, sort_items_by_distance
from repro.core.scoring import aggregate_scores, level_scores, rank_peers
from repro.exceptions import QueryError
from repro.geometry.epsilon import estimate_epsilon_for_k, expected_items
from repro.obs import flight as obs_flight
from repro.obs import registry as obs_registry
from repro.obs import trace as obs_trace
from repro.utils.validation import check_vector

#: First probe radius, as a fraction of the key-space diagonal.
_INITIAL_PROBE_FRACTION = 0.05


def _spheres_from_entries(entries) -> list[ClusterSphere]:
    return [
        ClusterSphere(centroid=e.key, radius=e.radius, items=e.value.items)
        for e in entries
    ]


def _discover_level(
    overlay, origin_node: int, key: np.ndarray, k: float
) -> tuple[float, list, int]:
    """Expanding probes at one level; returns (epsilon, entries, hops).

    Doubles the probe radius until the discovered cluster spheres are
    expected (Eq. 8) to contain ``k`` items, then inverts Eq. 8 for the
    final radius and issues the definitive range query.
    """
    diagonal = math.sqrt(key.shape[0])
    eps = _INITIAL_PROBE_FRACTION * diagonal
    hops = 0
    probes = 0
    entries: list = []
    recorder = obs_trace.state.recorder
    while True:
        receipt = overlay.range_query(origin_node, key, eps)
        hops += receipt.total_hops
        probes += 1
        entries = receipt.entries
        spheres = _spheres_from_entries(entries)
        if spheres and expected_items(eps, spheres, key) >= k:
            break
        if eps >= diagonal:
            break
        eps = min(2.0 * eps, diagonal)
    spheres = _spheres_from_entries(entries)
    if not spheres:
        recorder.annotate(probes=probes)
        return eps, entries, hops
    eps_star = estimate_epsilon_for_k(k, spheres, key)
    if eps_star < eps:
        receipt = overlay.range_query(origin_node, key, eps_star)
        hops += receipt.total_hops
        probes += 1
        recorder.annotate(probes=probes)
        return eps_star, receipt.entries, hops
    recorder.annotate(probes=probes)
    return eps, entries, hops


def _peers_to_contact(
    ranked: list[tuple[int, float]], k: int, top_p: int | None
) -> list[tuple[int, float]]:
    """Figure 5 step 4: smallest P whose cumulative score covers ``k`` items."""
    if top_p is not None:
        return ranked[:top_p]
    selected: list[tuple[int, float]] = []
    cumulative = 0.0
    for peer_id, score in ranked:
        selected.append((peer_id, score))
        cumulative += score
        if cumulative >= k:
            break
    return selected


def knn_query(
    network,
    query: np.ndarray,
    k: int,
    *,
    c: float = 1.0,
    top_p: int | None = None,
    origin_peer: int | None = None,
    aggregation: str | None = None,
    exact: bool = False,
) -> KnnResult:
    """Retrieve (approximately) the ``k`` closest items to ``query``.

    Parameters
    ----------
    network:
        A published :class:`repro.core.network.HyperMNetwork`.
    query:
        Query vector in the original space.
    k:
        Number of neighbours requested.
    c:
        The paper's tuning constant ``C`` — total items requested are
        ``C * k`` split proportionally to peer scores; raising it trades
        precision for recall (Section 6.1 quantifies the trade).
    top_p:
        Contact exactly this many top peers; default picks the smallest
        ``P`` whose cumulative score covers ``k`` expected items.
    origin_peer:
        Peer issuing the query.
    aggregation:
        Override the cross-level score policy.
    exact:
        Extension beyond the paper: refine the heuristic answer into a
        *guaranteed* exact k-NN. The k-th retrieved distance upper-bounds
        the true k-th-neighbour distance, so a follow-up range query with
        that radius — which Theorem 4.1 makes dismissal-free — must
        contain every true neighbour. Costs one extra index round plus
        wider peer contacts; see :func:`refine_to_exact`.
    """
    query = check_vector(query, "query", dim=network.dimensionality)
    if k < 1:
        raise QueryError(f"k must be >= 1, got {k}")
    if c <= 0:
        raise QueryError(f"C must be > 0, got {c}")
    origin = _default_origin(network) if origin_peer is None else origin_peer
    if origin not in network.peers:
        raise QueryError(f"unknown origin peer {origin}")
    if not network.peers[origin].online:
        raise QueryError(f"origin peer {origin} has left the network")

    recorder = obs_trace.state.recorder
    with recorder.span(
        "query", type="knn", k=k, c=float(c), origin=origin
    ) as query_span, obs_flight.state.recorder.operation(
        "query", type="knn", origin=origin
    ):
        with recorder.span("translate", levels=len(network.levels)):
            keys = _query_keys(network, query)
        per_level: dict = {}
        epsilon_per_level: dict = {}
        index_hops = 0
        for level in network.levels:
            overlay = network.overlays[level]
            origin_node = network.overlay_node(level, origin)
            with recorder.span(
                f"sphere_filter[{level}]", level=str(level)
            ) as span:
                eps_l, entries, hops = _discover_level(
                    overlay, origin_node, keys[level], float(k)
                )
                index_hops += hops
                epsilon_per_level[level] = eps_l
                stats: dict = {}
                per_level[level] = level_scores(
                    entries, keys[level], eps_l, stats=stats
                )
                span.set(
                    epsilon=eps_l,
                    candidates=stats["candidates"],
                    pruned=stats["pruned"],
                    surviving=stats["surviving"],
                    peers=len(per_level[level]),
                    hops=hops,
                )

        policy = aggregation or network.config.aggregation
        with recorder.span("score", policy=policy) as span:
            aggregated = aggregate_scores(per_level, policy=policy)
            span.set(peers_scored=len(aggregated))
        ranked = rank_peers(aggregated)
        selected = _peers_to_contact(ranked, k, top_p)
        items = []
        with recorder.span("contact_peers") as contact_span:
            contacted, messages, failed = contact_peers(
                network, selected, origin_peer=origin, max_peers=None
            )
            reached = set(contacted)
            # Shares are allocated over the peers the querier *planned* to
            # use; requests to departed peers are simply lost (MANET churn).
            score_sum = sum(score for __, score in selected)
            for peer_id, score in selected:
                if peer_id not in reached:
                    continue
                if score_sum > 0:
                    share = score / score_sum
                else:
                    share = 1.0 / max(len(selected), 1)
                no_items = int(math.ceil(c * k * share))
                supplied = network.peers[peer_id].nearest_items(
                    query, no_items
                )
                delivered, response_messages = send_response(
                    network, origin, peer_id, len(supplied)
                )
                messages += response_messages
                if not delivered:
                    failed.append(peer_id)  # reply lost despite retries
                    continue
                items.extend(supplied)
            contact_span.set(
                selected=len(selected),
                reached=len(contacted),
                failed=len(failed),
                messages=messages,
                items=len(items),
            )
        query_span.set(index_hops=index_hops, items=len(items))
    metrics = obs_registry.metrics()
    metrics.counter("query.knn.count").inc()
    metrics.counter("query.knn.items").inc(len(items))
    metrics.counter("query.knn.failed_contacts").inc(len(failed))
    metrics.histogram("query.knn.index_hops").observe(index_hops)
    metrics.histogram("query.knn.peers_contacted").observe(len(contacted))
    result = KnnResult(
        items=sort_items_by_distance(items),
        requested_k=k,
        epsilon_per_level=epsilon_per_level,
        peer_scores=aggregated,
        peers_contacted=contacted,
        failed_contacts=failed,
        index_hops=index_hops,
        retrieval_messages=messages,
    )
    if exact:
        return refine_to_exact(
            network, query, result, origin_peer=origin, aggregation=policy
        )
    return result


def refine_to_exact(
    network,
    query: np.ndarray,
    result: KnnResult,
    *,
    origin_peer: int,
    aggregation: str | None = None,
) -> KnnResult:
    """Upgrade a heuristic k-NN result into a guaranteed exact one.

    Let ``d_k`` be the k-th best distance among the already-retrieved
    items (if fewer than ``k`` were retrieved, the radius doubles from the
    best available bound until ``k`` items are found). The true k-th
    neighbour is at distance ``<= d_k``, so a range query of radius
    ``d_k`` — dismissal-free by Theorem 4.1 when every positive-score peer
    is contacted — returns a superset of the true k nearest neighbours.
    The union is re-ranked and the result carries combined accounting.

    Exactness holds while every item's holder is reachable; under churn
    the refinement degrades gracefully to best-effort (the radius-doubling
    loop is bounded).
    """
    from repro.core.queries import range_query as run_range_query

    k = result.requested_k
    ordered = sort_items_by_distance(result.items)
    if len(ordered) >= k:
        radius = ordered[k - 1].distance
    elif ordered:
        radius = max(item.distance for item in ordered)
    else:
        radius = 0.1
    radius = max(radius, 1e-9)

    refined = run_range_query(
        network, query, radius, origin_peer=origin_peer,
        aggregation=aggregation,
    )
    guard = 40
    while len(refined.items) < min(k, network.total_items) and guard:
        guard -= 1
        radius *= 2.0
        refined = run_range_query(
            network, query, radius, origin_peer=origin_peer,
            aggregation=aggregation,
        )

    merged: dict[int, object] = {}
    for item in list(result.items) + list(refined.items):
        best = merged.get(item.item_id)
        if best is None or item.distance < best.distance:
            merged[item.item_id] = item
    final = sort_items_by_distance(list(merged.values()))[:k]
    contacted = list(
        dict.fromkeys(result.peers_contacted + refined.peers_contacted)
    )
    return KnnResult(
        items=final,
        requested_k=k,
        epsilon_per_level=result.epsilon_per_level,
        peer_scores=refined.peer_scores or result.peer_scores,
        peers_contacted=contacted,
        failed_contacts=list(
            dict.fromkeys(result.failed_contacts + refined.failed_contacts)
        ),
        index_hops=result.index_hops + refined.index_hops,
        retrieval_messages=result.retrieval_messages
        + refined.retrieval_messages,
    )
