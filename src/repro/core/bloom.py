"""Bloom-filter summaries — the design alternative the paper rejects.

Section 2.3 dismisses signature methods for Hyper-M's problem: "they do
not maintain locality … and the clusters that might be obtained give no
information about the appartenance of the original data items, because
the hash functions used are not reversible". This module implements that
rejected design so the argument can be *measured*: each peer publishes a
Bloom filter of its quantised item keys into a 1-d overlay keyed by peer.

What it can do: point(-ish) queries — check which peers' filters claim a
quantised key, then fetch. What it cannot do: similarity search — a query
vector that is *near* an item hashes to unrelated bits, so range/k-NN
recall collapses except for near-exact matches falling in the same
quantisation cell. The benchmark quantifies both sides.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import ValidationError
from repro.utils.validation import check_matrix, check_positive, check_vector


class BloomFilter:
    """A classic Bloom filter over byte strings.

    Parameters
    ----------
    n_bits:
        Filter width in bits.
    n_hashes:
        Number of hash functions (derived double hashing: SHA-256 split).
    """

    def __init__(self, n_bits: int = 4096, n_hashes: int = 4):
        if n_bits < 8 or n_hashes < 1:
            raise ValidationError(
                "n_bits must be >= 8 and n_hashes >= 1"
            )
        self.n_bits = int(n_bits)
        self.n_hashes = int(n_hashes)
        self.bits = np.zeros(self.n_bits, dtype=bool)
        self.count = 0

    def _positions(self, key: bytes) -> list[int]:
        digest = hashlib.sha256(key).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        return [
            (h1 + i * h2) % self.n_bits for i in range(self.n_hashes)
        ]

    def add(self, key: bytes) -> None:
        """Insert a key."""
        for pos in self._positions(key):
            self.bits[pos] = True
        self.count += 1

    def __contains__(self, key: bytes) -> bool:
        return all(self.bits[pos] for pos in self._positions(key))

    @property
    def size_bytes(self) -> int:
        """Wire size of the filter."""
        return self.n_bits // 8

    @property
    def fill_ratio(self) -> float:
        """Fraction of set bits (false-positive rate rises with it)."""
        return float(self.bits.mean())


def quantize_key(vector: np.ndarray, cells_per_dim: int = 8) -> bytes:
    """Quantise a unit-cube vector to a grid cell id (the hashable key).

    This is the only way to make continuous vectors hashable — and it is
    exactly where similarity dies: two vectors in adjacent cells share no
    key, however close they are.
    """
    v = check_vector(vector, "vector")
    cells = np.clip(
        (v * cells_per_dim).astype(np.int64), 0, cells_per_dim - 1
    )
    return cells.tobytes()


class BloomPublisher:
    """The rejected design, end to end: per-peer Bloom filters of item keys.

    Peers broadcast their filters once (one message per peer pair in a
    shared-space MANET); queries test membership locally and fetch from
    claiming peers.
    """

    def __init__(
        self,
        dimensionality: int,
        *,
        n_bits: int = 4096,
        n_hashes: int = 4,
        cells_per_dim: int = 8,
    ):
        check_positive(dimensionality, "dimensionality")
        self.dimensionality = int(dimensionality)
        self.n_bits = n_bits
        self.n_hashes = n_hashes
        self.cells_per_dim = cells_per_dim
        self.filters: dict[int, BloomFilter] = {}
        self._peers: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self.bytes_published = 0

    def publish_peer(
        self, peer_id: int, data: np.ndarray, item_ids: np.ndarray
    ) -> BloomFilter:
        """Build and 'broadcast' one peer's filter; returns it."""
        data = check_matrix(data, "data", dim=self.dimensionality)
        bloom = BloomFilter(self.n_bits, self.n_hashes)
        for row in data:
            bloom.add(quantize_key(row, self.cells_per_dim))
        self.filters[peer_id] = bloom
        self._peers[peer_id] = (data, np.asarray(item_ids, dtype=np.int64))
        self.bytes_published += bloom.size_bytes
        return bloom

    def candidate_peers(self, query: np.ndarray) -> list[int]:
        """Peers whose filters claim the query's quantisation cell."""
        key = quantize_key(
            check_vector(query, "query", dim=self.dimensionality),
            self.cells_per_dim,
        )
        return [
            peer_id
            for peer_id, bloom in self.filters.items()
            if key in bloom
        ]

    def range_query(self, query: np.ndarray, epsilon: float) -> set:
        """Best-effort range query: fetch only from claiming peers.

        This is the structural failure the paper predicts: items within
        ``epsilon`` but in a different quantisation cell live on peers the
        filter check never surfaces.
        """
        hits: set[int] = set()
        for peer_id in self.candidate_peers(query):
            data, ids = self._peers[peer_id]
            dists = np.linalg.norm(data - query, axis=1)
            hits |= {int(i) for i in ids[dists <= epsilon + 1e-12]}
        return hits

    def point_query(self, query: np.ndarray) -> set:
        """Exact-match lookup (where Bloom filters are actually fine)."""
        hits: set[int] = set()
        for peer_id in self.candidate_peers(query):
            data, ids = self._peers[peer_id]
            dists = np.linalg.norm(data - query, axis=1)
            hits |= {int(i) for i in ids[dists <= 1e-9]}
        return hits
