"""Generation-keyed caches for the serving tier.

Two caches back the batched query plane:

* :class:`TranslationCache` memoizes the per-query DWT + affine key-space
  mapping (one dict of per-level keys per distinct query vector).
* :class:`CandidateCache` memoizes hot :class:`repro.index.CandidateSet`
  snapshots keyed on ``(level, query key bytes, radius)``. Staleness is
  *exact*, not heuristic: every snapshot carries the store generation it
  was taken at, every publish / delta / rebalance / compaction bumps that
  level's generation, and :meth:`CandidateCache.lookup` discards a cached
  set the moment its generation disagrees with its store — so a mutation
  in one level's store invalidates exactly that level's cached sets and
  nothing else, and a stale set is *never* served (it is re-computed,
  never raised as a :class:`repro.exceptions.StaleCandidateError`).

Both caches are bounded LRU maps; eviction never affects correctness,
only hit rate.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.core.queries import _query_keys
from repro.exceptions import ValidationError
from repro.index import CandidateSet

#: Cache key for one per-level candidate lookup:
#: ``(level position, query key bytes, key-space radius)``.
CandidateKey = tuple


def candidate_key(level_index: int, key: np.ndarray, radius: float) -> CandidateKey:
    """Build the canonical cache key for one per-level range lookup."""
    return (int(level_index), key.tobytes(), float(radius))


class CandidateCache:
    """Bounded LRU of generation-tagged :class:`CandidateSet` snapshots."""

    __slots__ = ("_capacity", "_data", "hits", "misses", "stale", "evictions")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._data: OrderedDict[CandidateKey, CandidateSet] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.stale = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    @property
    def capacity(self) -> int:
        """Maximum cached entries."""
        return self._capacity

    def lookup(self, key: CandidateKey) -> CandidateSet | None:
        """Return a *fresh* cached set or None, with hit/miss accounting.

        A cached set whose store has mutated since the snapshot is
        dropped here — the generation check is what turns "cache" from a
        staleness hazard into exact invalidation.
        """
        cached = self._data.get(key)
        if cached is None:
            self.misses += 1
            return None
        if cached.is_stale():
            del self._data[key]
            self.stale += 1
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return cached

    def peek(self, key: CandidateKey) -> CandidateSet | None:
        """Like :meth:`lookup` but without hit/miss accounting.

        The pre-warmer uses this to decide what needs recomputing; a
        peek must not inflate the serving hit rate.
        """
        cached = self._data.get(key)
        if cached is None:
            return None
        if cached.is_stale():
            del self._data[key]
            self.stale += 1
            return None
        return cached

    def store(self, key: CandidateKey, candidates: CandidateSet) -> None:
        """Insert (or refresh) one snapshot, evicting LRU entries past cap."""
        self._data[key] = candidates
        self._data.move_to_end(key)
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def drop_stale(self) -> int:
        """Evict every stale entry now; returns how many were dropped."""
        doomed = [k for k, cs in self._data.items() if cs.is_stale()]
        for key in doomed:
            del self._data[key]
        self.stale += len(doomed)
        return len(doomed)

    def snapshot(self) -> dict:
        """Counter snapshot (JSON-safe) for reports and tests."""
        return {
            "size": len(self._data),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
            "stale": self.stale,
            "evictions": self.evictions,
        }


class TranslationCache:
    """Bounded LRU of per-query key translations.

    Values are the ``{level: key}`` dicts produced by
    :func:`repro.core.queries._query_keys`; keys translate immutably (the
    DWT and affine maps are fixed per network), so entries never go
    stale — the bound exists purely to cap memory.
    """

    __slots__ = ("_capacity", "_data", "hits", "misses")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValidationError(f"capacity must be >= 1, got {capacity}")
        self._capacity = int(capacity)
        self._data: OrderedDict[bytes, dict] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def translate(self, network, query: np.ndarray) -> dict:
        """Per-level keys for ``query``, cached on the raw vector bytes."""
        query = np.ascontiguousarray(query, dtype=np.float64)
        cache_key = query.tobytes()
        keys = self._data.get(cache_key)
        if keys is not None:
            self._data.move_to_end(cache_key)
            self.hits += 1
            return keys
        self.misses += 1
        keys = _query_keys(network, query)
        self._data[cache_key] = keys
        while len(self._data) > self._capacity:
            self._data.popitem(last=False)
        return keys

    def snapshot(self) -> dict:
        """Counter snapshot (JSON-safe) for reports and tests."""
        return {
            "size": len(self._data),
            "capacity": self._capacity,
            "hits": self.hits,
            "misses": self.misses,
        }
